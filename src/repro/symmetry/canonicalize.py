"""Canonicalizers derived from a :class:`~repro.symmetry.spec.SymmetrySpec`.

:func:`build_canonicalizer` emits the marking canonicalizer consumed by
:func:`repro.spn.reachability.generate_tangible_reachability_graph`: a
scalar ``f(marking_tuple) -> marking_tuple`` carrying

* ``f.batch`` — the vectorized companion honouring the
  ``_MarkingInterner`` contract (``(N, P) -> (N, P)``, representatives
  **identical** to the scalar path's on every row);
* ``f.cache_id`` — the spec's stable identity (grouping / graph caching);
* ``f.spec`` — the spec itself (validation, provenance);
* ``f.group_order`` — ``|G|``, the declared group's order.

Canonical form
--------------

Flat groups (PM exchange) sort their block value-tuples ascending — the
classic exchangeable-machines representative.  The paired group (DC
exchange) is canonicalized *after* the flat groups (its block keys read the
already-sorted PM slots):

1. every block's key — its profile values, pair slots excluded — is sorted
   stably ascending;
2. among all block permutations consistent with that key order (the
   products of permutations within key-tie runs), the one producing the
   lexicographically smallest full vector — pair slots *included* — wins.

Step 2 is what makes the form constant on orbits (f(σ·m) = f(m) for every
group element σ), not merely idempotent: a tie broken by block position
alone would depend on the input labelling and silently build a **wrong**
lumped chain, not a less-lumped one.  The batch path short-circuits the
expensive enumeration: rows without key ties are unambiguous, and rows
whose pair slots hold one constant value (the overwhelmingly common "no
transfer in flight" states) are tie-invariant; only the rare ambiguous rows
fall back to the scalar enumerator.

:func:`rate_vector_key` reuses the same canonical form in *rate space*
(blocks of timed-transition rates instead of marking slots) to give the
grid's dedupe a symmetry-aware digest: rate vectors that differ only by a
permutation of exchangeable data-center blocks map to one key.
"""

from __future__ import annotations

import hashlib
from itertools import permutations, product
from typing import Callable, Optional, Sequence

import numpy as np

from repro.symmetry.spec import OrbitGroup, SymmetrySpec


def _sort_flat_group(values: list, group: OrbitGroup) -> None:
    """Sort a flat group's block value-tuples ascending, in place."""
    states = sorted(
        tuple(values[index] for index in profile) for profile in group.profiles
    )
    for profile, state in zip(group.profiles, states):
        for index, token in zip(profile, state):
            values[index] = token


def _paired_candidates(values: list, group: OrbitGroup) -> list[list[int]]:
    """Block orders consistent with the stable key sort (tie-run products)."""
    keys = [
        tuple(values[index] for index in profile) for profile in group.profiles
    ]
    order = sorted(range(group.size), key=lambda block: (keys[block], block))
    runs: list[list[int]] = []
    for position, block in enumerate(order):
        if position and keys[block] == keys[order[position - 1]]:
            runs[-1].append(block)
        else:
            runs.append([block])
    if all(len(run) == 1 for run in runs):
        return [order]
    return [
        [block for run in combo for block in run]
        for combo in product(*(permutations(run) for run in runs))
    ]


def _apply_paired_order(values: list, group: OrbitGroup, order: Sequence[int]) -> list:
    """The vector with block ``k`` holding block ``order[k]``'s values."""
    out = list(values)
    for k, src in enumerate(order):
        for dst, origin in zip(group.profiles[k], group.profiles[src]):
            out[dst] = values[origin]
        for l, src_l in enumerate(order):
            for dst, origin in zip(group.pairs[k][l], group.pairs[src][src_l]):
                out[dst] = values[origin]
    return out


def _canonicalize_paired(values: list, group: OrbitGroup) -> list:
    candidates = _paired_candidates(values, group)
    if len(candidates) == 1:
        return _apply_paired_order(values, group, candidates[0])
    return min(
        (_apply_paired_order(values, group, order) for order in candidates),
        key=tuple,
    )


def _scalar_canonicalizer(groups: Sequence[OrbitGroup]):
    def canonicalize(marking):
        values = list(marking)
        for group in groups:
            if group.paired:
                values = _canonicalize_paired(values, group)
            else:
                _sort_flat_group(values, group)
        return tuple(values)

    return canonicalize


def _flat_batch_sort(values: np.ndarray, profiles: np.ndarray) -> None:
    """Vectorized flat-group sort (stable lexsort, same order as ``sorted``)."""
    sub = values[:, profiles]  # (N, blocks, width)
    keys = tuple(sub[:, :, column] for column in range(profiles.shape[1] - 1, -1, -1))
    order = np.lexsort(keys)
    values[:, profiles] = np.take_along_axis(sub, order[:, :, None], axis=1)


def build_canonicalizer(spec: SymmetrySpec):
    """The marking canonicalizer of ``spec`` (scalar + ``batch`` + identity).

    Module-level and driven by a picklable spec, so
    :class:`~repro.engine.grid.CanonicalizerRef` can name it as
    ``"repro.symmetry.canonicalize:build_canonicalizer"`` with the spec as
    the single argument and generation workers rebuild it faithfully.
    """
    groups = spec.marking_groups
    scalar = _scalar_canonicalizer(groups)

    flat_profiles = [
        np.asarray(group.profiles, dtype=np.int64)
        for group in groups
        if not group.paired
    ]
    paired = next((group for group in groups if group.paired), None)
    if paired is not None:
        b = paired.size
        member_profiles = np.asarray(paired.profiles, dtype=np.int64)
        pair_width = len(paired.pairs[0][1]) if b >= 2 else 0
        # Dense (b, b, W) pair-index matrix; the diagonal is a dummy (index
        # 0) that is masked out of every gather/scatter below.
        pair_matrix = np.zeros((b, b, pair_width), dtype=np.int64)
        for i in range(b):
            for j in range(b):
                if i != j:
                    pair_matrix[i, j] = paired.pairs[i][j]
        off_diagonal = ~np.eye(b, dtype=bool)
        pair_slots = pair_matrix[off_diagonal].reshape(-1)  # (E * W,)

    def canonicalize_batch(block: np.ndarray) -> np.ndarray:
        values = np.array(block, dtype=np.int64, copy=True)
        for profiles in flat_profiles:
            _flat_batch_sort(values, profiles)
        if paired is None:
            return values
        sub = values[:, member_profiles]  # (N, b, L)
        keys = tuple(
            sub[:, :, column]
            for column in range(member_profiles.shape[1] - 1, -1, -1)
        )
        order = np.lexsort(keys)  # (N, b), stable — matches the scalar sort
        sorted_keys = np.take_along_axis(sub, order[:, :, None], axis=1)
        ties = (sorted_keys[:, 1:, :] == sorted_keys[:, :-1, :]).all(axis=2).any(
            axis=1
        )
        if pair_width:
            pair_values = values[:, pair_slots]  # (N, E * W)
            uniform = (pair_values == pair_values[:, :1]).all(axis=1)
            ambiguous = ties & ~uniform
            source = pair_matrix[order[:, :, None], order[:, None, :]]  # (N,b,b,W)
            gathered = np.take_along_axis(
                values, source.reshape(len(values), -1), axis=1
            ).reshape(len(values), b, b, pair_width)
            values[:, pair_slots] = gathered[:, off_diagonal].reshape(
                len(values), -1
            )
        else:
            ambiguous = np.zeros(len(values), dtype=bool)
        values[:, member_profiles] = sorted_keys
        if ambiguous.any():
            # Rare rows where key ties meet non-uniform pair slots: the
            # key sort alone is not orbit-constant there, so the exact
            # scalar enumerator decides (from the *original* rows, so the
            # two paths agree bit for bit).
            original = np.asarray(block, dtype=np.int64)
            for row in np.nonzero(ambiguous)[0]:
                values[row] = scalar(
                    tuple(int(token) for token in original[row])
                )
        return values

    scalar.batch = canonicalize_batch
    scalar.cache_id = spec.cache_id
    scalar.spec = spec
    scalar.group_order = spec.group_order
    return scalar


def rate_vector_key(
    spec: SymmetrySpec, transition_names: Sequence[str]
) -> Optional[Callable[[np.ndarray], bytes]]:
    """Symmetry-aware digest of rate vectors aligned with ``transition_names``.

    Canonicalizes a float64 rate vector along ``spec.rate_groups`` (blocks
    sorted, pair rates carried along, ties resolved by the exact
    enumerator) before hashing, so two rate assignments that differ only by
    a permutation of exchangeable blocks share one digest — the hook behind
    "grid cases differing only by a permutation of exchangeable DC
    parameter blocks dedupe to one solve".  Answers ``None`` when the spec
    names transitions absent from the vector (a mismatched graph must fall
    back to the plain bit-exact digest, never misdedupe).
    """
    if not spec.rate_groups:
        return None
    index = {name: position for position, name in enumerate(transition_names)}
    try:
        groups = tuple(group.indexed(index) for group in spec.rate_groups)
    except KeyError:
        return None
    scalar = _scalar_canonicalizer(groups)

    def key(vector: np.ndarray) -> bytes:
        canonical = scalar(tuple(np.asarray(vector, dtype=np.float64).tolist()))
        return hashlib.sha256(
            np.asarray(canonical, dtype=np.float64).tobytes()
        ).digest()

    return key
