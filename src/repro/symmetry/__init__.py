"""Declarative symmetry reduction for the cloud-system SPNs.

The package factors everything symmetry-related out of the model, engine
and cache layers into three small modules:

* :mod:`repro.symmetry.spec` — :class:`SymmetrySpec`, the declarative,
  picklable description of a net's exchangeability structure: flat orbit
  groups of physical machines within each data center plus (at most) one
  *paired* orbit group of whole data-center blocks, each block carrying its
  local places, its PM profiles and the transmission/backup places that
  must permute with the data-center index.
* :mod:`repro.symmetry.canonicalize` — :func:`build_canonicalizer`, which
  turns a spec into the marking canonicalizer consumed by the reachability
  generator (scalar callable + vectorized ``batch`` companion honouring the
  ``_MarkingInterner`` contract), and :func:`rate_vector_key`, the
  symmetry-aware rate digest used by grid dedupe.
* :mod:`repro.symmetry.validate` — fail-fast validators: canonicalizer
  against net (place count / permutation / idempotence), measure
  expressions against the declared group (a per-DC measure on an
  exchangeable group raises :class:`~repro.exceptions.ConfigurationError`
  instead of silently returning orbit-averaged nonsense) and rate
  assignments against the group's transition orbits.

``DEFAULT_SYMMETRY_REDUCTION`` is the single library-wide default for every
``symmetry_reduction`` knob (model solve, sweep runner, case-study grid,
CLI): reduction is **on** — it is exact, so results are bit-identical and
only the state numbering changes.
"""

from repro.symmetry.canonicalize import build_canonicalizer, rate_vector_key
from repro.symmetry.spec import OrbitGroup, SymmetrySpec
from repro.symmetry.validate import (
    validate_canonicalizer,
    validate_measure_symmetry,
    validate_rate_symmetry,
)

#: Library-wide default of every ``symmetry_reduction`` flag.
DEFAULT_SYMMETRY_REDUCTION = True


def resolve_symmetry_reduction(value) -> bool:
    """Resolve a ``symmetry_reduction`` knob to a concrete boolean.

    Every entry point (model ``solve``, sweep runner, case-study grid, CLI)
    accepts ``None`` meaning "the library default" and resolves it here, so
    the default lives in exactly one place.  An explicit ``True``/``False``
    is honoured as given.
    """
    return DEFAULT_SYMMETRY_REDUCTION if value is None else bool(value)


__all__ = [
    "DEFAULT_SYMMETRY_REDUCTION",
    "resolve_symmetry_reduction",
    "OrbitGroup",
    "SymmetrySpec",
    "build_canonicalizer",
    "rate_vector_key",
    "validate_canonicalizer",
    "validate_measure_symmetry",
    "validate_rate_symmetry",
]
