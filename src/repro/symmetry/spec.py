"""Declarative description of a net's exchangeability structure.

A :class:`SymmetrySpec` says *which* indices of a marking vector (and which
timed transitions of the rate assignment) are exchangeable, without saying
anything about how to canonicalize — that is
:mod:`repro.symmetry.canonicalize`'s job.  The spec is built from frozen
dataclasses of plain tuples, so it pickles to generation workers, hashes to
a stable ``cache_id`` and compares by value.

Two group shapes exist:

* a **flat** :class:`OrbitGroup` (``pairs=()``) — ``b`` interchangeable
  blocks of ``L`` aligned slots each, e.g. the per-PM place profiles within
  one data center.  The model is invariant under any permutation of the
  blocks.
* a **paired** :class:`OrbitGroup` — additionally carries a ``b × b``
  matrix of pair profiles (empty diagonal): slots that must permute with
  *ordered pairs* of blocks, e.g. the ``TRF_ij``/``TBF_ij`` transmission
  places between exchangeable data centers.  Permuting blocks ``i → σ(i)``
  maps pair slot ``(i, j)`` onto ``(σ(i), σ(j))``.

A spec holds the marking-space groups (integer place indices) and,
optionally, the mirrored rate-space groups (timed-transition *names*, mapped
to vector positions only when a concrete rate-vector ordering is known).
At most one marking group may be paired: the canonical form of a paired
group is only exact in isolation (its block keys may reference slots of the
flat groups, which are canonicalized first, but two paired groups would see
each other's pair slots move mid-sort).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Union

Label = Union[int, str]


@dataclass(frozen=True)
class OrbitGroup:
    """One set of exchangeable, aligned blocks in an indexed vector space.

    Attributes:
        profiles: ``b`` blocks of ``L`` aligned slot labels each — slot
            ``t`` of every block plays the same role (e.g. "the OSPM UP
            place of machine ``k``").
        pairs: empty for a flat group, else a ``b × b`` nested tuple whose
            ``[i][j]`` entry (``i ≠ j``) lists the slots attached to the
            *ordered* block pair ``(i, j)``; the diagonal entries are
            empty tuples.
    """

    profiles: tuple[tuple[Label, ...], ...]
    pairs: tuple[tuple[tuple[Label, ...], ...], ...] = ()

    def __post_init__(self) -> None:
        if len(self.profiles) < 2:
            raise ValueError("an orbit group needs at least two blocks")
        width = len(self.profiles[0])
        if any(len(profile) != width for profile in self.profiles):
            raise ValueError("orbit-group profiles must have equal length")
        if self.pairs:
            b = len(self.profiles)
            if len(self.pairs) != b or any(len(row) != b for row in self.pairs):
                raise ValueError(
                    f"pair matrix must be {b}x{b} to match the {b} blocks"
                )
            pair_widths = {
                len(self.pairs[i][j]) for i in range(b) for j in range(b) if i != j
            }
            if len(pair_widths) > 1:
                raise ValueError("off-diagonal pair profiles must have equal length")
            if any(self.pairs[i][i] for i in range(b)):
                raise ValueError("diagonal pair entries must be empty")

    @property
    def size(self) -> int:
        """Number of exchangeable blocks (the orbit has ``size!`` elements)."""
        return len(self.profiles)

    @property
    def paired(self) -> bool:
        return bool(self.pairs)

    def labels(self) -> Iterator[Label]:
        """Every slot label the group touches (profiles and pairs)."""
        for profile in self.profiles:
            yield from profile
        for row in self.pairs:
            for entry in row:
                yield from entry

    def indexed(self, index: Mapping[str, int]) -> "OrbitGroup":
        """The same group with string labels resolved through ``index``."""

        def resolve(label: Label) -> int:
            return label if isinstance(label, int) else index[label]

        return OrbitGroup(
            profiles=tuple(
                tuple(resolve(label) for label in profile)
                for profile in self.profiles
            ),
            pairs=tuple(
                tuple(
                    tuple(resolve(label) for label in entry) for entry in row
                )
                for row in self.pairs
            ),
        )


@dataclass(frozen=True)
class SymmetrySpec:
    """The exchangeability structure of one net.

    Attributes:
        place_count: length of the marking vectors the spec describes; the
            canonicalizer validation rejects any net whose place count
            differs (a *stale* spec must never lump a different net).
        marking_groups: orbit groups over integer place indices.  Flat
            groups (PM exchange) come first; an optional single paired
            group (DC exchange) comes last, its profiles may reference
            slots of the flat groups.
        rate_groups: the same orbit structure mirrored into timed-transition
            names — the rate assignment must be constant on these orbits
            for the lumping to be exact, and the grid's symmetry-aware
            dedupe canonicalizes rate vectors along them.
        kind: human-readable summary (``"pm"`` or ``"dc+pm"``) surfaced in
            lumping provenance.
    """

    place_count: int
    marking_groups: tuple[OrbitGroup, ...]
    rate_groups: tuple[OrbitGroup, ...] = ()
    kind: str = "pm"

    def __post_init__(self) -> None:
        if self.place_count <= 0:
            raise ValueError("place_count must be positive")
        if not self.marking_groups:
            raise ValueError("a symmetry spec needs at least one marking group")
        paired = [group for group in self.marking_groups if group.paired]
        if len(paired) > 1:
            raise ValueError(
                "at most one paired (data-center) orbit group is supported; "
                "the canonical form of two interacting paired groups is not "
                "well defined"
            )
        if paired and not self.marking_groups[-1].paired:
            raise ValueError("the paired orbit group must come last")
        for group in self.marking_groups:
            for label in group.labels():
                if not isinstance(label, int):
                    raise ValueError(
                        f"marking groups must use integer place indices, got "
                        f"{label!r}"
                    )
                if not 0 <= label < self.place_count:
                    raise ValueError(
                        f"place index {label} outside the net's "
                        f"{self.place_count} places — stale spec?"
                    )
        for group in self.rate_groups:
            for label in group.labels():
                if not isinstance(label, str):
                    raise ValueError(
                        f"rate groups must use transition names, got {label!r}"
                    )

    @property
    def group_order(self) -> int:
        """Order of the declared symmetry group (``∏ size!`` over groups)."""
        order = 1
        for group in self.marking_groups:
            order *= math.factorial(group.size)
        return order

    def digest(self) -> str:
        """Stable content hash of the spec (drives the cache identity)."""
        payload = repr(
            (
                "symmetry-spec/v1",
                self.place_count,
                tuple(
                    (group.profiles, group.pairs) for group in self.marking_groups
                ),
                tuple(
                    (group.profiles, group.pairs) for group in self.rate_groups
                ),
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def cache_id(self) -> str:
        """Canonicalizer identity for grouping and graph caching.

        Lumped and unlumped graphs of one structure must never collide in
        the :class:`~repro.engine.cache.TRGCache` (nor may two different
        lumpings), so the identity keys on the full spec content.
        """
        return f"sym:{self.kind}:{self.digest()[:16]}"

    def generator_permutations(self) -> Iterator[list[int]]:
        """Index permutations generating the declared group.

        Yields, for every adjacent block transposition of every marking
        group, the full place permutation ``g`` such that the permuted
        marking is ``[marking[g[p]] for p in range(place_count)]``.  The
        transpositions generate the whole group, so a function invariant
        under every yielded permutation is invariant under the group.
        """
        for group in self.marking_groups:
            for a in range(group.size - 1):
                order = list(range(group.size))
                order[a], order[a + 1] = order[a + 1], order[a]
                yield _apply_block_order(group, order, self.place_count)


def _apply_block_order(group: OrbitGroup, order: list[int], size: int) -> list[int]:
    """Place permutation realising ``block k ← block order[k]`` for a group."""
    g = list(range(size))
    for k, src in enumerate(order):
        for dst_label, src_label in zip(group.profiles[k], group.profiles[src]):
            g[dst_label] = src_label
        if group.pairs:
            for l, src_l in enumerate(order):
                if k == l:
                    continue
                for dst_label, src_label in zip(
                    group.pairs[k][l], group.pairs[src][src_l]
                ):
                    g[dst_label] = src_label
    return g
