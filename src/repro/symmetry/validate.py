"""Fail-fast validators guarding exact lumping.

Three independent checks, raised at the earliest layer that has the facts:

* :func:`validate_canonicalizer` — does the canonicalizer even fit the net?
  Runs inside ``generate_tangible_reachability_graph`` so a stale
  canonicalizer (built for yesterday's net shape) raises a clear
  :class:`~repro.exceptions.ModelError` instead of silently producing a
  wrong lumped graph.
* :func:`validate_measure_symmetry` — is every requested measure invariant
  under the declared group?  A per-DC measure on an exchangeable group
  would silently evaluate to orbit-averaged nonsense on the lumped chain;
  it raises :class:`~repro.exceptions.ConfigurationError` instead.
* :func:`validate_rate_symmetry` — is the rate assignment constant on the
  declared transition orbits?  Re-rating a lumped graph with asymmetric
  rates would be exactly as silently wrong.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, ModelError
from repro.symmetry.spec import SymmetrySpec

#: Marking samples drawn per generator in the randomized invariance probe.
MEASURE_PROBE_SAMPLES = 24

#: Tokens per place in the randomized probe markings (0..3 covers every
#: branch of the case-study guards: empty, single-token, multi-token).
_PROBE_TOKEN_RANGE = 4


def validate_canonicalizer(canonicalize, place_count: int, net_name: str) -> None:
    """Reject a canonicalizer that cannot belong to the net being explored.

    With a :class:`SymmetrySpec` attached (``canonicalize.spec``) the check
    is exact on the declared shape: the spec's ``place_count`` must equal
    the net's (index ranges were validated at spec construction).  Without
    one, a probe on the distinct-token marking ``(0, 1, …, P-1)`` must
    behave like a place permutation: same length, same token multiset
    (re-indexing across nets is caught because every token is unique),
    idempotent, and the
    ``batch`` companion (if any) must agree with the scalar path.
    """
    if canonicalize is None:
        return
    spec = getattr(canonicalize, "spec", None)
    if isinstance(spec, SymmetrySpec):
        if spec.place_count != place_count:
            raise ModelError(
                f"net {net_name!r}: the canonicalizer's symmetry spec "
                f"describes {spec.place_count} places but the net has "
                f"{place_count} — it was built for a different net"
            )
        return
    probe = tuple(range(place_count))
    try:
        result = tuple(canonicalize(probe))
    except Exception as error:
        raise ModelError(
            f"net {net_name!r}: the canonicalizer failed on a "
            f"{place_count}-place marking ({type(error).__name__}: {error}) — "
            f"it was likely built for a different net"
        ) from error
    if len(result) != place_count:
        raise ModelError(
            f"net {net_name!r}: the canonicalizer mapped a {place_count}-place "
            f"marking to {len(result)} places — it was built for a different net"
        )
    if sorted(result) != sorted(probe):
        raise ModelError(
            f"net {net_name!r}: the canonicalizer is not a place permutation "
            f"(the token multiset changed) — lumping with it would drop or "
            f"invent tokens"
        )
    if tuple(canonicalize(result)) != result:
        raise ModelError(
            f"net {net_name!r}: the canonicalizer is not idempotent — orbit "
            f"representatives would not be stable state identities"
        )
    batch = getattr(canonicalize, "batch", None)
    if batch is not None:
        via_batch = tuple(
            int(token)
            for token in np.asarray(batch(np.asarray([probe], dtype=np.int64)))[0]
        )
        if via_batch != result:
            raise ModelError(
                f"net {net_name!r}: the canonicalizer's batch companion "
                f"disagrees with its scalar path — interned keys would split "
                f"one orbit into several states"
            )


def _probe_markings(
    place_count: int, samples: int, seed: int = 0x5EED
) -> np.ndarray:
    generator = np.random.default_rng(seed)
    return generator.integers(
        0, _PROBE_TOKEN_RANGE, size=(samples, place_count), dtype=np.int64
    )


def measure_is_symmetric(
    evaluate: Callable[[tuple[int, ...]], float],
    spec: SymmetrySpec,
    samples: int = MEASURE_PROBE_SAMPLES,
) -> bool:
    """Randomized invariance probe of one compiled marking function.

    Evaluates ``evaluate`` on random markings and on their images under
    every generator permutation of ``spec``; any mismatch proves the
    function non-invariant (the converse is probabilistic, which is fine —
    the validator's job is to catch real per-index measures, and those
    break on nearly every sample).
    """
    markings = _probe_markings(spec.place_count, samples)
    generators = list(spec.generator_permutations())
    for row in markings:
        marking = tuple(int(token) for token in row)
        reference = evaluate(marking)
        for g in generators:
            permuted = tuple(marking[g[p]] for p in range(spec.place_count))
            if evaluate(permuted) != reference:
                return False
    return True


def validate_measure_symmetry(
    measures: Iterable,
    spec: SymmetrySpec,
    place_names: Sequence[str],
    context: str = "",
) -> None:
    """Prove every measure invariant under the declared group, or raise.

    Expression measures (probability / expected tokens) are probed through
    their compiled form; throughput measures are invariant exactly when
    their transition sits outside every rate orbit (a single machine's
    ``VM_F_3`` throughput is not a function of the lumped chain).
    """
    from repro.spn.rewards import (
        ExpectedTokensMeasure,
        ProbabilityMeasure,
        ThroughputMeasure,
    )

    place_index = {name: position for position, name in enumerate(place_names)}
    where = f" ({context})" if context else ""
    for measure in measures:
        if isinstance(measure, ThroughputMeasure):
            for group in spec.rate_groups:
                for profile in group.profiles:
                    if measure.transition in profile:
                        raise ConfigurationError(
                            f"measure {measure.name!r}{where}: throughput of "
                            f"{measure.transition!r} is per-member of an "
                            f"exchangeable orbit and cannot be evaluated on "
                            f"the lumped chain; disable symmetry_reduction "
                            f"or measure the orbit's total throughput"
                        )
            continue
        if not isinstance(measure, (ProbabilityMeasure, ExpectedTokensMeasure)):
            continue
        evaluate = measure.compiled(place_index)
        if not measure_is_symmetric(evaluate, spec):
            raise ConfigurationError(
                f"measure {measure.name!r}{where} is not invariant under the "
                f"declared symmetry group ({spec.kind}, order "
                f"{spec.group_order}): evaluating it on the lumped chain "
                f"would return orbit-averaged values. Make the expression "
                f"symmetric in the exchangeable indices or disable "
                f"symmetry_reduction for this case."
            )


def validate_rate_symmetry(
    rates: Mapping[str, float],
    spec: SymmetrySpec,
    context: str = "",
) -> None:
    """Require the rate assignment constant on the spec's transition orbits.

    The lumped chain is exact only if the net — rates included — is
    invariant under the group.  Checks every aligned profile slot for
    equality across blocks and every pair slot under the generating
    transpositions; an asymmetric assignment raises
    :class:`~repro.exceptions.ConfigurationError` naming the offending
    transitions (re-rating a lumped graph with it would be silently wrong).
    """
    where = f" ({context})" if context else ""
    for group in spec.rate_groups:
        reference = group.profiles[0]
        for profile in group.profiles[1:]:
            for anchor, name in zip(reference, profile):
                if _rate(rates, anchor) != _rate(rates, name):
                    raise ConfigurationError(
                        f"rate assignment{where} breaks the declared "
                        f"symmetry: {name!r} ({_rate(rates, name)!r}) differs "
                        f"from its orbit representative {anchor!r} "
                        f"({_rate(rates, anchor)!r}); exchangeable blocks "
                        f"must carry identical rates for exact lumping"
                    )
        if not group.paired:
            continue
        b = group.size
        for a in range(b - 1):
            order = list(range(b))
            order[a], order[a + 1] = order[a + 1], order[a]
            for i in range(b):
                for j in range(b):
                    if i == j:
                        continue
                    for name, image in zip(
                        group.pairs[i][j], group.pairs[order[i]][order[j]]
                    ):
                        if _rate(rates, name) != _rate(rates, image):
                            raise ConfigurationError(
                                f"rate assignment{where} breaks the declared "
                                f"symmetry: pair transition {name!r} "
                                f"({_rate(rates, name)!r}) differs from its "
                                f"image {image!r} ({_rate(rates, image)!r}) "
                                f"under an exchangeable-block transposition"
                            )


def _rate(rates: Mapping[str, float], name) -> Optional[float]:
    value = rates.get(name)
    return None if value is None else float(value)
