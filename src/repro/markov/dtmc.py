"""Discrete-time Markov chains.

The SPN vanishing-marking elimination needs to resolve races between
immediate transitions: from a vanishing marking the net jumps through a DTMC
over vanishing markings until it reaches a tangible one.  The helpers here
compute those absorption probabilities; the class is also usable on its own.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.exceptions import AnalysisError, ModelError


class DiscreteTimeMarkovChain:
    """A labelled DTMC backed by a sparse probability matrix."""

    def __init__(self, states: Sequence[Hashable]):
        states = list(states)
        if not states:
            raise ModelError("a DTMC needs at least one state")
        if len(set(states)) != len(states):
            raise ModelError("DTMC state labels must be unique")
        self._states = states
        self._index = {state: i for i, state in enumerate(states)}
        self._probabilities: dict[tuple[int, int], float] = {}

    @property
    def states(self) -> list[Hashable]:
        return list(self._states)

    def index_of(self, state: Hashable) -> int:
        try:
            return self._index[state]
        except KeyError:
            raise ModelError(f"unknown DTMC state {state!r}") from None

    def set_probability(self, source: Hashable, target: Hashable, probability: float) -> None:
        """Set the one-step probability from ``source`` to ``target``."""
        if probability < 0.0 or probability > 1.0 + 1e-12:
            raise ModelError(f"probability must be in [0, 1], got {probability!r}")
        if probability == 0.0:
            return
        self._probabilities[(self.index_of(source), self.index_of(target))] = float(
            probability
        )

    def transition_matrix(self) -> sparse.csr_matrix:
        """The one-step transition probability matrix."""
        n = len(self._states)
        if self._probabilities:
            rows, cols, data = zip(
                *((i, j, p) for (i, j), p in self._probabilities.items())
            )
        else:
            rows, cols, data = (), (), ()
        return sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()

    def validate(self, tolerance: float = 1e-9) -> None:
        """Check that every row sums to one (absorbing states may sum to zero)."""
        row_sums = np.asarray(self.transition_matrix().sum(axis=1)).ravel()
        bad = [
            self._states[i]
            for i, total in enumerate(row_sums)
            if abs(total - 1.0) > tolerance and abs(total) > tolerance
        ]
        if bad:
            raise ModelError(f"DTMC rows do not sum to one for states: {bad!r}")

    def steady_state(self) -> dict[Hashable, float]:
        """Stationary distribution of an irreducible, aperiodic chain."""
        matrix = self.transition_matrix().toarray()
        n = matrix.shape[0]
        system = np.vstack([matrix.T - np.eye(n), np.ones((1, n))])
        rhs = np.zeros(n + 1)
        rhs[-1] = 1.0
        solution, residuals, rank, _ = np.linalg.lstsq(system, rhs, rcond=None)
        if rank < n:
            raise AnalysisError("DTMC stationary distribution is not unique")
        solution = np.clip(solution, 0.0, None)
        solution /= solution.sum()
        return {state: float(solution[i]) for i, state in enumerate(self._states)}

    def absorption_probabilities(
        self, absorbing_states: Sequence[Hashable]
    ) -> dict[Hashable, dict[Hashable, float]]:
        """Probability of ending in each absorbing state from every transient state.

        Returns a nested mapping ``{transient_state: {absorbing_state: p}}``.
        """
        absorbing = [self.index_of(state) for state in absorbing_states]
        absorbing_set = set(absorbing)
        transient = [i for i in range(len(self._states)) if i not in absorbing_set]
        if not transient:
            return {}
        matrix = self.transition_matrix().tocsc()
        q = matrix[transient, :][:, transient]
        r = matrix[transient, :][:, absorbing]
        identity = sparse.eye(len(transient), format="csc")
        try:
            fundamental_times_r = sparse_linalg.spsolve(identity - q, r.tocsc())
        except Exception as error:  # pragma: no cover
            raise AnalysisError(f"absorption-probability solve failed: {error}") from error
        dense = np.atleast_2d(np.asarray(fundamental_times_r.todense() if sparse.issparse(fundamental_times_r) else fundamental_times_r))
        if dense.shape != (len(transient), len(absorbing)):
            dense = dense.reshape(len(transient), len(absorbing))
        result: dict[Hashable, dict[Hashable, float]] = {}
        for row, transient_index in enumerate(transient):
            row_values = {
                self._states[absorbing[col]]: float(dense[row, col])
                for col in range(len(absorbing))
                if dense[row, col] > 0.0
            }
            result[self._states[transient_index]] = row_values
        return result
