"""Markov reward structures.

A reward structure attaches a real-valued rate reward to every state of a
chain.  Availability is the special case of a 0/1 reward (1 on operational
states); expected capacity (how many VMs are up on average) is a general
rate reward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping

from repro.markov.ctmc import ContinuousTimeMarkovChain


@dataclass
class RewardStructure:
    """Named reward assignment over the states of a CTMC.

    Attributes:
        name: identifier used in reports.
        reward_of: callable mapping a state label to its rate reward.
    """

    name: str
    reward_of: Callable[[Hashable], float]

    @classmethod
    def from_mapping(
        cls, name: str, rewards: Mapping[Hashable, float], default: float = 0.0
    ) -> "RewardStructure":
        """Reward structure from an explicit ``{state: reward}`` mapping."""
        return cls(name, lambda state: float(rewards.get(state, default)))

    @classmethod
    def indicator(
        cls, name: str, predicate: Callable[[Hashable], bool]
    ) -> "RewardStructure":
        """0/1 reward structure from a predicate over states."""
        return cls(name, lambda state: 1.0 if predicate(state) else 0.0)

    def steady_state_value(self, chain: ContinuousTimeMarkovChain) -> float:
        """Expected steady-state reward on ``chain``."""
        return chain.expected_reward(self.reward_of)


@dataclass
class RewardReport:
    """Evaluation of several reward structures over one chain."""

    chain: ContinuousTimeMarkovChain
    structures: list[RewardStructure] = field(default_factory=list)

    def add(self, structure: RewardStructure) -> "RewardReport":
        self.structures.append(structure)
        return self

    def evaluate(self) -> dict[str, float]:
        """Evaluate every registered structure once, reusing the steady state."""
        pi = self.chain.steady_state_vector()
        states = self.chain.states
        values: dict[str, float] = {}
        for structure in self.structures:
            values[structure.name] = float(
                sum(pi[i] * structure.reward_of(state) for i, state in enumerate(states))
            )
        return values
