"""Markov reward structures.

A reward structure attaches a real-valued rate reward to every state of a
chain.  Availability is the special case of a 0/1 reward (1 on operational
states); expected capacity (how many VMs are up on average) is a general
rate reward.

Evaluation is vectorized: a structure compiles to a dense reward vector over
the chain's states, a report stacks those vectors column-wise, and a whole
batch of probability vectors (one per scenario, stacked into an ``(S, n)``
block) is evaluated with a single ``(S, n) @ (n, m)`` GEMM.  The scalar API
delegates to the batch path with a one-row block, so single evaluations run
through the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.exceptions import AnalysisError
from repro.markov.ctmc import ContinuousTimeMarkovChain


@dataclass
class RewardStructure:
    """Named reward assignment over the states of a CTMC.

    Attributes:
        name: identifier used in reports.
        reward_of: callable mapping a state label to its rate reward.
    """

    name: str
    reward_of: Callable[[Hashable], float]

    @classmethod
    def from_mapping(
        cls, name: str, rewards: Mapping[Hashable, float], default: float = 0.0
    ) -> "RewardStructure":
        """Reward structure from an explicit ``{state: reward}`` mapping."""
        return cls(name, lambda state: float(rewards.get(state, default)))

    @classmethod
    def indicator(
        cls, name: str, predicate: Callable[[Hashable], bool]
    ) -> "RewardStructure":
        """0/1 reward structure from a predicate over states."""
        return cls(name, lambda state: 1.0 if predicate(state) else 0.0)

    def reward_vector(self, states: Sequence[Hashable]) -> np.ndarray:
        """Dense reward vector over ``states`` (one walk of the state list)."""
        return np.fromiter(
            (float(self.reward_of(state)) for state in states),
            dtype=np.float64,
            count=len(states),
        )

    def evaluate_batch(
        self, states: Sequence[Hashable], solutions: np.ndarray
    ) -> np.ndarray:
        """Expected reward of each row of an ``(S, n)`` probability block."""
        solutions = np.atleast_2d(np.asarray(solutions, dtype=np.float64))
        if solutions.shape[1] != len(states):
            raise AnalysisError(
                f"solution block has {solutions.shape[1]} columns, expected "
                f"{len(states)} (one per state)"
            )
        return solutions @ self.reward_vector(states)

    def steady_state_value(self, chain: ContinuousTimeMarkovChain) -> float:
        """Expected steady-state reward on ``chain``."""
        pi = chain.steady_state_vector()
        return float(self.evaluate_batch(chain.states, pi[np.newaxis, :])[0])


@dataclass
class RewardReport:
    """Evaluation of several reward structures over one chain."""

    chain: ContinuousTimeMarkovChain
    structures: list[RewardStructure] = field(default_factory=list)

    def add(self, structure: RewardStructure) -> "RewardReport":
        self.structures.append(structure)
        return self

    def reward_matrix(self) -> np.ndarray:
        """Column-stacked ``(n, m)`` reward vectors of every structure."""
        states = self.chain.states
        if not self.structures:
            return np.zeros((len(states), 0))
        return np.column_stack(
            [structure.reward_vector(states) for structure in self.structures]
        )

    def evaluate_batch(self, solutions: np.ndarray) -> np.ndarray:
        """``(S, m)`` expected rewards of an ``(S, n)`` probability block.

        One GEMM evaluates every structure for every solution row — the
        batched counterpart of :meth:`evaluate` used when many scenarios
        share one chain structure (e.g. the sweep engine's solution block).
        """
        solutions = np.atleast_2d(np.asarray(solutions, dtype=np.float64))
        if solutions.shape[1] != self.chain.number_of_states:
            raise AnalysisError(
                f"solution block has {solutions.shape[1]} columns, expected "
                f"{self.chain.number_of_states} (one per state)"
            )
        return solutions @ self.reward_matrix()

    def evaluate(self) -> dict[str, float]:
        """Evaluate every registered structure once, reusing the steady state."""
        pi = self.chain.steady_state_vector()
        values = self.evaluate_batch(pi[np.newaxis, :])[0]
        return {
            structure.name: float(value)
            for structure, value in zip(self.structures, values)
        }
