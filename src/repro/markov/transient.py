"""Transient analysis of CTMCs by uniformization (Jensen's method).

Uniformization converts the CTMC with generator ``Q`` into a DTMC with
transition matrix ``P = I + Q / Λ`` (``Λ ≥ max_i |q_ii|``) subordinated to a
Poisson process of rate ``Λ``.  The state distribution at time ``t`` is then

    π(t) = Σ_k PoissonPMF(k; Λt) · π(0) P^k

truncated once the Poisson tail mass drops below the requested tolerance.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse

from repro.exceptions import AnalysisError


def _poisson_truncation_point(rate_time: float, tolerance: float) -> int:
    """Smallest k such that the Poisson(rate_time) tail beyond k is < tolerance."""
    if rate_time <= 0.0:
        return 0
    # Conservative bound: mean + 10 standard deviations, then refine by the
    # explicit tail sum while accumulating the PMF.
    upper = int(rate_time + 10.0 * math.sqrt(rate_time) + 20.0)
    pmf = math.exp(-rate_time)
    cumulative = pmf
    k = 0
    while cumulative < 1.0 - tolerance and k < upper * 4:
        k += 1
        pmf *= rate_time / k
        cumulative += pmf
    return k


def transient_distribution(
    generator,
    initial_distribution,
    time: float,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """State-probability vector of the CTMC at time ``time``.

    Args:
        generator: CTMC generator matrix ``Q`` (dense or sparse).
        initial_distribution: probability vector at time 0.
        time: evaluation time (non-negative, in the same unit as the rates).
        tolerance: truncation tolerance of the Poisson series.

    Returns:
        The probability vector ``π(t)``.
    """
    matrix = sparse.csr_matrix(generator, dtype=float)
    n = matrix.shape[0]
    pi0 = np.asarray(initial_distribution, dtype=float).ravel()
    if pi0.shape != (n,):
        raise AnalysisError(
            f"initial distribution has shape {pi0.shape}, expected ({n},)"
        )
    if abs(pi0.sum() - 1.0) > 1e-8 or np.any(pi0 < -1e-12):
        raise AnalysisError("initial distribution must be a probability vector")
    if time < 0.0:
        raise AnalysisError(f"time must be non-negative, got {time!r}")
    if time == 0.0 or matrix.nnz == 0:
        return pi0.copy()

    rates = -matrix.diagonal()
    uniformisation_rate = float(rates.max())
    if uniformisation_rate <= 0.0:
        return pi0.copy()
    uniformisation_rate *= 1.02
    probability_matrix = sparse.eye(n, format="csr") + matrix / uniformisation_rate

    rate_time = uniformisation_rate * time
    truncation = _poisson_truncation_point(rate_time, tolerance)

    result = np.zeros(n)
    term_vector = pi0.copy()
    log_weight = -rate_time  # log PoissonPMF(0)
    weight = math.exp(log_weight) if log_weight > -700 else 0.0
    result += weight * term_vector
    for k in range(1, truncation + 1):
        term_vector = np.asarray(term_vector @ probability_matrix).ravel()
        if weight > 0.0:
            weight *= rate_time / k
        else:
            log_weight += math.log(rate_time) - math.log(k)
            if log_weight > -700:
                weight = math.exp(log_weight)
        if weight > 0.0:
            result += weight * term_vector
    # Normalise away the truncated tail mass.
    total = result.sum()
    if total <= 0.0:
        raise AnalysisError("uniformization produced a zero probability vector")
    return result / total


def transient_rewards(
    generator,
    initial_distribution,
    reward_vector,
    times,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Expected instantaneous reward ``E[r(X_t)]`` at each requested time."""
    rewards = np.asarray(reward_vector, dtype=float).ravel()
    values = []
    for time in times:
        distribution = transient_distribution(
            generator, initial_distribution, float(time), tolerance
        )
        if distribution.shape != rewards.shape:
            raise AnalysisError(
                f"reward vector has shape {rewards.shape}, expected {distribution.shape}"
            )
        values.append(float(distribution @ rewards))
    return np.asarray(values)
