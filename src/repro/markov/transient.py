"""Transient analysis of CTMCs by uniformization (Jensen's method).

Uniformization converts the CTMC with generator ``Q`` into a DTMC with
transition matrix ``P = I + Q / Λ`` (``Λ ≥ max_i |q_ii|``) subordinated to a
Poisson process of rate ``Λ``.  The state distribution at time ``t`` is then

    π(t) = Σ_k PoissonPMF(k; Λt) · π(0) P^k

truncated once the Poisson tail mass drops below the requested tolerance.

Besides the scalar :func:`transient_distribution`, the module provides the
**batched** :func:`transient_reward_block`: uniformization vectorized over a
whole ``(S, n)`` scenario block that shares one state-space structure and
differs only in edge rates (the shape produced by the scenario-batch
engine).  Scenarios are grouped into *rate regimes* (uniformization rates
within a bounded factor of each other) so each group shares a single
uniformization rate, one Poisson-weight table and one truncation point; the
group's DTMC step is **one** sparse mat-vec on a block-diagonal matrix
(every scenario advances simultaneously at C level) and the reward
projection of each step is one ``(G, n) @ (n, m)`` GEMM.  Point values
*and* interval (time-averaged) values come out of the same power iteration:

    E[r(X_t)]            = Σ_k PoissonPMF(k; Λt)        · π₀ Pᵏ r
    (1/t)∫₀ᵗ E[r(X_u)]du = (1/t) Σ_k P(N_Λt ≥ k+1)/Λ    · π₀ Pᵏ r

(the second identity is Jensen's method applied to the expected sojourn of
the subordinating Poisson process in state ``k``).
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Callable

import numpy as np
from scipy import sparse

from repro.exceptions import AnalysisError


def _poisson_truncation_point(rate_time: float, tolerance: float) -> int:
    """Smallest k such that the Poisson(rate_time) tail beyond k is < tolerance.

    Computed through scipy's survival function, which works in log space:
    the naive ``pmf *= rate_time / k`` recurrence starts from
    ``exp(-rate_time)``, which underflows to zero beyond ``rate_time ≈ 745``
    and silently inflated the truncation point ~4x for long mission windows.
    """
    if rate_time <= 0.0:
        return 0
    from scipy.stats import poisson

    # isf gives the smallest k with sf(k) <= tolerance; one extra term keeps
    # the bound conservative at the discrete boundary.
    point = poisson.isf(tolerance, rate_time)
    if not math.isfinite(point):  # pragma: no cover - degenerate tolerance
        point = rate_time + 10.0 * math.sqrt(rate_time) + 20.0
    return int(point) + 1


def transient_distribution(
    generator,
    initial_distribution,
    time: float,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """State-probability vector of the CTMC at time ``time``.

    Args:
        generator: CTMC generator matrix ``Q`` (dense or sparse).
        initial_distribution: probability vector at time 0.
        time: evaluation time (non-negative, in the same unit as the rates).
        tolerance: truncation tolerance of the Poisson series.

    Returns:
        The probability vector ``π(t)``.
    """
    matrix = sparse.csr_matrix(generator, dtype=float)
    n = matrix.shape[0]
    pi0 = np.asarray(initial_distribution, dtype=float).ravel()
    if pi0.shape != (n,):
        raise AnalysisError(
            f"initial distribution has shape {pi0.shape}, expected ({n},)"
        )
    if abs(pi0.sum() - 1.0) > 1e-8 or np.any(pi0 < -1e-12):
        raise AnalysisError("initial distribution must be a probability vector")
    if time < 0.0:
        raise AnalysisError(f"time must be non-negative, got {time!r}")
    if time == 0.0 or matrix.nnz == 0:
        return pi0.copy()

    rates = -matrix.diagonal()
    uniformisation_rate = float(rates.max())
    if uniformisation_rate <= 0.0:
        return pi0.copy()
    uniformisation_rate *= 1.02
    probability_matrix = sparse.eye(n, format="csr") + matrix / uniformisation_rate

    rate_time = uniformisation_rate * time
    truncation = _poisson_truncation_point(rate_time, tolerance)

    result = np.zeros(n)
    term_vector = pi0.copy()
    log_weight = -rate_time  # log PoissonPMF(0)
    weight = math.exp(log_weight) if log_weight > -700 else 0.0
    result += weight * term_vector
    for k in range(1, truncation + 1):
        term_vector = np.asarray(term_vector @ probability_matrix).ravel()
        if weight > 0.0:
            weight *= rate_time / k
        else:
            log_weight += math.log(rate_time) - math.log(k)
            if log_weight > -700:
                weight = math.exp(log_weight)
        if weight > 0.0:
            result += weight * term_vector
    # Normalise away the truncated tail mass.
    total = result.sum()
    if total <= 0.0:
        raise AnalysisError("uniformization produced a zero probability vector")
    return result / total


#: Scenarios whose uniformization rates differ by more than this factor are
#: placed in different regimes (a shared rate would inflate the slow
#: scenarios' truncation point by the same factor).
DEFAULT_REGIME_FACTOR = 4.0

#: Upper bound on the non-zeros of one block-diagonal group matrix; groups
#: are split beyond it so arbitrarily large batches run in bounded memory.
MAX_GROUP_ENTRIES = 8_000_000


def _validated_initial(pi0, n: int) -> np.ndarray:
    pi0 = np.asarray(pi0, dtype=float).ravel()
    if pi0.shape != (n,):
        raise AnalysisError(
            f"initial distribution has shape {pi0.shape}, expected ({n},)"
        )
    if abs(pi0.sum() - 1.0) > 1e-8 or np.any(pi0 < -1e-12):
        raise AnalysisError("initial distribution must be a probability vector")
    return pi0


def _rate_regime_groups(
    lambdas: np.ndarray,
    entries_per_scenario: int,
    regime_factor: float,
    max_group_entries: int,
) -> list[np.ndarray]:
    """Scenario index groups sharing one uniformization rate each.

    Scenarios are sorted by their individual uniformization rate and split
    greedily whenever the spread inside a group would exceed
    ``regime_factor`` (bounding the truncation-point inflation of sharing
    the group maximum) or the group's block-diagonal matrix would exceed
    ``max_group_entries`` non-zeros (bounding memory).
    """
    order = np.argsort(lambdas, kind="stable")
    max_size = max(1, max_group_entries // max(1, entries_per_scenario))
    groups: list[np.ndarray] = []
    start = 0
    for i in range(1, len(order) + 1):
        if (
            i == len(order)
            or lambdas[order[i]] > regime_factor * max(lambdas[order[start]], 1e-300)
            or i - start >= max_size
        ):
            groups.append(order[start:i])
            start = i
    return groups


def transient_reward_block(
    edge_sources: np.ndarray,
    edge_targets: np.ndarray,
    number_of_states: int,
    edge_rate_block: np.ndarray,
    initial_distribution,
    times,
    evaluate: Callable[[np.ndarray, np.ndarray], np.ndarray],
    measure_count: int,
    tolerance: float = 1e-12,
    regime_factor: float = DEFAULT_REGIME_FACTOR,
    max_group_entries: int = MAX_GROUP_ENTRIES,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched point + interval rewards over a shared-structure scenario block.

    Args:
        edge_sources / edge_targets: shared ``(E,)`` edge index arrays
            (self-loop-free, as stored by the tangible reachability graph).
        number_of_states: ``n`` of the shared state space.
        edge_rate_block: ``(S, E)`` per-scenario edge rates.
        initial_distribution: shared ``(n,)`` probability vector at time 0.
        times: ``(T,)`` non-negative evaluation times.
        evaluate: callback mapping a ``(G, n)`` distribution block and the
            ``(G,)`` scenario indices it belongs to onto ``(G, m)`` measure
            values (the engine passes ``RewardMatrix.evaluate`` with the
            per-scenario rate rows, so throughput columns scale correctly).
        measure_count: ``m``, the number of measure columns.
        tolerance: Poisson truncation tolerance.
        regime_factor / max_group_entries: regime-grouping policy (see
            :func:`_rate_regime_groups`).

    Returns:
        ``(point, interval, seconds)`` — ``(S, T, m)`` instantaneous values,
        ``(S, T, m)`` interval (time-averaged over ``[0, t]``) values and
        ``(S,)`` per-scenario compute seconds.  At ``t = 0`` the interval
        value is defined as the point value (its limit).
    """
    from scipy.stats import poisson

    n = int(number_of_states)
    edge_sources = np.asarray(edge_sources, dtype=np.int64)
    edge_targets = np.asarray(edge_targets, dtype=np.int64)
    edge_rate_block = np.atleast_2d(np.asarray(edge_rate_block, dtype=np.float64))
    scenarios, edges = edge_rate_block.shape
    if edges != edge_sources.size:
        raise AnalysisError(
            f"edge-rate block has {edges} columns, expected {edge_sources.size}"
        )
    if np.any(edge_rate_block < 0.0):
        raise AnalysisError("edge rates must be non-negative")
    pi0 = _validated_initial(initial_distribution, n)
    times = np.asarray(times, dtype=np.float64).ravel()
    if times.size == 0:
        raise AnalysisError("at least one evaluation time is required")
    if np.any(times < 0.0):
        raise AnalysisError("evaluation times must be non-negative")

    # Per-scenario exit rates (S, n) in one sparse product, then the
    # individual uniformization rates (with the scalar path's 2% headroom).
    if edges:
        source_incidence = sparse.csr_matrix(
            (np.ones(edges), (np.arange(edges), edge_sources)),
            shape=(edges, n),
        )
        exit_block = edge_rate_block @ source_incidence
    else:
        exit_block = np.zeros((scenarios, n))
    lambdas = 1.02 * exit_block.max(axis=1)

    point = np.zeros((scenarios, times.size, measure_count))
    interval = np.zeros_like(point)
    seconds = np.zeros(scenarios)

    for group in _rate_regime_groups(
        lambdas, edges + n, regime_factor, max_group_entries
    ):
        started = perf_counter()
        group = np.asarray(group, dtype=np.int64)
        g = group.size
        rate = float(lambdas[group].max())
        if rate <= 0.0:
            # No transitions can fire: the distribution is constant.
            values = evaluate(np.tile(pi0, (g, 1)), group)
            point[group] = values[:, None, :]
            interval[group] = values[:, None, :]
            seconds[group] = (perf_counter() - started) / g
            continue

        # Shared Poisson weights: pmf for point values, survival function
        # (tail mass, i.e. expected sojourn x rate) for interval values.
        mu = rate * times
        truncation = _poisson_truncation_point(float(mu.max()), tolerance)
        k_range = np.arange(truncation + 1)
        pmf = poisson.pmf(k_range[None, :], mu[:, None])
        tail = poisson.sf(k_range[None, :], mu[:, None])
        # Normalise away the truncated tail so the weights of every time
        # point sum to 1 (point) and to t (interval; the division below
        # folds the 1/t of the time average in directly).
        pmf_total = pmf.sum(axis=1)
        point_weights = pmf / np.where(pmf_total > 0.0, pmf_total, 1.0)[:, None]
        tail_total = tail.sum(axis=1)
        positive = tail_total > 0.0
        interval_weights = np.where(
            positive[:, None], tail / np.where(positive, tail_total, 1.0)[:, None],
            point_weights,
        )

        # Transposed block-diagonal uniformized DTMC matrix: one sparse
        # mat-vec advances every scenario of the group simultaneously.
        offsets = np.arange(g)[:, None] * n
        rows = np.concatenate(
            [
                (edge_targets[None, :] + offsets).ravel(),
                (np.arange(n)[None, :] + offsets).ravel(),
            ]
        )
        cols = np.concatenate(
            [
                (edge_sources[None, :] + offsets).ravel(),
                (np.arange(n)[None, :] + offsets).ravel(),
            ]
        )
        data = np.concatenate(
            [
                (edge_rate_block[group] / rate).ravel(),
                (1.0 - exit_block[group] / rate).ravel(),
            ]
        )
        step = sparse.coo_matrix((data, (rows, cols)), shape=(g * n, g * n)).tocsr()

        term = np.tile(pi0, g)
        group_point = np.zeros((g, times.size, measure_count))
        group_interval = np.zeros_like(group_point)
        for k in range(truncation + 1):
            values = evaluate(term.reshape(g, n), group)
            group_point += values[:, None, :] * point_weights[None, :, k, None]
            group_interval += values[:, None, :] * interval_weights[None, :, k, None]
            if k < truncation:
                term = step.dot(term)
        point[group] = group_point
        interval[group] = group_interval
        seconds[group] = (perf_counter() - started) / g
    return point, interval, seconds


def transient_rewards(
    generator,
    initial_distribution,
    reward_vector,
    times,
    tolerance: float = 1e-10,
) -> np.ndarray:
    """Expected instantaneous reward ``E[r(X_t)]`` at each requested time."""
    rewards = np.asarray(reward_vector, dtype=float).ravel()
    values = []
    for time in times:
        distribution = transient_distribution(
            generator, initial_distribution, float(time), tolerance
        )
        if distribution.shape != rewards.shape:
            raise AnalysisError(
                f"reward vector has shape {rewards.shape}, expected {distribution.shape}"
            )
        values.append(float(distribution @ rewards))
    return np.asarray(values)
