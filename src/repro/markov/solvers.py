"""Linear-algebra solvers for stationary distributions.

Three solver families are provided:

* ``direct``  — sparse LU factorisation of the constrained balance equations;
  robust and exact up to round-off, the default for small / medium chains.
* ``gth``     — the Grassmann–Taksar–Heyman elimination, which avoids
  subtractive cancellation and is the most numerically stable choice for
  stiff chains (the disaster models are extremely stiff: disaster rates are
  ~1/876000 h⁻¹ while immediate repairs are minutes).  Dense, O(n³), so only
  used for small chains.
* ``power`` / ``gauss_seidel`` — iterative methods for large state spaces.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.exceptions import AnalysisError

_DEFAULT_TOLERANCE = 1e-12
_DEFAULT_MAX_ITERATIONS = 200_000


def _as_csr(generator) -> sparse.csr_matrix:
    matrix = sparse.csr_matrix(generator, dtype=float)
    if matrix.shape[0] != matrix.shape[1]:
        raise AnalysisError(f"generator matrix must be square, got shape {matrix.shape}")
    return matrix


def validate_generator(generator, tolerance: float = 1e-8) -> None:
    """Check that ``generator`` is a proper CTMC generator matrix.

    Off-diagonal entries must be non-negative and every row must sum to
    (numerically) zero.

    Raises:
        AnalysisError: if either property is violated.
    """
    matrix = _as_csr(generator)
    coo = matrix.tocoo()
    off_diagonal_negative = np.any((coo.row != coo.col) & (coo.data < -tolerance))
    if off_diagonal_negative:
        raise AnalysisError("generator matrix has negative off-diagonal entries")
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    scale = np.maximum(np.abs(matrix.diagonal()), 1.0)
    if np.any(np.abs(row_sums) > tolerance * scale):
        worst = int(np.argmax(np.abs(row_sums) / scale))
        raise AnalysisError(
            f"generator matrix rows must sum to zero; row {worst} sums to {row_sums[worst]!r}"
        )


def steady_state(
    generator,
    method: str = "auto",
    tolerance: float = _DEFAULT_TOLERANCE,
    max_iterations: int = _DEFAULT_MAX_ITERATIONS,
) -> np.ndarray:
    """Stationary distribution ``π`` with ``π Q = 0`` and ``Σ π = 1``.

    Args:
        generator: CTMC generator matrix (dense or sparse), shape ``(n, n)``.
        method: ``"auto"``, ``"direct"``, ``"gth"``, ``"power"`` or
            ``"gauss_seidel"``.  ``"auto"`` picks GTH for very small chains,
            the sparse direct solver up to a few tens of thousands of states
            and Gauss–Seidel beyond that.
        tolerance: convergence tolerance for the iterative methods.
        max_iterations: iteration cap for the iterative methods.

    Returns:
        The stationary probability vector of length ``n``.

    Raises:
        AnalysisError: if the method is unknown, the matrix is not a valid
            generator, or an iterative method fails to converge.
    """
    matrix = _as_csr(generator)
    n = matrix.shape[0]
    if n == 0:
        raise AnalysisError("cannot compute the stationary distribution of an empty chain")
    if n == 1:
        return np.array([1.0])

    if method == "auto":
        if n <= 200:
            method = "gth"
        elif n <= 20_000:
            method = "direct"
        else:
            # Large stiff chains: incomplete-LU preconditioned GMRES scales
            # far better than a complete sparse factorisation here.
            method = "gmres_ilu"

    if method == "gth":
        return _steady_state_gth(matrix.toarray())
    if method == "direct":
        return _steady_state_direct(matrix)
    if method == "gmres_ilu":
        return _steady_state_gmres_ilu(matrix, tolerance, max_iterations)
    if method == "power":
        return _steady_state_power(matrix, tolerance, max_iterations)
    if method == "gauss_seidel":
        return _steady_state_gauss_seidel(matrix, tolerance, max_iterations)
    raise AnalysisError(f"unknown steady-state method {method!r}")


def normalize_distribution(vector: np.ndarray) -> np.ndarray:
    """Clip tiny negative round-off and rescale ``vector`` to sum to one.

    Raises:
        AnalysisError: if the vector has no positive mass or is non-finite.
    """
    vector = np.where(np.abs(vector) < 1e-300, 0.0, vector)
    vector = np.clip(vector, 0.0, None)
    total = vector.sum()
    if total <= 0.0 or not np.isfinite(total):
        raise AnalysisError("steady-state solver produced a non-normalisable vector")
    return vector / total


_normalise = normalize_distribution


def constrained_balance_system(
    matrix: sparse.spmatrix,
) -> tuple[sparse.csc_matrix, np.ndarray]:
    """Build the linear system ``A x = b`` whose solution is the stationary vector.

    ``A`` is ``Q^T`` with the last balance equation replaced by the
    normalisation constraint ``Σ x = 1``.  Shared by the direct and the
    preconditioned-Krylov solvers (and by callers that want to reuse a
    preconditioner across several related systems).
    """
    matrix = _as_csr(matrix)
    n = matrix.shape[0]
    transposed = matrix.transpose().tolil()
    transposed[n - 1, :] = np.ones(n)
    rhs = np.zeros(n)
    rhs[n - 1] = 1.0
    return transposed.tocsc(), rhs


def steady_state_matrix_free(
    operator,
    rhs: np.ndarray,
    *,
    preconditioner=None,
    x0: np.ndarray | None = None,
    rtol: float = 1e-13,
    restart: int = 100,
    max_restart_cycles: int = 30,
    bicgstab_iterations: int = 2000,
    residual_target: float = 1e-12,
    refinement_rounds: int = 5,
) -> tuple[np.ndarray, float]:
    """Solve ``A x = rhs`` given only ``A``'s action (no assembled matrix).

    The numeric core of the out-of-core solve path: ``operator`` is a
    :class:`scipy.sparse.linalg.LinearOperator` whose matvec streams the
    constrained balance system chunk by chunk, so the full generator is
    never materialised.  Escalation ladder:

    1. restarted GMRES (optionally preconditioned, warm-started);
    2. BiCGStab from the best iterate if GMRES stalls;
    3. iterative refinement — solve the residual equation ``A δ = r`` and
       correct — until ``‖rhs − A x‖₂ ≤ residual_target`` or the residual
       stops improving.

    Returns the best iterate found and its true (recomputed) residual
    2-norm; the *caller* decides whether that residual is good enough —
    this function only raises on non-finite breakdowns.
    """
    rhs = np.asarray(rhs, dtype=np.float64)

    def true_residual(x: np.ndarray) -> float:
        return float(np.linalg.norm(operator.matvec(x) - rhs))

    best: np.ndarray | None = None
    best_norm = np.inf

    def consider(candidate) -> None:
        nonlocal best, best_norm
        if candidate is None:
            return
        candidate = np.asarray(candidate, dtype=np.float64).ravel()
        if not np.all(np.isfinite(candidate)):
            return
        norm = true_residual(candidate)
        if norm < best_norm:
            best, best_norm = candidate, norm

    if x0 is not None:
        consider(x0)
    solution, _ = sparse_linalg.gmres(
        operator,
        rhs,
        M=preconditioner,
        x0=x0,
        rtol=rtol,
        atol=0.0,
        restart=restart,
        maxiter=max_restart_cycles,
    )
    consider(solution)
    if best_norm > residual_target:
        solution, _ = sparse_linalg.bicgstab(
            operator,
            rhs,
            M=preconditioner,
            x0=best,
            rtol=rtol,
            atol=0.0,
            maxiter=bicgstab_iterations,
        )
        consider(solution)
    for _ in range(refinement_rounds):
        if best is None or best_norm <= residual_target:
            break
        residual = rhs - operator.matvec(best)
        correction, _ = sparse_linalg.gmres(
            operator,
            residual,
            M=preconditioner,
            rtol=1e-8,
            atol=0.0,
            restart=restart,
            maxiter=max(1, max_restart_cycles // 3),
        )
        previous = best_norm
        consider(best + np.asarray(correction).ravel())
        if best_norm >= previous * 0.5:
            break  # refinement has stopped paying for its matvecs
    if best is None:
        raise AnalysisError(
            "matrix-free Krylov solve produced no finite iterate"
        )
    return best, best_norm


def _steady_state_gmres_ilu(
    matrix: sparse.csr_matrix,
    tolerance: float,
    max_iterations: int,
    drop_tolerance: float = 1e-6,
    fill_factor: float = 20.0,
) -> np.ndarray:
    """Incomplete-LU preconditioned GMRES on the constrained balance equations."""
    system, rhs = constrained_balance_system(matrix)
    try:
        preconditioner = sparse_linalg.spilu(
            system, drop_tol=drop_tolerance, fill_factor=fill_factor
        )
    except Exception as error:  # pragma: no cover - scipy-specific failures
        raise AnalysisError(f"ILU preconditioner construction failed: {error}") from error
    operator = sparse_linalg.LinearOperator(system.shape, preconditioner.solve)
    solution, info = sparse_linalg.gmres(
        system,
        rhs,
        M=operator,
        rtol=min(tolerance, 1e-10),
        atol=0.0,
        restart=60,
        maxiter=min(max_iterations, 2000),
    )
    if info != 0:
        raise AnalysisError(
            f"preconditioned GMRES did not converge (scipy info code {info})"
        )
    if not np.all(np.isfinite(solution)):
        raise AnalysisError("preconditioned GMRES produced non-finite values")
    return _normalise(np.asarray(solution).ravel())


def _steady_state_direct(matrix: sparse.csr_matrix) -> np.ndarray:
    system, rhs = constrained_balance_system(matrix)
    try:
        solution = sparse_linalg.spsolve(system, rhs)
    except Exception as error:  # pragma: no cover - scipy-specific failures
        raise AnalysisError(f"sparse direct steady-state solve failed: {error}") from error
    if not np.all(np.isfinite(solution)):
        raise AnalysisError("sparse direct steady-state solve produced non-finite values")
    return _normalise(np.asarray(solution).ravel())


def _steady_state_gth(q: np.ndarray) -> np.ndarray:
    """Grassmann–Taksar–Heyman elimination on a dense generator copy."""
    n = q.shape[0]
    matrix = q.astype(float).copy()
    # Forward elimination.
    for k in range(n - 1, 0, -1):
        scale = matrix[k, :k].sum()
        if scale <= 0.0:
            # State k is unreachable from below at this elimination stage;
            # treat its contribution as zero mass.
            matrix[k, :k] = 0.0
            continue
        matrix[:k, k] /= scale
        # Rank-1 update: fold state k's outgoing mass back into the leading
        # k×k block in one outer product instead of a per-column Python loop.
        matrix[:k, :k] += np.outer(matrix[:k, k], matrix[k, :k])
    # Back substitution.
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = float(np.dot(pi[:k], matrix[:k, k]))
    return _normalise(pi)


def _uniformised_transition_matrix(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    rates = -matrix.diagonal()
    uniformisation_rate = float(rates.max()) * 1.05
    if uniformisation_rate <= 0.0:
        raise AnalysisError("generator matrix has no transitions (all rates zero)")
    n = matrix.shape[0]
    probability_matrix = sparse.eye(n, format="csr") + matrix / uniformisation_rate
    return probability_matrix.tocsr()


def _steady_state_power(
    matrix: sparse.csr_matrix, tolerance: float, max_iterations: int
) -> np.ndarray:
    probability_matrix = _uniformised_transition_matrix(matrix)
    n = matrix.shape[0]
    pi = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = pi @ probability_matrix
        updated = np.asarray(updated).ravel()
        total = updated.sum()
        if total <= 0.0:
            raise AnalysisError("power iteration lost all probability mass")
        updated /= total
        if np.max(np.abs(updated - pi)) < tolerance:
            return _normalise(updated)
        pi = updated
    raise AnalysisError(
        f"power iteration did not converge within {max_iterations} iterations"
    )


def _steady_state_gauss_seidel(
    matrix: sparse.csr_matrix, tolerance: float, max_iterations: int
) -> np.ndarray:
    # Solve pi Q = 0 by Gauss-Seidel sweeps on Q^T x = 0 with diag scaling.
    transposed = matrix.transpose().tocsr()
    n = matrix.shape[0]
    diagonal = transposed.diagonal()
    if np.any(diagonal >= 0.0):
        # Absorbing or isolated states make plain Gauss-Seidel ill-defined.
        return _steady_state_power(matrix, tolerance, max_iterations)
    x = np.full(n, 1.0 / n)
    indptr, indices, data = transposed.indptr, transposed.indices, transposed.data
    for iteration in range(max_iterations):
        max_change = 0.0
        for i in range(n):
            row_start, row_end = indptr[i], indptr[i + 1]
            acc = 0.0
            diag = diagonal[i]
            for pointer in range(row_start, row_end):
                j = indices[pointer]
                if j != i:
                    acc += data[pointer] * x[j]
            new_value = -acc / diag
            change = abs(new_value - x[i])
            if change > max_change:
                max_change = change
            x[i] = new_value
        total = x.sum()
        if total <= 0.0:
            raise AnalysisError("Gauss-Seidel iteration lost all probability mass")
        x /= total
        if max_change < tolerance:
            return _normalise(x)
    raise AnalysisError(
        f"Gauss-Seidel iteration did not converge within {max_iterations} iterations"
    )
