"""Continuous-time Markov chain model.

The SPN engine reduces a net to a CTMC over its tangible markings; this class
is the numerical workhorse that stores the (sparse) generator matrix, solves
for stationary and transient distributions and evaluates reward measures.  It
can also be used directly to build hand-written availability models, which the
test-suite exploits to cross-validate the SPN pipeline against closed-form
two-state and birth-death results.
"""

from __future__ import annotations

import warnings
from typing import Callable, Hashable, Iterable, Mapping, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import AnalysisError, ModelError
from repro.markov import solvers
from repro.markov.transient import transient_distribution, transient_rewards


class ContinuousTimeMarkovChain:
    """A labelled CTMC backed by a sparse generator matrix.

    States are arbitrary hashable labels; internally each label maps to an
    index into the generator matrix.
    """

    def __init__(self, states: Sequence[Hashable]):
        states = list(states)
        if not states:
            raise ModelError("a CTMC needs at least one state")
        if len(set(states)) != len(states):
            raise ModelError("CTMC state labels must be unique")
        self._states: list[Hashable] = states
        self._index: dict[Hashable, int] = {state: i for i, state in enumerate(states)}
        self._rates: dict[tuple[int, int], float] = {}
        self._generator_cache: sparse.csr_matrix | None = None

    # --- construction -----------------------------------------------------

    @property
    def states(self) -> list[Hashable]:
        """State labels in index order."""
        return list(self._states)

    @property
    def number_of_states(self) -> int:
        return len(self._states)

    def index_of(self, state: Hashable) -> int:
        """Index of a state label."""
        try:
            return self._index[state]
        except KeyError:
            raise ModelError(f"unknown CTMC state {state!r}") from None

    def add_transition(self, source: Hashable, target: Hashable, rate: float) -> None:
        """Add (or accumulate) a transition rate between two distinct states."""
        if rate < 0.0:
            raise ModelError(f"transition rate must be non-negative, got {rate!r}")
        if rate == 0.0:
            return
        i, j = self.index_of(source), self.index_of(target)
        if i == j:
            raise ModelError(f"self-loop transitions are not allowed (state {source!r})")
        self._rates[(i, j)] = self._rates.get((i, j), 0.0) + rate
        self._generator_cache = None

    @classmethod
    def from_rate_dict(
        cls,
        rates: Mapping[tuple[Hashable, Hashable], float],
        states: Iterable[Hashable] | None = None,
    ) -> "ContinuousTimeMarkovChain":
        """Build a chain from a ``{(source, target): rate}`` mapping."""
        if states is None:
            seen: list[Hashable] = []
            for source, target in rates:
                for state in (source, target):
                    if state not in seen:
                        seen.append(state)
            states = seen
        chain = cls(list(states))
        for (source, target), rate in rates.items():
            chain.add_transition(source, target, rate)
        return chain

    # --- matrices ----------------------------------------------------------

    def generator_matrix(self) -> sparse.csr_matrix:
        """The sparse generator matrix ``Q`` (rows sum to zero)."""
        if self._generator_cache is not None:
            return self._generator_cache
        n = self.number_of_states
        if self._rates:
            rows, cols, data = zip(*((i, j, r) for (i, j), r in self._rates.items()))
        else:
            rows, cols, data = (), (), ()
        matrix = sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tolil()
        exit_rates = np.asarray(matrix.sum(axis=1)).ravel()
        matrix.setdiag(-exit_rates)
        self._generator_cache = matrix.tocsr()
        return self._generator_cache

    def exit_rate(self, state: Hashable) -> float:
        """Total outgoing rate of a state."""
        i = self.index_of(state)
        return float(-self.generator_matrix().diagonal()[i])

    # --- analysis ----------------------------------------------------------

    def steady_state(self, method: str = "auto") -> dict[Hashable, float]:
        """Stationary distribution as a ``{state: probability}`` mapping."""
        pi = solvers.steady_state(self.generator_matrix(), method=method)
        return {state: float(pi[i]) for i, state in enumerate(self._states)}

    def steady_state_vector(self, method: str = "auto") -> np.ndarray:
        """Stationary distribution as a vector aligned with :attr:`states`."""
        return solvers.steady_state(self.generator_matrix(), method=method)

    def transient(
        self, time: float, initial_state: Hashable | Mapping[Hashable, float]
    ) -> dict[Hashable, float]:
        """State distribution at time ``time`` from a state or distribution."""
        pi0 = self._initial_vector(initial_state)
        pi_t = transient_distribution(self.generator_matrix(), pi0, time)
        return {state: float(pi_t[i]) for i, state in enumerate(self._states)}

    def expected_reward(
        self,
        rewards: Mapping[Hashable, float] | Callable[[Hashable], float],
        method: str = "auto",
    ) -> float:
        """Steady-state expected reward ``Σ_s π(s) · r(s)``."""
        reward_vector = self._reward_vector(rewards)
        pi = self.steady_state_vector(method=method)
        return float(pi @ reward_vector)

    def probability_of(
        self,
        predicate: Callable[[Hashable], bool],
        method: str = "auto",
    ) -> float:
        """Steady-state probability of the set of states satisfying ``predicate``."""
        pi = self.steady_state_vector(method=method)
        return float(
            sum(pi[i] for i, state in enumerate(self._states) if predicate(state))
        )

    def expected_transient_reward(
        self,
        rewards: Mapping[Hashable, float] | Callable[[Hashable], float],
        times: Sequence[float],
        initial_state: Hashable | Mapping[Hashable, float],
    ) -> np.ndarray:
        """Expected instantaneous reward at each time in ``times``."""
        reward_vector = self._reward_vector(rewards)
        pi0 = self._initial_vector(initial_state)
        return transient_rewards(self.generator_matrix(), pi0, reward_vector, times)

    def mean_time_to_absorption(
        self,
        absorbing_states: Iterable[Hashable],
        initial_state: Hashable | Mapping[Hashable, float],
    ) -> float:
        """Mean time to reach any state in ``absorbing_states``.

        Used for MTTF-style analyses: make every failure state absorbing and
        ask for the expected hitting time from the fully-working state.

        Raises:
            AnalysisError: when no absorbing state is given, or when some
                transient state cannot reach the absorbing set (the expected
                hitting time is infinite and the restricted generator is
                singular).  The unreachability is detected *before* the
                solve, so scipy's ``MatrixRankWarning`` never fires; any
                residual singular solve is converted to the same clean error
                with warnings suppressed.
        """
        absorbing = {self.index_of(state) for state in absorbing_states}
        if not absorbing:
            raise AnalysisError("at least one absorbing state is required")
        transient_states = [i for i in range(self.number_of_states) if i not in absorbing]
        if not transient_states:
            return 0.0
        stranded = self._states_not_reaching(absorbing)
        if stranded:
            labels = sorted(str(self._states[i]) for i in stranded)
            preview = ", ".join(labels[:5]) + ("…" if len(labels) > 5 else "")
            raise AnalysisError(
                f"mean time to absorption is infinite: {len(stranded)} state(s) "
                f"cannot reach any absorbing state ({preview})"
            )
        generator = self.generator_matrix().tocsc()
        sub_generator = generator[transient_states, :][:, transient_states]
        pi0 = self._initial_vector(initial_state)
        pi0_transient = pi0[transient_states]
        ones = np.ones(len(transient_states))
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", sparse.linalg.MatrixRankWarning)
                expected_times = sparse.linalg.spsolve(sub_generator.tocsc(), -ones)
        except Exception as error:
            raise AnalysisError(f"mean time to absorption solve failed: {error}") from error
        if not np.all(np.isfinite(expected_times)):
            raise AnalysisError(
                "mean time to absorption is infinite (absorbing states unreachable)"
            )
        return float(pi0_transient @ expected_times)

    def _states_not_reaching(self, targets: set[int]) -> set[int]:
        """Indices of states with no directed path into ``targets``.

        One reverse breadth-first sweep over the transition structure (rates
        are irrelevant, only the adjacency matters).
        """
        predecessors: dict[int, list[int]] = {}
        for (i, j) in self._rates:
            predecessors.setdefault(j, []).append(i)
        reached = set(targets)
        frontier = list(targets)
        while frontier:
            state = frontier.pop()
            for predecessor in predecessors.get(state, ()):
                if predecessor not in reached:
                    reached.add(predecessor)
                    frontier.append(predecessor)
        return set(range(self.number_of_states)) - reached

    # --- helpers -------------------------------------------------------------

    def _reward_vector(
        self, rewards: Mapping[Hashable, float] | Callable[[Hashable], float]
    ) -> np.ndarray:
        if callable(rewards):
            return np.asarray([float(rewards(state)) for state in self._states])
        vector = np.zeros(self.number_of_states)
        for state, value in rewards.items():
            vector[self.index_of(state)] = float(value)
        return vector

    def _initial_vector(
        self, initial_state: Hashable | Mapping[Hashable, float]
    ) -> np.ndarray:
        vector = np.zeros(self.number_of_states)
        if isinstance(initial_state, Mapping):
            for state, probability in initial_state.items():
                vector[self.index_of(state)] = float(probability)
        else:
            vector[self.index_of(initial_state)] = 1.0
        if abs(vector.sum() - 1.0) > 1e-8:
            raise AnalysisError("initial distribution must sum to one")
        return vector

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContinuousTimeMarkovChain(states={self.number_of_states}, "
            f"transitions={len(self._rates)})"
        )


def two_state_availability_chain(mttf: float, mttr: float) -> ContinuousTimeMarkovChain:
    """The canonical UP/DOWN availability chain (used for validation)."""
    chain = ContinuousTimeMarkovChain(["UP", "DOWN"])
    chain.add_transition("UP", "DOWN", 1.0 / mttf)
    chain.add_transition("DOWN", "UP", 1.0 / mttr)
    return chain
