"""Markov-chain substrate: CTMC/DTMC models, solvers, transient analysis, rewards."""

from repro.markov.ctmc import ContinuousTimeMarkovChain, two_state_availability_chain
from repro.markov.dtmc import DiscreteTimeMarkovChain
from repro.markov.rewards import RewardReport, RewardStructure
from repro.markov.solvers import steady_state, validate_generator
from repro.markov.transient import (
    transient_distribution,
    transient_reward_block,
    transient_rewards,
)

__all__ = [
    "ContinuousTimeMarkovChain",
    "two_state_availability_chain",
    "DiscreteTimeMarkovChain",
    "RewardReport",
    "RewardStructure",
    "steady_state",
    "validate_generator",
    "transient_distribution",
    "transient_reward_block",
    "transient_rewards",
]
