"""Evaluation of RBD structures: MTTF, equivalent MTTR and summary results.

The hierarchical step of the paper (Section IV-D) needs the *equivalent*
MTTF/MTTR of an RBD so that the corresponding SIMPLE_COMPONENT of the SPN can
be parameterised.  For a series structure of independently repairable
exponential components the standard equivalences are used::

    Λ_eq  = Σ λ_i                      (equivalent failure rate)
    A_eq  = Π A_i                      (steady-state availability)
    MTTF_eq = 1 / Λ_eq
    MTTR_eq = MTTF_eq (1 - A_eq) / A_eq

For arbitrary structures MTTF is obtained by integrating the mission
reliability ``∫ R(t) dt`` and MTTR again follows from the availability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import integrate

from repro.exceptions import AnalysisError
from repro.metrics.availability import number_of_nines
from repro.rbd.blocks import BasicBlock, Block, Series

#: Default integration horizon, as a multiple of the largest leaf MTTF.
#: The truncated tail is *certified* against :func:`_tail_bound` (for a
#: coherent structure ``R(t) ≤ Σᵢ e^(-λᵢ t)``), so at 200 mean lifetimes the
#: neglected mass is below ``Σᵢ MTTFᵢ · e⁻²⁰⁰`` — far under double precision.
DEFAULT_HORIZON_FACTOR = 200.0

#: Relative tolerance the certified tail bound must meet before the horizon
#: stops growing.
_TAIL_RELATIVE_TOLERANCE = 1e-12


def equivalent_failure_rate(block: Block) -> float:
    """Equivalent failure rate of a block.

    Exact for basic blocks and series structures (sum of leaf rates); for
    other structures it is defined as ``1 / MTTF`` with MTTF obtained from
    :func:`mean_time_to_failure`.
    """
    if isinstance(block, BasicBlock):
        return block.failure_rate
    if isinstance(block, Series) and all(
        isinstance(child, (BasicBlock, Series)) for child in block.children
    ):
        return sum(equivalent_failure_rate(child) for child in block.children)
    return 1.0 / mean_time_to_failure(block)


def _tail_bound(leaf_mttfs: list[float], horizon: float) -> float:
    """Certified upper bound on the truncated tail ``∫_H^∞ R(t) dt``.

    A coherent structure is up only while at least one component is up, so
    ``R(t) ≤ Σᵢ P{component i alive at t} = Σᵢ e^(-t / MTTFᵢ)`` and the tail
    beyond ``horizon`` is bounded by ``Σᵢ MTTFᵢ · e^(-horizon / MTTFᵢ)``.
    """
    return sum(mttf * math.exp(-horizon / mttf) for mttf in leaf_mttfs)


def _integration_breakpoints(leaf_mttfs: list[float], horizon: float) -> list[float]:
    """Log-spaced quadrature breakpoints covering every lifetime scale.

    ``R(t)``'s mass can sit anywhere between the fastest failure scale
    (``1 / Σ λᵢ``) and the horizon; with leaf MTTFs separated by many orders
    of magnitude a single adaptive pass over ``[0, horizon]`` samples right
    past the concentrated mass and silently truncates the integral (the bug
    this replaces).  One breakpoint per decade forces the quadrature to
    resolve every scale.
    """
    fastest = 0.1 / sum(1.0 / mttf for mttf in leaf_mttfs)
    first = math.floor(math.log10(fastest))
    last = math.ceil(math.log10(horizon))
    return [10.0**k for k in range(first, last) if 0.0 < 10.0**k < horizon]


def mean_time_to_failure(
    block: Block, upper_limit_factor: Optional[float] = None
) -> float:
    """Mean time to first failure of the structure (no repair).

    Closed form for basic blocks and series-of-exponential structures;
    numerical integration of ``R(t)`` otherwise.  The integration places one
    breakpoint per decade between the fastest failure scale and the horizon
    (so widely separated component lifetimes cannot be sampled past — the
    old single-pass quadrature silently lost the concentrated mass of
    highly redundant parallel / k-out-of-n structures inside larger
    systems), and the truncated tail is certified against the coherent-
    structure bound ``R(t) ≤ Σᵢ e^(-λᵢ t)``, growing the horizon until the
    neglected tail is relatively negligible.

    Args:
        block: the structure to evaluate.
        upper_limit_factor: optional explicit truncation horizon as a
            multiple of the largest leaf MTTF; ``None`` (the default) uses
            ``200`` lifetimes *and* enforces the certified tail bound.
    """
    if isinstance(block, BasicBlock):
        return block.mttf()
    if isinstance(block, Series) and all(
        isinstance(child, (BasicBlock, Series)) for child in block.children
    ):
        return 1.0 / sum(equivalent_failure_rate(child) for child in block.children)

    leaf_mttfs = [leaf.mttf() for leaf in block.basic_blocks()]
    longest_leaf_mttf = max(leaf_mttfs)
    explicit_horizon = upper_limit_factor is not None
    factor = upper_limit_factor if explicit_horizon else DEFAULT_HORIZON_FACTOR
    horizon = factor * longest_leaf_mttf

    value = 0.0
    absolute_error = 0.0
    lower = 0.0
    while True:
        points = [
            point
            for point in _integration_breakpoints(leaf_mttfs, horizon)
            if lower < point < horizon
        ]
        piece, piece_error = integrate.quad(
            block.reliability,
            lower,
            horizon,
            limit=max(400, 50 * (len(points) + 1)),
            points=points or None,
        )
        value += piece
        absolute_error += piece_error
        if explicit_horizon:
            break
        tail = _tail_bound(leaf_mttfs, horizon)
        if tail <= _TAIL_RELATIVE_TOLERANCE * max(value, tail):
            break
        # Certified tail still matters: push the horizon out and integrate
        # the next slab (geometric growth terminates in a handful of steps
        # because the bound decays exponentially).
        lower, horizon = horizon, 2.0 * horizon
    if value <= 0.0:
        raise AnalysisError(
            f"numerical MTTF integration for block {block.name!r} returned {value!r}"
        )
    if absolute_error > max(1e-6, 1e-4 * value):
        raise AnalysisError(
            f"numerical MTTF integration for block {block.name!r} did not converge "
            f"(value={value!r}, error estimate={absolute_error!r})"
        )
    return value


def equivalent_mttr(block: Block) -> float:
    """Equivalent MTTR consistent with the block availability and MTTF."""
    if isinstance(block, BasicBlock):
        return block.mttr()
    availability = block.availability()
    if availability >= 1.0:
        return 0.0
    if availability <= 0.0:
        raise AnalysisError(
            f"block {block.name!r} has zero availability; equivalent MTTR is undefined"
        )
    mttf = mean_time_to_failure(block)
    return mttf * (1.0 - availability) / availability


@dataclass(frozen=True)
class RbdResult:
    """Summary of an RBD evaluation used to feed the SPN level.

    Attributes:
        name: name of the evaluated structure.
        availability: steady-state availability.
        mttf: equivalent mean time to failure.
        mttr: equivalent mean time to repair.
    """

    name: str
    availability: float
    mttf: float
    mttr: float

    @property
    def nines(self) -> float:
        """Number of nines of the availability."""
        return number_of_nines(self.availability)

    @property
    def failure_rate(self) -> float:
        """Equivalent failure rate ``1 / MTTF``."""
        return 1.0 / self.mttf


def evaluate(block: Block) -> RbdResult:
    """Evaluate a block and return the (availability, MTTF, MTTR) summary."""
    return RbdResult(
        name=block.name,
        availability=block.availability(),
        mttf=mean_time_to_failure(block),
        mttr=equivalent_mttr(block),
    )
