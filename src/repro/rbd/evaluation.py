"""Evaluation of RBD structures: MTTF, equivalent MTTR and summary results.

The hierarchical step of the paper (Section IV-D) needs the *equivalent*
MTTF/MTTR of an RBD so that the corresponding SIMPLE_COMPONENT of the SPN can
be parameterised.  For a series structure of independently repairable
exponential components the standard equivalences are used::

    Λ_eq  = Σ λ_i                      (equivalent failure rate)
    A_eq  = Π A_i                      (steady-state availability)
    MTTF_eq = 1 / Λ_eq
    MTTR_eq = MTTF_eq (1 - A_eq) / A_eq

For arbitrary structures MTTF is obtained by integrating the mission
reliability ``∫ R(t) dt`` and MTTR again follows from the availability.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import integrate

from repro.exceptions import AnalysisError
from repro.metrics.availability import number_of_nines
from repro.rbd.blocks import BasicBlock, Block, Series


def equivalent_failure_rate(block: Block) -> float:
    """Equivalent failure rate of a block.

    Exact for basic blocks and series structures (sum of leaf rates); for
    other structures it is defined as ``1 / MTTF`` with MTTF obtained from
    :func:`mean_time_to_failure`.
    """
    if isinstance(block, BasicBlock):
        return block.failure_rate
    if isinstance(block, Series) and all(
        isinstance(child, (BasicBlock, Series)) for child in block.children
    ):
        return sum(equivalent_failure_rate(child) for child in block.children)
    return 1.0 / mean_time_to_failure(block)


def mean_time_to_failure(block: Block, upper_limit_factor: float = 200.0) -> float:
    """Mean time to first failure of the structure (no repair).

    Closed form for basic blocks and series-of-exponential structures,
    numerical integration of ``R(t)`` otherwise.
    """
    if isinstance(block, BasicBlock):
        return block.mttf()
    if isinstance(block, Series) and all(
        isinstance(child, (BasicBlock, Series)) for child in block.children
    ):
        return 1.0 / sum(equivalent_failure_rate(child) for child in block.children)

    longest_leaf_mttf = max(leaf.mttf() for leaf in block.basic_blocks())
    upper_limit = upper_limit_factor * longest_leaf_mttf
    value, absolute_error = integrate.quad(
        block.reliability, 0.0, upper_limit, limit=400
    )
    if value <= 0.0:
        raise AnalysisError(
            f"numerical MTTF integration for block {block.name!r} returned {value!r}"
        )
    if absolute_error > max(1e-6, 1e-4 * value):
        raise AnalysisError(
            f"numerical MTTF integration for block {block.name!r} did not converge "
            f"(value={value!r}, error estimate={absolute_error!r})"
        )
    return value


def equivalent_mttr(block: Block) -> float:
    """Equivalent MTTR consistent with the block availability and MTTF."""
    if isinstance(block, BasicBlock):
        return block.mttr()
    availability = block.availability()
    if availability >= 1.0:
        return 0.0
    if availability <= 0.0:
        raise AnalysisError(
            f"block {block.name!r} has zero availability; equivalent MTTR is undefined"
        )
    mttf = mean_time_to_failure(block)
    return mttf * (1.0 - availability) / availability


@dataclass(frozen=True)
class RbdResult:
    """Summary of an RBD evaluation used to feed the SPN level.

    Attributes:
        name: name of the evaluated structure.
        availability: steady-state availability.
        mttf: equivalent mean time to failure.
        mttr: equivalent mean time to repair.
    """

    name: str
    availability: float
    mttf: float
    mttr: float

    @property
    def nines(self) -> float:
        """Number of nines of the availability."""
        return number_of_nines(self.availability)

    @property
    def failure_rate(self) -> float:
        """Equivalent failure rate ``1 / MTTF``."""
        return 1.0 / self.mttf


def evaluate(block: Block) -> RbdResult:
    """Evaluate a block and return the (availability, MTTF, MTTR) summary."""
    return RbdResult(
        name=block.name,
        availability=block.availability(),
        mttf=mean_time_to_failure(block),
        mttr=equivalent_mttr(block),
    )
