"""Component importance measures for RBD structures.

These measures tell a designer which component most limits system
availability — useful when deciding where to add redundancy (the kind of
design question the paper's case study is meant to answer at the data-center
level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.rbd.blocks import Block


@dataclass(frozen=True)
class ImportanceResult:
    """Importance indices of a single basic block within a structure.

    Attributes:
        component: basic-block name.
        birnbaum: Birnbaum (marginal) importance
            ``A_sys(A_i = 1) - A_sys(A_i = 0)``.
        availability_improvement: increase in system availability obtained by
            making the component perfect (``A_i = 1``).
        criticality: Birnbaum importance weighted by the component's own
            unavailability relative to the system's unavailability.
    """

    component: str
    birnbaum: float
    availability_improvement: float
    criticality: float


def birnbaum_importance(block: Block) -> Mapping[str, float]:
    """Birnbaum importance of every basic block of ``block``."""
    return {
        result.component: result.birnbaum for result in importance_analysis(block)
    }


def importance_analysis(block: Block) -> list[ImportanceResult]:
    """Compute importance indices for every basic block of a structure.

    Results are sorted by decreasing Birnbaum importance so the most critical
    component appears first.
    """
    system_availability = block.availability()
    system_unavailability = 1.0 - system_availability
    results = []
    for leaf in block.basic_blocks():
        with_perfect = block.availability_given({leaf.name: 1.0})
        with_failed = block.availability_given({leaf.name: 0.0})
        birnbaum = with_perfect - with_failed
        leaf_availability = leaf.availability()
        if system_unavailability > 0.0:
            criticality = birnbaum * (1.0 - leaf_availability) / system_unavailability
        else:
            criticality = 0.0
        results.append(
            ImportanceResult(
                component=leaf.name,
                birnbaum=birnbaum,
                availability_improvement=with_perfect - system_availability,
                criticality=criticality,
            )
        )
    results.sort(key=lambda result: result.birnbaum, reverse=True)
    return results
