"""Convenience constructors for common RBD shapes.

These helpers keep the case-study code declarative, e.g.::

    os_pm = series("OS_PM", [("OS", 4000.0, 1.0), ("PM", 1000.0, 12.0)])
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple, Union

from repro.rbd.blocks import BasicBlock, Block, KOutOfN, Parallel, Series

ComponentSpec = Union[Block, Tuple[str, float, float]]


def _as_block(spec: ComponentSpec) -> Block:
    if isinstance(spec, Block):
        return spec
    name, mttf, mttr = spec
    return BasicBlock(name, mttf, mttr)


def series(name: str, components: Iterable[ComponentSpec]) -> Series:
    """Series structure from blocks or ``(name, mttf, mttr)`` tuples."""
    return Series(name, [_as_block(spec) for spec in components])


def parallel(name: str, components: Iterable[ComponentSpec]) -> Parallel:
    """Parallel structure from blocks or ``(name, mttf, mttr)`` tuples."""
    return Parallel(name, [_as_block(spec) for spec in components])


def k_out_of_n(name: str, k: int, components: Iterable[ComponentSpec]) -> KOutOfN:
    """k-out-of-n structure from blocks or ``(name, mttf, mttr)`` tuples."""
    return KOutOfN(name, k, [_as_block(spec) for spec in components])


def replicate(
    name: str, prototype: Tuple[float, float], count: int, prefix: str
) -> Sequence[BasicBlock]:
    """Create ``count`` identical basic blocks named ``prefix_1..prefix_count``.

    Args:
        name: unused placeholder kept for symmetry with the other builders
            (the returned blocks are leaves, the caller wraps them).
        prototype: ``(mttf, mttr)`` shared by every replica.
        count: number of replicas (must be positive).
        prefix: name prefix of each replica.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count!r}")
    mttf, mttr = prototype
    return [BasicBlock(f"{prefix}_{index}", mttf, mttr) for index in range(1, count + 1)]
