"""Reliability Block Diagrams: structures, evaluation and importance analysis."""

from repro.rbd.blocks import BasicBlock, Block, Bridge, KOutOfN, Parallel, Series
from repro.rbd.builders import k_out_of_n, parallel, replicate, series
from repro.rbd.evaluation import (
    RbdResult,
    equivalent_failure_rate,
    equivalent_mttr,
    evaluate,
    mean_time_to_failure,
)
from repro.rbd.importance import ImportanceResult, birnbaum_importance, importance_analysis

__all__ = [
    "BasicBlock",
    "Block",
    "Bridge",
    "KOutOfN",
    "Parallel",
    "Series",
    "k_out_of_n",
    "parallel",
    "replicate",
    "series",
    "RbdResult",
    "equivalent_failure_rate",
    "equivalent_mttr",
    "evaluate",
    "mean_time_to_failure",
    "ImportanceResult",
    "birnbaum_importance",
    "importance_analysis",
]
