"""Reliability Block Diagram (RBD) structures.

The paper uses RBDs at the lower level of its hierarchical approach
(Section IV-D, Figure 5): the operating system and the physical-machine
hardware form a series RBD (``OS_PM``), and the switch, router and NAS form a
second series RBD (``NAS_NET``).  The equivalent MTTF/MTTR of each RBD then
parameterises a SIMPLE_COMPONENT of the higher-level SPN.

The implementation is more general than the paper needs: series, parallel,
k-out-of-n and bridge structures may be nested arbitrarily, and every block
exposes steady-state availability, time-dependent reliability (without
repair), an equivalent failure rate and equivalent MTTF/MTTR.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ModelError
from repro.metrics.availability import availability_from_mttf_mttr


class Block:
    """Base class of every RBD node.

    Concrete subclasses implement :meth:`availability_given` (steady-state
    availability with optional per-basic-block overrides) and
    :meth:`reliability` (probability of surviving ``[0, t]`` without repair).
    """

    name: str

    def availability(self) -> float:
        """Steady-state availability of the (sub)system rooted at this block."""
        return self.availability_given({})

    def availability_given(self, overrides: Mapping[str, float]) -> float:
        """Availability with some basic blocks pinned to given values.

        Args:
            overrides: mapping from basic-block name to an availability value
                in ``[0, 1]``; used by importance analysis.
        """
        raise NotImplementedError

    def reliability(self, time: float) -> float:
        """Reliability ``R(t)`` assuming no repair (mission reliability)."""
        raise NotImplementedError

    def basic_blocks(self) -> list["BasicBlock"]:
        """All basic (leaf) blocks in the subtree, in depth-first order."""
        raise NotImplementedError

    def basic_block_names(self) -> list[str]:
        """Names of all basic blocks in the subtree."""
        return [block.name for block in self.basic_blocks()]

    # Derived metrics -----------------------------------------------------

    def mttf(self, upper_limit_factor: "float | None" = None) -> float:
        """Mean time to (first) failure ``∫ R(t) dt``.

        For leaves and pure series structures the closed form is used; other
        structures integrate the reliability numerically with per-decade
        breakpoints and a certified exponential tail bound (see
        :func:`repro.rbd.evaluation.mean_time_to_failure`).  An explicit
        ``upper_limit_factor`` truncates at that multiple of the largest
        leaf MTTF instead.
        """
        from repro.rbd.evaluation import mean_time_to_failure

        return mean_time_to_failure(self, upper_limit_factor=upper_limit_factor)

    def mttr(self) -> float:
        """Equivalent MTTR consistent with the availability and the MTTF."""
        from repro.rbd.evaluation import equivalent_mttr

        return equivalent_mttr(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class BasicBlock(Block):
    """A leaf component with exponential failure and repair times.

    Attributes:
        name: unique component name (e.g. ``"OS"``, ``"Router"``).
        mttf: mean time to failure (hours in the paper's tables).
        mttr: mean time to repair (same unit).
    """

    def __init__(self, name: str, mttf: float, mttr: float):
        if not name:
            raise ModelError("a basic block needs a non-empty name")
        if mttf <= 0.0:
            raise ModelError(f"block {name!r}: MTTF must be positive, got {mttf!r}")
        if mttr < 0.0:
            raise ModelError(f"block {name!r}: MTTR must be non-negative, got {mttr!r}")
        self.name = name
        self._mttf = mttf
        self._mttr = mttr

    @property
    def failure_rate(self) -> float:
        """Exponential failure rate ``1 / MTTF``."""
        return 1.0 / self._mttf

    @property
    def repair_rate(self) -> float:
        """Exponential repair rate ``1 / MTTR`` (``inf`` for MTTR = 0)."""
        if self._mttr == 0.0:
            return math.inf
        return 1.0 / self._mttr

    def availability_given(self, overrides: Mapping[str, float]) -> float:
        if self.name in overrides:
            value = overrides[self.name]
            if not 0.0 <= value <= 1.0:
                raise ModelError(
                    f"override for block {self.name!r} must be in [0, 1], got {value!r}"
                )
            return value
        return availability_from_mttf_mttr(self._mttf, self._mttr)

    def reliability(self, time: float) -> float:
        if time < 0.0:
            raise ValueError(f"time must be non-negative, got {time!r}")
        return math.exp(-time / self._mttf)

    def basic_blocks(self) -> list["BasicBlock"]:
        return [self]

    def mttf(self, upper_limit_factor: float = 200.0) -> float:
        return self._mttf

    def mttr(self) -> float:
        return self._mttr


class _Composite(Block):
    """Shared plumbing of structures with child blocks."""

    def __init__(self, name: str, children: Iterable[Block]):
        children = list(children)
        if not name:
            raise ModelError("a composite block needs a non-empty name")
        if not children:
            raise ModelError(f"composite block {name!r} needs at least one child")
        names = [block.name for child in children for block in child.basic_blocks()]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ModelError(
                f"composite block {name!r} contains duplicated basic block names: "
                f"{sorted(duplicates)}"
            )
        self.name = name
        self.children: Sequence[Block] = tuple(children)

    def basic_blocks(self) -> list[BasicBlock]:
        blocks: list[BasicBlock] = []
        for child in self.children:
            blocks.extend(child.basic_blocks())
        return blocks


class Series(_Composite):
    """Series arrangement: the structure works iff every child works."""

    def availability_given(self, overrides: Mapping[str, float]) -> float:
        result = 1.0
        for child in self.children:
            result *= child.availability_given(overrides)
        return result

    def reliability(self, time: float) -> float:
        result = 1.0
        for child in self.children:
            result *= child.reliability(time)
        return result


class Parallel(_Composite):
    """Parallel arrangement: the structure works iff at least one child works."""

    def availability_given(self, overrides: Mapping[str, float]) -> float:
        result = 1.0
        for child in self.children:
            result *= 1.0 - child.availability_given(overrides)
        return 1.0 - result

    def reliability(self, time: float) -> float:
        result = 1.0
        for child in self.children:
            result *= 1.0 - child.reliability(time)
        return 1.0 - result


class KOutOfN(_Composite):
    """k-out-of-n arrangement: works iff at least ``k`` of the children work.

    Children do not need to be identical; the evaluation enumerates all
    working/failed child combinations, which is exact and fine for the small
    ``n`` used in dependability block diagrams.
    """

    def __init__(self, name: str, k: int, children: Iterable[Block]):
        super().__init__(name, children)
        if not 1 <= k <= len(self.children):
            raise ModelError(
                f"k-out-of-n block {name!r}: k={k} must be between 1 and "
                f"{len(self.children)}"
            )
        self.k = k

    def _probability_at_least_k(self, child_probabilities: Sequence[float]) -> float:
        n = len(child_probabilities)
        total = 0.0
        for working in itertools.product((True, False), repeat=n):
            if sum(working) < self.k:
                continue
            probability = 1.0
            for is_working, p in zip(working, child_probabilities):
                probability *= p if is_working else (1.0 - p)
            total += probability
        return total

    def availability_given(self, overrides: Mapping[str, float]) -> float:
        return self._probability_at_least_k(
            [child.availability_given(overrides) for child in self.children]
        )

    def reliability(self, time: float) -> float:
        return self._probability_at_least_k(
            [child.reliability(time) for child in self.children]
        )


class Bridge(_Composite):
    """Classical five-component bridge structure.

    Children are ordered ``[A, B, C, D, E]`` where A-B form the upper path,
    C-D the lower path and E is the bridging component.  Evaluated by
    conditioning on the state of E (factoring theorem).
    """

    def __init__(self, name: str, children: Iterable[Block]):
        super().__init__(name, children)
        if len(self.children) != 5:
            raise ModelError(
                f"bridge block {name!r} needs exactly five children, got "
                f"{len(self.children)}"
            )

    @staticmethod
    def _structure(p: Sequence[float]) -> float:
        a, b, c, d, e = p
        # Condition on the bridge element E.
        given_e_up = (1.0 - (1.0 - a) * (1.0 - c)) * (1.0 - (1.0 - b) * (1.0 - d))
        given_e_down = 1.0 - (1.0 - a * b) * (1.0 - c * d)
        return e * given_e_up + (1.0 - e) * given_e_down

    def availability_given(self, overrides: Mapping[str, float]) -> float:
        return self._structure(
            [child.availability_given(overrides) for child in self.children]
        )

    def reliability(self, time: float) -> float:
        return self._structure([child.reliability(time) for child in self.children])
