"""Incidence-matrix kernel: array-level enabling, degrees and firing.

The scalar :class:`~repro.spn.enabling.CompiledTransition` API answers "is
this one transition enabled in this one marking?" with a Python loop over arc
tuples.  Reachability generation asks that question ``|frontier| × |T|``
times per BFS wave and the event-driven simulator asks it ``|T|`` times per
event, so :class:`IncidenceKernel` lifts the whole net into dense incidence
arrays of shape ``(T, P)`` — input multiplicities, output multiplicities,
token deltas and inhibitor thresholds — and answers it for a whole
``(F, P)`` block of markings with a handful of broadcast compares.

Transitions with guards keep their compiled scalar closures: the structural
part (arcs, inhibitors) is evaluated vectorized and only the guard itself
falls back to per-marking evaluation, restricted to the rows where the
transition is structurally enabled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (enabling → kernel)
    from repro.spn.enabling import CompiledNet

#: Inhibitor threshold meaning "no inhibitor arc": no bounded marking reaches it.
NO_INHIBITOR = np.iinfo(np.int64).max

#: Enabling degree assigned to transitions without input arcs.
_UNBOUNDED_DEGREE = np.iinfo(np.int64).max


class IncidenceKernel:
    """Dense incidence-array view of a compiled net.

    Attributes:
        input_requirement: ``(T, P)`` int64 — tokens a marking must hold for
            the transition to be enabled (the *maximum* input-arc
            multiplicity per pair, matching the scalar per-arc checks when a
            pair carries several arcs).
        input_total / output_total: ``(T, P)`` int64 — tokens consumed /
            produced by one firing (arc multiplicities *summed* per pair).
        delta: ``output_total - input_total`` — firing is one vector add.
        inhibitor_matrix: ``(T, P)`` int64 thresholds; a marking with
            ``tokens >= threshold`` in any place disables the transition
            (:data:`NO_INHIBITOR` where no inhibitor arc exists).
        guards: per-transition compiled guard closure or ``None``.
        timed_indices / immediate_indices: transition-id subsets, in net
            order (the order of ``net.timed_transitions`` /
            ``net.immediate_transitions``).
        timed_rates: nominal rates of the timed subset.
        timed_infinite_server: bool mask over the timed subset.
        immediate_weights / immediate_priorities: race data of the immediate
            subset.
    """

    def __init__(self, net: "CompiledNet") -> None:
        self.net = net
        transitions = net.transitions
        number_of_places = len(net.place_names)
        shape = (len(transitions), number_of_places)
        self.input_requirement = np.zeros(shape, dtype=np.int64)
        self.input_total = np.zeros(shape, dtype=np.int64)
        self.output_total = np.zeros(shape, dtype=np.int64)
        self.inhibitor_matrix = np.full(shape, NO_INHIBITOR, dtype=np.int64)
        for row, transition in enumerate(transitions):
            for place, multiplicity in transition.inputs:
                self.input_requirement[row, place] = max(
                    int(self.input_requirement[row, place]), multiplicity
                )
                self.input_total[row, place] += multiplicity
            for place, multiplicity in transition.outputs:
                self.output_total[row, place] += multiplicity
            for place, multiplicity in transition.inhibitors:
                self.inhibitor_matrix[row, place] = min(
                    int(self.inhibitor_matrix[row, place]), multiplicity
                )
        self.delta = self.output_total - self.input_total
        self.has_inputs = self.input_requirement.any(axis=1)
        self.has_inhibitors = (self.inhibitor_matrix != NO_INHIBITOR).any(axis=1)
        self.guards = tuple(t.guard for t in transitions)
        self.guard_vectors = tuple(t.guard_vector for t in transitions)
        self.guarded = np.asarray([t.guard is not None for t in transitions], dtype=bool)
        self.timed_indices = np.asarray(
            [i for i, t in enumerate(transitions) if not t.immediate], dtype=np.int64
        )
        self.immediate_indices = np.asarray(
            [i for i, t in enumerate(transitions) if t.immediate], dtype=np.int64
        )
        self.timed_rates = np.asarray(
            [transitions[i].rate for i in self.timed_indices], dtype=np.float64
        )
        self.timed_infinite_server = np.asarray(
            [transitions[i].infinite_server for i in self.timed_indices], dtype=bool
        )
        self.immediate_weights = np.asarray(
            [transitions[i].weight for i in self.immediate_indices], dtype=np.float64
        )
        self.immediate_priorities = np.asarray(
            [transitions[i].priority for i in self.immediate_indices], dtype=np.int64
        )
        self._infinite_positions = np.nonzero(self.timed_infinite_server)[0]
        self._infinite_ids = self.timed_indices[self._infinite_positions]
        # Per-transition sparse columns: the handful of places an enabling
        # check actually reads, for the large-block code path of `enabled`.
        self._input_places = []
        self._input_levels = []
        self._inhibitor_places = []
        self._inhibitor_levels = []
        for row in range(len(transitions)):
            places = np.nonzero(self.input_requirement[row])[0]
            self._input_places.append(places)
            self._input_levels.append(self.input_requirement[row, places])
            places = np.nonzero(self.inhibitor_matrix[row] != NO_INHIBITOR)[0]
            self._inhibitor_places.append(places)
            self._inhibitor_levels.append(self.inhibitor_matrix[row, places])
        # Divisor-safe copy of the requirement matrix for the degree floor-divide.
        self._degree_divisor = np.maximum(self.input_requirement, 1)
        # Firing can only push a place negative when some pair carries several
        # input arcs (enabled by the max multiplicity, consumes the sum).
        self.firing_can_go_negative = bool((self.input_total > self.input_requirement).any())

    # --- batch queries ------------------------------------------------------

    def enabled(self, markings: np.ndarray, transition_ids: np.ndarray) -> np.ndarray:
        """``(F, K)`` enabledness of ``transition_ids`` over a marking block.

        ``markings`` is an ``(F, P)`` int64 array; guards are evaluated
        vectorized over the rows where the transition is structurally
        enabled.  Small blocks use one 3-D broadcast compare; large blocks
        check each transition's few relevant places (input and inhibitor
        columns) instead of all ``P`` places.
        """
        rows = markings.shape[0]
        if rows * transition_ids.size * markings.shape[1] <= 65536:
            requirements = self.input_requirement[transition_ids]
            thresholds = self.inhibitor_matrix[transition_ids]
            block = markings[:, None, :]
            mask = (block >= requirements[None, :, :]).all(axis=2)
            mask &= (block < thresholds[None, :, :]).all(axis=2)
        else:
            mask = np.empty((rows, transition_ids.size), dtype=bool)
            for column, transition_id in enumerate(transition_ids):
                places = self._input_places[transition_id]
                if places.size:
                    verdict = (
                        markings[:, places] >= self._input_levels[transition_id]
                    ).all(axis=1)
                else:
                    verdict = np.ones(rows, dtype=bool)
                places = self._inhibitor_places[transition_id]
                if places.size:
                    verdict &= (
                        markings[:, places] < self._inhibitor_levels[transition_id]
                    ).all(axis=1)
                mask[:, column] = verdict
        self._apply_guards(markings, transition_ids, mask)
        return mask

    def _apply_guards(
        self, markings: np.ndarray, transition_ids: np.ndarray, mask: np.ndarray
    ) -> None:
        if not self.guarded[transition_ids].any():
            return
        for column, transition_id in enumerate(transition_ids):
            guard_vector = self.guard_vectors[transition_id]
            if guard_vector is None:
                continue
            rows = np.nonzero(mask[:, column])[0]
            if rows.size == 0:
                continue
            verdict = guard_vector(markings[rows])
            if isinstance(verdict, np.ndarray):
                mask[rows, column] = verdict.astype(bool, copy=False)
            elif not verdict:
                mask[rows, column] = False

    def enabling_degrees(
        self, markings: np.ndarray, transition_ids: np.ndarray
    ) -> np.ndarray:
        """``(F, K)`` enabling degrees (input arcs only; no inputs → 1).

        Degrees are reported independently of enabledness: rows where a
        transition is disabled carry whatever the floor-divide produced and
        must be masked by the caller.
        """
        requirements = self.input_requirement[transition_ids]
        divisors = self._degree_divisor[transition_ids]
        quotients = markings[:, None, :] // divisors[None, :, :]
        quotients = np.where(requirements[None, :, :] > 0, quotients, _UNBOUNDED_DEGREE)
        degrees = quotients.min(axis=2)
        return np.where(self.has_inputs[transition_ids][None, :], degrees, 1)

    def successors(
        self, markings: np.ndarray, rows: np.ndarray, transition_ids: np.ndarray
    ) -> np.ndarray:
        """Successor markings ``markings[rows] + delta[transition_ids]``."""
        return markings[rows] + self.delta[transition_ids]

    def vanishing_mask(self, markings: np.ndarray) -> np.ndarray:
        """``(F,)`` bool — which markings enable at least one immediate transition."""
        if self.immediate_indices.size == 0:
            return np.zeros(len(markings), dtype=bool)
        return self.enabled(markings, self.immediate_indices).any(axis=1)

    # --- single-marking queries (simulator hot path) ------------------------

    def timed_effective_rates(self, marking: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One vectorized pass over all timed transitions for one marking.

        Returns:
            ``(enabled, rates)`` — bool mask and effective rates (nominal
            rate × enabling degree for infinite-server transitions, zero
            where disabled), both aligned with ``net.timed_transitions``.
        """
        block = marking[None, :]
        enabled = self.enabled(block, self.timed_indices)[0]
        rates = np.where(enabled, self.timed_rates, 0.0)
        if self._infinite_ids.size:
            degrees = self.enabling_degrees(block, self._infinite_ids)[0]
            rates[self._infinite_positions] *= degrees
        return enabled, rates

    def enabled_immediate_indices(self, marking: np.ndarray) -> np.ndarray:
        """Enabled immediate transitions of the highest enabled priority.

        Returns positions into ``net.immediate_transitions`` (equivalently
        into ``immediate_weights``), not global transition ids.
        """
        if self.immediate_indices.size == 0:
            return self.immediate_indices
        enabled = self.enabled(marking[None, :], self.immediate_indices)[0]
        if not enabled.any():
            return np.zeros(0, dtype=np.int64)
        top = self.immediate_priorities[enabled].max()
        return np.nonzero(enabled & (self.immediate_priorities == top))[0]


# --- memory-footprint estimation --------------------------------------------

#: CPython overhead of interning one marking: the bytes key object, the dict
#: slot, and the marking tuple of small ints (measured ~120 B on 64-bit
#: builds, amortised over dict resizing).
_INTERNER_OVERHEAD_BYTES = 120

#: Bytes one marking component costs across the interner structures (int64
#: array row + tuple slot + bytes-key payload).
_PER_PLACE_BYTES = 32

#: Bytes one stored edge costs in the in-RAM representation: source + target
#: int64, rate float64, ECM entry (data + index), SCM share and indptr
#: amortisation.
_PER_EDGE_BYTES = 80


def estimate_state_bytes(net: "CompiledNet") -> tuple[int, int]:
    """Estimated peak bytes *per tangible state* for each representation.

    Returns ``(in_ram, chunked)``.  The in-RAM figure covers the marking
    interner plus the accumulated edge arrays and coefficient matrices,
    assuming roughly one stored edge per (state, timed transition) pair —
    the density this model family exhibits once vanishing markings are
    absorbed.  The chunked figure keeps the interner (states must still be
    deduplicated in RAM during generation) and a handful of dense
    state-length solver vectors, but no accumulated edge structures.

    These are *planning* numbers for :func:`repro.engine.dispatch.plan_representation`
    — deliberately coarse, only good enough to separate fits-in-budget from
    doesn't by integer factors.
    """
    places = max(1, len(net.place_names))
    timed = max(1, len(net.timed_transitions))
    interner = _INTERNER_OVERHEAD_BYTES + _PER_PLACE_BYTES * places
    in_ram = interner + timed * _PER_EDGE_BYTES
    # Chunked: interner + ~8 dense float64 state vectors (solution, warm
    # start, exit rates, Krylov work arrays) resident during the solve.
    chunked = interner + 8 * 8
    return in_ram, chunked
