"""Parametric re-rating of a tangible reachability graph.

The structure of a GSPN's tangible reachability graph (which markings exist
and which transition leads from which marking to which) never depends on the
*delays* of the timed transitions — only on the arcs and guards.  The Figure 7
sweep of the paper evaluates 45 configurations of one and the same net
structure, varying only the migration delays (distance and α) and the
disaster mean time; regenerating the state space 45 times would dominate the
cost.  ``with_transition_delays`` therefore rebuilds the edge rates of an
existing graph from its rate-independent edge coefficients.

Since the graph stores its per-transition coefficients as one stacked sparse
matrix ``C`` of shape ``(transitions, edges)``, re-rating is a single sparse
mat-vec ``edge_rates(θ) = Cᵀ · rate_vector(θ)`` — a few numpy operations even
for graphs with 10⁴⁺ states, not a per-edge dict walk.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import AnalysisError
from repro.spn.reachability import TangibleReachabilityGraph


def rate_vector_with_overrides(
    graph: TangibleReachabilityGraph, rates: Mapping[str, float]
) -> np.ndarray:
    """The graph's rate vector with ``rates`` substituted in, validated.

    Raises:
        AnalysisError: if the graph carries no coefficients, a named
            transition does not exist, or a rate is not positive.
    """
    if not graph.has_coefficients:
        raise AnalysisError(
            "the reachability graph does not carry per-transition coefficients; "
            "regenerate it with generate_tangible_reachability_graph()"
        )
    unknown = set(rates) - set(graph.transition_index)
    if unknown:
        raise AnalysisError(
            f"cannot re-rate unknown timed transitions: {sorted(unknown)}"
        )
    vector = graph.rate_vector.copy()
    for name, value in rates.items():
        if value <= 0.0:
            raise AnalysisError(
                f"transition {name!r}: the new rate must be positive, got {value!r}"
            )
        vector[graph.transition_index[name]] = float(value)
    return vector


def with_transition_rates(
    graph: TangibleReachabilityGraph, rates: Mapping[str, float]
) -> TangibleReachabilityGraph:
    """A copy of ``graph`` with some timed transitions firing at new rates.

    Args:
        graph: a graph produced by
            :func:`repro.spn.reachability.generate_tangible_reachability_graph`.
        rates: ``{transition_name: new_rate}``; transitions not mentioned keep
            the rate they were generated with.

    Returns:
        A new :class:`TangibleReachabilityGraph` sharing the markings and
        coefficient matrices of the original but with recomputed edge rates
        (and therefore throughput contributions).

    Raises:
        AnalysisError: if the graph was generated without coefficient
            tracking, a named transition does not exist, or a rate is not
            positive.
    """
    return graph.with_rate_vector(rate_vector_with_overrides(graph, rates))


def with_transition_delays(
    graph: TangibleReachabilityGraph, delays: Mapping[str, float]
) -> TangibleReachabilityGraph:
    """Same as :func:`with_transition_rates` but specified as mean delays.

    This matches how the paper's tables express parameters (MTTF, MTTR, MTT
    — all mean times rather than rates).
    """
    return with_transition_rates(graph, delays_to_rates(delays))


def delays_to_rates(delays: Mapping[str, float]) -> dict[str, float]:
    """Invert a ``{transition: mean_delay}`` mapping into rates, validating."""
    for name, delay in delays.items():
        if delay <= 0.0:
            raise AnalysisError(
                f"transition {name!r}: the new delay must be positive, got {delay!r}"
            )
    return {name: 1.0 / delay for name, delay in delays.items()}
