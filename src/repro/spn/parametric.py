"""Parametric re-rating of a tangible reachability graph.

The structure of a GSPN's tangible reachability graph (which markings exist
and which transition leads from which marking to which) never depends on the
*delays* of the timed transitions — only on the arcs and guards.  The Figure 7
sweep of the paper evaluates 45 configurations of one and the same net
structure, varying only the migration delays (distance and α) and the
disaster mean time; regenerating the state space 45 times would dominate the
cost.  ``with_transition_delays`` therefore rebuilds the edge rates of an
existing graph from its rate-independent edge coefficients, producing a new
graph that can be solved immediately.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.exceptions import AnalysisError
from repro.spn.reachability import TangibleReachabilityGraph


def with_transition_rates(
    graph: TangibleReachabilityGraph, rates: Mapping[str, float]
) -> TangibleReachabilityGraph:
    """A copy of ``graph`` with some timed transitions firing at new rates.

    Args:
        graph: a graph produced by
            :func:`repro.spn.reachability.generate_tangible_reachability_graph`.
        rates: ``{transition_name: new_rate}``; transitions not mentioned keep
            the rate they were generated with.

    Returns:
        A new :class:`TangibleReachabilityGraph` sharing the markings and
        coefficients of the original but with recomputed edge rates and
        throughput contributions.

    Raises:
        AnalysisError: if the graph was generated without coefficient
            tracking, a named transition does not exist, or a rate is not
            positive.
    """
    if not graph.base_rates:
        raise AnalysisError(
            "the reachability graph does not carry per-transition coefficients; "
            "regenerate it with generate_tangible_reachability_graph()"
        )
    unknown = set(rates) - set(graph.base_rates)
    if unknown:
        raise AnalysisError(
            f"cannot re-rate unknown timed transitions: {sorted(unknown)}"
        )
    for name, value in rates.items():
        if value <= 0.0:
            raise AnalysisError(
                f"transition {name!r}: the new rate must be positive, got {value!r}"
            )

    new_rates = dict(graph.base_rates)
    new_rates.update({name: float(value) for name, value in rates.items()})

    transitions: dict[tuple[int, int], float] = {}
    for name, contributions in graph.edge_contributions.items():
        rate = new_rates[name]
        for edge, coefficient in contributions.items():
            transitions[edge] = transitions.get(edge, 0.0) + rate * coefficient

    throughput: dict[str, dict[int, float]] = {}
    for name, coefficients in graph.throughput_coefficients.items():
        rate = new_rates[name]
        throughput[name] = {
            state_id: rate * degree for state_id, degree in coefficients.items()
        }

    return replace(
        graph,
        transitions=transitions,
        throughput_contributions=throughput,
        base_rates=new_rates,
    )


def with_transition_delays(
    graph: TangibleReachabilityGraph, delays: Mapping[str, float]
) -> TangibleReachabilityGraph:
    """Same as :func:`with_transition_rates` but specified as mean delays.

    This matches how the paper's tables express parameters (MTTF, MTTR, MTT
    — all mean times rather than rates).
    """
    for name, delay in delays.items():
        if delay <= 0.0:
            raise AnalysisError(
                f"transition {name!r}: the new delay must be positive, got {delay!r}"
            )
    return with_transition_rates(
        graph, {name: 1.0 / delay for name, delay in delays.items()}
    )
