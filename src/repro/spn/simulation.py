"""Discrete-event Monte-Carlo simulation of stochastic Petri nets.

The simulator is an independent implementation of the same GSPN semantics
used by the analytic pipeline (priorities and weights for immediate
transitions, single-/infinite-server exponential timed transitions, guards).
It serves two purposes:

* cross-validation of the reachability/CTMC pipeline on small nets, and
* estimation of measures for configurations whose tangible state space is
  too large to solve exactly.

Steady-state measures are estimated by independent replications: each
replication simulates ``horizon`` time units, discards an initial ``warmup``
fraction and accumulates time-weighted averages; the replication means feed a
Student-t confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

import numpy as np
from scipy import stats

from repro.exceptions import ModelError, SimulationError
from repro.spn.enabling import CompiledNet
from repro.spn.model import StochasticPetriNet
from repro.spn.rewards import (
    ExpectedTokensMeasure,
    Measure,
    ProbabilityMeasure,
    ThroughputMeasure,
    validate_measures,
)


@dataclass(frozen=True)
class MeasureEstimate:
    """Point estimate and confidence interval of one simulated measure.

    Attributes:
        name: measure name.
        mean: replication mean.
        half_width: half-width of the confidence interval (0 when only one
            replication is run).
        confidence_level: confidence level of the interval.
        replication_values: the per-replication estimates.
    """

    name: str
    mean: float
    half_width: float
    confidence_level: float
    replication_values: tuple[float, ...]

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} = {self.mean:.6f} ± {self.half_width:.6f}"


@dataclass(frozen=True)
class SimulationResult:
    """Result of a simulation experiment."""

    estimates: dict[str, MeasureEstimate]
    horizon: float
    replications: int
    warmup_fraction: float

    def __getitem__(self, name: str) -> MeasureEstimate:
        return self.estimates[name]

    def value(self, name: str) -> float:
        """Point estimate of one measure."""
        return self.estimates[name].mean


class _CompiledMeasure:
    """A measure bound to a compiled net for fast accumulation."""

    def __init__(self, measure: Measure, net: CompiledNet):
        self.name = measure.name
        self.transition_name: Optional[str] = None
        if isinstance(measure, ProbabilityMeasure):
            compiled = measure.compiled(net.place_index)
            self.state_value = compiled
        elif isinstance(measure, ExpectedTokensMeasure):
            compiled = measure.compiled(net.place_index)
            self.state_value = compiled
        elif isinstance(measure, ThroughputMeasure):
            if measure.transition not in net.transition_index:
                raise SimulationError(
                    f"throughput measure {measure.name!r} references unknown "
                    f"transition {measure.transition!r}"
                )
            self.transition_name = measure.transition
            self.state_value = None
        else:
            raise SimulationError(f"unsupported measure type {type(measure)!r}")


def simulate(
    net: Union[StochasticPetriNet, CompiledNet],
    measures: Sequence[Measure],
    horizon: float,
    replications: int = 10,
    warmup_fraction: float = 0.1,
    confidence_level: float = 0.95,
    seed: Optional[int] = None,
    initial_marking: Optional[Mapping[str, int]] = None,
) -> SimulationResult:
    """Estimate steady-state measures by independent replications.

    Args:
        net: the net to simulate.
        measures: measures to estimate.
        horizon: simulated time per replication (same unit as the delays).
        replications: number of independent replications (>= 1).
        warmup_fraction: fraction of each replication discarded as warm-up.
        confidence_level: level of the Student-t confidence intervals.
        seed: seed of the underlying random generator (replication ``i`` uses
            ``seed + i``), making runs reproducible.
        initial_marking: optional replacement initial marking.

    Raises:
        SimulationError: on invalid arguments or nets that cannot progress.
    """
    compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)
    validate_measures(measures)
    if horizon <= 0.0:
        raise SimulationError(f"simulation horizon must be positive, got {horizon!r}")
    if replications < 1:
        raise SimulationError(f"at least one replication is required, got {replications!r}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise SimulationError(
            f"warmup fraction must be in [0, 1), got {warmup_fraction!r}"
        )
    if not 0.0 < confidence_level < 1.0:
        raise SimulationError(
            f"confidence level must be in (0, 1), got {confidence_level!r}"
        )

    compiled_measures = [_CompiledMeasure(measure, compiled) for measure in measures]
    start_marking = compiled.initial_marking
    if initial_marking is not None:
        from repro.spn.marking import marking_vector

        start_marking = marking_vector(dict(initial_marking), compiled.place_index)

    per_replication: dict[str, list[float]] = {m.name: [] for m in compiled_measures}
    for replication in range(replications):
        rng = np.random.default_rng(None if seed is None else seed + replication)
        values = _run_replication(
            compiled, compiled_measures, start_marking, horizon, warmup_fraction, rng
        )
        for name, value in values.items():
            per_replication[name].append(value)

    estimates = {}
    for name, values in per_replication.items():
        estimates[name] = _summarise(name, values, confidence_level)
    return SimulationResult(
        estimates=estimates,
        horizon=horizon,
        replications=replications,
        warmup_fraction=warmup_fraction,
    )


def _summarise(
    name: str, values: Sequence[float], confidence_level: float
) -> MeasureEstimate:
    array = np.asarray(values, dtype=float)
    mean = float(array.mean())
    if len(array) < 2:
        half_width = 0.0
    else:
        standard_error = float(array.std(ddof=1)) / math.sqrt(len(array))
        quantile = float(stats.t.ppf(0.5 + confidence_level / 2.0, df=len(array) - 1))
        half_width = quantile * standard_error
    return MeasureEstimate(
        name=name,
        mean=mean,
        half_width=half_width,
        confidence_level=confidence_level,
        replication_values=tuple(float(v) for v in array),
    )


def _check_marking(net: CompiledNet, kernel, marking: np.ndarray) -> None:
    """Reject negative markings, which only duplicate input arcs can produce
    (enabled by the max multiplicity, consuming the sum)."""
    if kernel.firing_can_go_negative and (marking < 0).any():
        raise ModelError(
            f"net {net.name!r}: firing a transition with duplicate input arcs "
            "made a place marking negative"
        )


def _run_replication(
    net: CompiledNet,
    measures: Sequence[_CompiledMeasure],
    start_marking: tuple[int, ...],
    horizon: float,
    warmup_fraction: float,
    rng: np.random.Generator,
    max_immediate_chain: int = 100_000,
) -> dict[str, float]:
    kernel = net.kernel()
    timed_names = tuple(t.name for t in net.timed_transitions)
    marking = np.asarray(start_marking, dtype=np.int64)
    clock = 0.0
    warmup_end = horizon * warmup_fraction
    observed_time = 0.0
    accumulators = {m.name: 0.0 for m in measures}
    firing_counts = {m.name: 0 for m in measures if m.transition_name is not None}

    while clock < horizon:
        # Resolve immediate transitions first (zero-time firings).  The
        # enabled set of each step is one vectorized pass over the incidence
        # arrays instead of a Python scan of all immediate transitions.
        chain_length = 0
        while True:
            candidates = kernel.enabled_immediate_indices(marking)
            if candidates.size == 0:
                break
            weights = kernel.immediate_weights[candidates]
            index = int(rng.choice(candidates.size, p=weights / weights.sum()))
            marking = marking + kernel.delta[kernel.immediate_indices[candidates[index]]]
            _check_marking(net, kernel, marking)
            chain_length += 1
            if chain_length > max_immediate_chain:
                raise SimulationError(
                    f"net {net.name!r}: more than {max_immediate_chain} chained "
                    "immediate firings; the net contains an immediate loop"
                )

        enabled, rates = kernel.timed_effective_rates(marking)
        if not enabled.any():
            # Absorbing tangible marking: the state persists until the horizon.
            remaining = horizon - clock
            _accumulate(measures, accumulators, marking, clock, remaining, warmup_end)
            clock = horizon
            break

        total_rate = float(rates.sum())
        if total_rate <= 0.0:
            # Zero-rate transitions take part in no race; with none left the
            # net can never advance, which is a modelling error rather than
            # an absorbing state.
            raise SimulationError(
                f"net {net.name!r}: the enabled timed transitions all have "
                "zero rate; the simulation cannot advance past marking "
                f"{tuple(int(tokens) for tokens in marking)}"
            )
        sojourn = float(rng.exponential(1.0 / total_rate))
        dwell = min(sojourn, horizon - clock)
        _accumulate(measures, accumulators, marking, clock, dwell, warmup_end)
        if clock + sojourn >= horizon:
            clock = horizon
            break
        clock += sojourn
        positive = np.nonzero(rates > 0.0)[0]
        winner = positive[
            int(rng.choice(positive.size, p=rates[positive] / total_rate))
        ]
        if clock > warmup_end:
            chosen_name = timed_names[winner]
            for measure in measures:
                if measure.transition_name == chosen_name:
                    firing_counts[measure.name] += 1
        marking = marking + kernel.delta[kernel.timed_indices[winner]]
        _check_marking(net, kernel, marking)

    observed_time = horizon - warmup_end
    if observed_time <= 0.0:
        raise SimulationError("warm-up consumed the whole simulation horizon")
    results: dict[str, float] = {}
    for measure in measures:
        if measure.transition_name is None:
            results[measure.name] = accumulators[measure.name] / observed_time
        else:
            results[measure.name] = firing_counts[measure.name] / observed_time
    return results


def _accumulate(
    measures: Sequence[_CompiledMeasure],
    accumulators: dict[str, float],
    marking: Sequence[int],
    clock: float,
    dwell: float,
    warmup_end: float,
) -> None:
    if dwell <= 0.0:
        return
    effective_start = max(clock, warmup_end)
    effective_end = clock + dwell
    effective = effective_end - effective_start
    if effective <= 0.0:
        return
    for measure in measures:
        if measure.state_value is not None:
            accumulators[measure.name] += float(measure.state_value(marking)) * effective
