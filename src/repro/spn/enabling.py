"""Compiled net representation: fast enabling checks and firing.

Reachability generation and simulation both evaluate "which transitions are
enabled in this marking, and what happens when one fires" millions of times.
:class:`CompiledNet` flattens the declarative :class:`~repro.spn.model.StochasticPetriNet`
into index-based arc lists and pre-compiled guard closures so those inner
loops stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.exceptions import ModelError
from repro.expressions import CompiledExpression, compile_expression
from repro.expressions.compiler import VectorizedExpression, compile_expression_vector
from repro.spn.model import ArcKind, ServerSemantics, StochasticPetriNet, Transition


@dataclass(frozen=True)
class CompiledTransition:
    """Flattened, index-based view of one transition.

    Attributes:
        name: transition name.
        immediate: whether the transition is immediate.
        rate: nominal firing rate (``1 / delay``) for timed transitions.
        infinite_server: whether the effective rate scales with the enabling
            degree.
        weight / priority: race resolution for immediate transitions.
        inputs / outputs / inhibitors: ``(place_index, multiplicity)`` pairs.
        guard: compiled guard closure or ``None``.
        guard_vector: batch-compiled guard evaluating a whole ``(F, P)``
            marking block at once (used by the incidence kernel).
        guard_source: canonical text of the guard AST (``None`` without a
            guard) — kept so net structures can be fingerprinted for the
            persistent reachability cache.
    """

    name: str
    immediate: bool
    rate: float
    infinite_server: bool
    weight: float
    priority: int
    inputs: tuple[tuple[int, int], ...]
    outputs: tuple[tuple[int, int], ...]
    inhibitors: tuple[tuple[int, int], ...]
    guard: Optional[CompiledExpression]
    guard_vector: Optional[VectorizedExpression] = None
    guard_source: Optional[str] = None

    def is_enabled(self, marking: Sequence[int]) -> bool:
        """Whether the transition may fire in ``marking``."""
        for place, multiplicity in self.inputs:
            if marking[place] < multiplicity:
                return False
        for place, multiplicity in self.inhibitors:
            if marking[place] >= multiplicity:
                return False
        if self.guard is not None and not self.guard(marking):
            return False
        return True

    def enabling_degree(self, marking: Sequence[int]) -> int:
        """How many concurrent firings the marking supports.

        The degree is limited by the input arcs only (the standard GSPN
        definition); a transition without input arcs has degree 1.
        """
        if not self.inputs:
            return 1
        return min(marking[place] // multiplicity for place, multiplicity in self.inputs)

    def effective_rate(self, marking: Sequence[int]) -> float:
        """Firing rate in ``marking`` accounting for server semantics."""
        if self.immediate:
            raise ModelError(f"immediate transition {self.name!r} has no rate")
        if self.infinite_server:
            return self.rate * self.enabling_degree(marking)
        return self.rate

    def fire(self, marking: Sequence[int]) -> tuple[int, ...]:
        """Marking reached by firing the transition once."""
        updated = list(marking)
        for place, multiplicity in self.inputs:
            updated[place] -= multiplicity
            if updated[place] < 0:
                raise ModelError(
                    f"firing {self.name!r} would make place index {place} negative"
                )
        for place, multiplicity in self.outputs:
            updated[place] += multiplicity
        return tuple(updated)


class CompiledNet:
    """Index-based snapshot of a net, ready for analysis or simulation."""

    def __init__(self, net: StochasticPetriNet):
        self.name = net.name
        self.place_names: tuple[str, ...] = tuple(net.place_names)
        self.place_index: dict[str, int] = {
            name: index for index, name in enumerate(self.place_names)
        }
        self.initial_marking: tuple[int, ...] = tuple(
            place.initial_tokens for place in net.places
        )
        self.transitions: tuple[CompiledTransition, ...] = tuple(
            self._compile_transition(net, transition) for transition in net.transitions
        )
        self.timed_transitions: tuple[CompiledTransition, ...] = tuple(
            t for t in self.transitions if not t.immediate
        )
        self.immediate_transitions: tuple[CompiledTransition, ...] = tuple(
            t for t in self.transitions if t.immediate
        )
        self.transition_index: dict[str, int] = {
            t.name: i for i, t in enumerate(self.transitions)
        }
        # Immediate transitions grouped by priority, highest class first:
        # the enabled-immediate query walks the classes top-down instead of
        # recomputing max(priority) over the enabled set on every marking.
        by_priority: dict[int, list[CompiledTransition]] = {}
        for t in self.immediate_transitions:
            by_priority.setdefault(t.priority, []).append(t)
        self.immediate_priority_classes: tuple[tuple[CompiledTransition, ...], ...] = tuple(
            tuple(by_priority[priority]) for priority in sorted(by_priority, reverse=True)
        )
        self._kernel = None

    def _compile_transition(
        self, net: StochasticPetriNet, transition: Transition
    ) -> CompiledTransition:
        inputs: list[tuple[int, int]] = []
        outputs: list[tuple[int, int]] = []
        inhibitors: list[tuple[int, int]] = []
        for arc in net.arcs_of(transition.name):
            entry = (self.place_index[arc.place], arc.multiplicity)
            if arc.kind is ArcKind.INPUT:
                inputs.append(entry)
            elif arc.kind is ArcKind.OUTPUT:
                outputs.append(entry)
            else:
                inhibitors.append(entry)
        guard = None
        guard_vector = None
        guard_source = None
        if transition.guard is not None:
            guard = compile_expression(transition.guard, self.place_index)
            guard_vector = compile_expression_vector(transition.guard, self.place_index)
            guard_source = repr(transition.guard)
        return CompiledTransition(
            name=transition.name,
            immediate=transition.immediate,
            rate=0.0 if transition.immediate else transition.rate,
            infinite_server=(
                not transition.immediate
                and transition.semantics is ServerSemantics.INFINITE_SERVER
            ),
            weight=transition.weight,
            priority=transition.priority,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            inhibitors=tuple(inhibitors),
            guard=guard,
            guard_vector=guard_vector,
            guard_source=guard_source,
        )

    def kernel(self):
        """The (lazily built, cached) incidence-matrix kernel of this net."""
        if self._kernel is None:
            from repro.spn.kernel import IncidenceKernel

            self._kernel = IncidenceKernel(self)
        return self._kernel

    # --- marking-level queries ----------------------------------------------

    def enabled_immediate(self, marking: Sequence[int]) -> list[CompiledTransition]:
        """Enabled immediate transitions of the highest enabled priority."""
        for transitions in self.immediate_priority_classes:
            enabled = [t for t in transitions if t.is_enabled(marking)]
            if enabled:
                return enabled
        return []

    def enabled_timed(self, marking: Sequence[int]) -> list[CompiledTransition]:
        """Enabled timed transitions (regardless of immediate enabling)."""
        return [t for t in self.timed_transitions if t.is_enabled(marking)]

    def is_vanishing(self, marking: Sequence[int]) -> bool:
        """A marking is vanishing when at least one immediate transition is enabled."""
        return any(t.is_enabled(marking) for t in self.immediate_transitions)

    def transition_named(self, name: str) -> CompiledTransition:
        try:
            return self.transitions[self.transition_index[name]]
        except KeyError:
            raise ModelError(f"unknown transition {name!r} in net {self.name!r}") from None
