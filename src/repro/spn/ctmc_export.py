"""Conversion of a tangible reachability graph into a CTMC."""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import StateSpaceError
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.spn.reachability import TangibleReachabilityGraph


def generator_matrix(graph: TangibleReachabilityGraph) -> sparse.csr_matrix:
    """Sparse CTMC generator matrix over the tangible markings of ``graph``.

    Assembled directly from the graph's edge arrays: the off-diagonal entries
    are the edge rates and the diagonal holds the negated per-state exit
    rates, concatenated into one COO triple and converted to CSR in a single
    pass (the edge list excludes self-loops, so the triples never collide).
    """
    n = graph.number_of_states
    if n == 0:
        raise StateSpaceError("reachability graph has no tangible markings")
    diagonal = np.arange(n, dtype=np.int64)
    rows = np.concatenate([graph.edge_sources, diagonal])
    cols = np.concatenate([graph.edge_targets, diagonal])
    data = np.concatenate([graph.edge_rates, -graph.exit_rates()])
    return sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()


def initial_distribution_vector(graph: TangibleReachabilityGraph) -> np.ndarray:
    """Initial probability vector aligned with the tangible state ids."""
    vector = np.zeros(graph.number_of_states)
    for state_id, probability in graph.initial_distribution.items():
        vector[state_id] = probability
    total = vector.sum()
    if abs(total - 1.0) > 1e-9:
        raise StateSpaceError(
            f"initial distribution of the reachability graph sums to {total!r}"
        )
    return vector


def to_markov_chain(graph: TangibleReachabilityGraph) -> ContinuousTimeMarkovChain:
    """Labelled :class:`ContinuousTimeMarkovChain` whose states are marking ids.

    The state labels are the integer tangible-marking ids; use
    :meth:`TangibleReachabilityGraph.marking_view` to map them back to
    ``{place: tokens}`` views.
    """
    chain = ContinuousTimeMarkovChain(list(range(graph.number_of_states)))
    for source, target, rate in zip(
        graph.edge_sources, graph.edge_targets, graph.edge_rates
    ):
        chain.add_transition(int(source), int(target), float(rate))
    return chain
