"""Conversion of a tangible reachability graph into a CTMC."""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import StateSpaceError
from repro.markov.ctmc import ContinuousTimeMarkovChain
from repro.spn.reachability import TangibleReachabilityGraph


def generator_matrix(graph: TangibleReachabilityGraph) -> sparse.csr_matrix:
    """Sparse CTMC generator matrix over the tangible markings of ``graph``."""
    n = graph.number_of_states
    if n == 0:
        raise StateSpaceError("reachability graph has no tangible markings")
    if graph.transitions:
        rows, cols, data = zip(
            *((source, target, rate) for (source, target), rate in graph.transitions.items())
        )
    else:
        rows, cols, data = (), (), ()
    matrix = sparse.coo_matrix((data, (rows, cols)), shape=(n, n)).tolil()
    exit_rates = np.asarray(matrix.sum(axis=1)).ravel()
    matrix.setdiag(-exit_rates)
    return matrix.tocsr()


def initial_distribution_vector(graph: TangibleReachabilityGraph) -> np.ndarray:
    """Initial probability vector aligned with the tangible state ids."""
    vector = np.zeros(graph.number_of_states)
    for state_id, probability in graph.initial_distribution.items():
        vector[state_id] = probability
    total = vector.sum()
    if abs(total - 1.0) > 1e-9:
        raise StateSpaceError(
            f"initial distribution of the reachability graph sums to {total!r}"
        )
    return vector


def to_markov_chain(graph: TangibleReachabilityGraph) -> ContinuousTimeMarkovChain:
    """Labelled :class:`ContinuousTimeMarkovChain` whose states are marking ids.

    The state labels are the integer tangible-marking ids; use
    :meth:`TangibleReachabilityGraph.marking_view` to map them back to
    ``{place: tokens}`` views.
    """
    chain = ContinuousTimeMarkovChain(list(range(graph.number_of_states)))
    for (source, target), rate in graph.transitions.items():
        chain.add_transition(source, target, rate)
    return chain
