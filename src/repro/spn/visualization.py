"""Graphviz (dot) export of stochastic Petri nets.

``to_dot`` renders places as circles (with their initial tokens), timed
transitions as hollow rectangles, immediate transitions as filled bars, and
annotates guards and delays — handy for checking that a programmatically
assembled cloud model matches the figures in the paper.
"""

from __future__ import annotations

from repro.spn.model import ArcKind, StochasticPetriNet


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(net: StochasticPetriNet, include_guards: bool = True) -> str:
    """Render ``net`` as a Graphviz dot digraph string."""
    lines = [
        f'digraph "{_escape(net.name)}" {{',
        "  rankdir=LR;",
        '  node [fontsize=10, fontname="Helvetica"];',
        '  edge [fontsize=9, fontname="Helvetica"];',
    ]
    for place in net.places:
        tokens = f"\\n{place.initial_tokens}" if place.initial_tokens else ""
        lines.append(
            f'  "{_escape(place.name)}" [shape=circle, label="{_escape(place.name)}{tokens}"];'
        )
    for transition in net.transitions:
        if transition.immediate:
            shape = "box"
            style = "filled"
            fill = "black"
            font = "white"
            extra = f"w={transition.weight:g}, pri={transition.priority}"
        else:
            shape = "box"
            style = "solid"
            fill = "white"
            font = "black"
            extra = f"delay={transition.delay:g} ({transition.semantics.value})"
        label = f"{transition.name}\\n{extra}"
        if include_guards and transition.guard is not None:
            label += f"\\n[{_escape(transition.guard.to_source())}]"
        lines.append(
            f'  "{_escape(transition.name)}" [shape={shape}, style={style}, '
            f'fillcolor={fill}, fontcolor={font}, label="{label}"];'
        )
    for arc in net.arcs:
        label = f' [label="{arc.multiplicity}"]' if arc.multiplicity != 1 else ""
        if arc.kind is ArcKind.INPUT:
            lines.append(f'  "{_escape(arc.place)}" -> "{_escape(arc.transition)}"{label};')
        elif arc.kind is ArcKind.OUTPUT:
            lines.append(f'  "{_escape(arc.transition)}" -> "{_escape(arc.place)}"{label};')
        else:
            style = ' [arrowhead=odot%s]' % (f', label="{arc.multiplicity}"' if arc.multiplicity != 1 else "")
            lines.append(f'  "{_escape(arc.place)}" -> "{_escape(arc.transition)}"{style};')
    lines.append("}")
    return "\n".join(lines)


def write_dot(net: StochasticPetriNet, path: str, include_guards: bool = True) -> None:
    """Write the dot rendering of ``net`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(net, include_guards=include_guards))
        handle.write("\n")
