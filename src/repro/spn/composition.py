"""Composition of stochastic Petri nets.

Section IV of the paper assembles the full cloud model from reusable blocks
(SIMPLE_COMPONENT, VM_BEHAVIOR, TRANSMISSION_COMPONENT) using "composition
rules (e.g. net union)".  ``merge`` implements that net union: places with
the same name are fused into a single place (their initial markings must
agree), transition names must stay unique, and guards keep referring to the
fused places.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import ModelError
from repro.spn.model import ArcKind, StochasticPetriNet


def merge(name: str, nets: Sequence[StochasticPetriNet]) -> StochasticPetriNet:
    """Union of several nets, fusing places that share a name.

    Args:
        name: name of the composed net.
        nets: nets to merge, in order.

    Returns:
        A new net containing every place, transition and arc of the inputs.

    Raises:
        ModelError: if two nets define the same place with different initial
            markings, or the same transition name twice.
    """
    if not nets:
        raise ModelError("at least one net is required for composition")
    merged = StochasticPetriNet(name)
    for net in nets:
        _merge_into(merged, net)
    return merged


def _merge_into(target: StochasticPetriNet, source: StochasticPetriNet) -> None:
    for place in source.places:
        if target.has_place(place.name):
            existing = target.place(place.name)
            if existing.initial_tokens != place.initial_tokens:
                raise ModelError(
                    f"cannot fuse place {place.name!r}: initial markings differ "
                    f"({existing.initial_tokens} vs {place.initial_tokens})"
                )
        else:
            target.add_place(place.name, place.initial_tokens)
    for transition in source.transitions:
        if target.has_transition(transition.name):
            raise ModelError(
                f"cannot merge nets: transition {transition.name!r} is defined in "
                f"both {target.name!r} and {source.name!r}"
            )
        if transition.immediate:
            target.add_immediate_transition(
                transition.name,
                weight=transition.weight,
                priority=transition.priority,
                guard=transition.guard,
            )
        else:
            target.add_timed_transition(
                transition.name,
                delay=transition.delay,
                semantics=transition.semantics,
                guard=transition.guard,
            )
    for arc in source.arcs:
        if arc.kind is ArcKind.INPUT:
            target.add_input_arc(arc.place, arc.transition, arc.multiplicity)
        elif arc.kind is ArcKind.OUTPUT:
            target.add_output_arc(arc.transition, arc.place, arc.multiplicity)
        else:
            target.add_inhibitor_arc(arc.place, arc.transition, arc.multiplicity)


def relabel(
    net: StochasticPetriNet, prefix: str, shared_places: Iterable[str] = ()
) -> StochasticPetriNet:
    """Copy a net adding ``prefix`` to every non-shared place / transition name.

    This is how a generic block is instantiated several times before merging
    (e.g. one VM_BEHAVIOR block per physical machine).  Guards are rewritten
    textually place-by-place so they keep referencing the renamed places.

    Args:
        net: the block to instantiate.
        prefix: prefix prepended as ``f"{prefix}{name}"``.
        shared_places: place names left untouched (fusion points such as the
            per-data-center ``FailedVMS`` pool).
    """
    shared = set(shared_places)
    renamed = StochasticPetriNet(f"{prefix}{net.name}")

    def rename_place(place_name: str) -> str:
        return place_name if place_name in shared else f"{prefix}{place_name}"

    for place in net.places:
        renamed.add_place(rename_place(place.name), place.initial_tokens)
    for transition in net.transitions:
        guard = transition.guard
        if guard is not None:
            from repro.expressions import parse

            source = guard.to_source()
            # Replace longest names first so '#VM_UP' never clobbers '#VM_UP1'.
            for place in sorted(net.places, key=lambda p: len(p.name), reverse=True):
                source = source.replace(f"#{place.name}", f"#{rename_place(place.name)}")
            guard = parse(source)
        if transition.immediate:
            renamed.add_immediate_transition(
                f"{prefix}{transition.name}",
                weight=transition.weight,
                priority=transition.priority,
                guard=guard,
            )
        else:
            renamed.add_timed_transition(
                f"{prefix}{transition.name}",
                delay=transition.delay,
                semantics=transition.semantics,
                guard=guard,
            )
    for arc in net.arcs:
        place = rename_place(arc.place)
        transition = f"{prefix}{arc.transition}"
        if arc.kind is ArcKind.INPUT:
            renamed.add_input_arc(place, transition, arc.multiplicity)
        elif arc.kind is ArcKind.OUTPUT:
            renamed.add_output_arc(transition, place, arc.multiplicity)
        else:
            renamed.add_inhibitor_arc(place, transition, arc.multiplicity)
    return renamed
