"""Marking representation helpers.

Markings are stored internally as plain tuples of token counts aligned with a
place-index mapping (fast hashing, low memory).  :class:`MarkingView` wraps a
tuple with its index to provide a friendly dict-like read API for users who
inspect reachability results.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.exceptions import ModelError


class MarkingView(Mapping[str, int]):
    """Read-only, dict-like view of a marking vector."""

    __slots__ = ("_tokens", "_index")

    def __init__(self, tokens: Sequence[int], place_index: Mapping[str, int]):
        self._tokens = tuple(int(count) for count in tokens)
        self._index = place_index
        if len(self._tokens) != len(place_index):
            raise ModelError(
                f"marking has {len(self._tokens)} entries but the net has "
                f"{len(place_index)} places"
            )

    def __getitem__(self, place: str) -> int:
        try:
            return self._tokens[self._index[place]]
        except KeyError:
            raise ModelError(f"unknown place {place!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    @property
    def tokens(self) -> tuple[int, ...]:
        """The underlying marking vector."""
        return self._tokens

    def non_empty_places(self) -> dict[str, int]:
        """Only the places holding at least one token (compact display)."""
        return {place: self[place] for place in self._index if self[place] > 0}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inside = ", ".join(f"{place}:{count}" for place, count in self.non_empty_places().items())
        return f"MarkingView({inside})"


def marking_vector(
    marking: Mapping[str, int], place_index: Mapping[str, int]
) -> tuple[int, ...]:
    """Convert a ``{place: tokens}`` mapping into an index-aligned tuple.

    Places missing from ``marking`` default to zero tokens; unknown places
    raise :class:`~repro.exceptions.ModelError`.
    """
    unknown = set(marking) - set(place_index)
    if unknown:
        raise ModelError(f"marking references unknown places: {sorted(unknown)}")
    vector = [0] * len(place_index)
    for place, count in marking.items():
        count = int(count)
        if count < 0:
            raise ModelError(f"place {place!r}: token count must be non-negative")
        vector[place_index[place]] = count
    return tuple(vector)
