"""Equivalence checking between tangible reachability graphs.

Used by the property tests, the state-space benchmark and the cache
round-trip check to verify that two independently produced graphs describe
the same CTMC: same tangible markings, same edges and the same
rate-independent coefficient data, up to a permutation of the state ids.
"""

from __future__ import annotations

from repro.exceptions import StateSpaceError
from repro.spn.reachability import TangibleReachabilityGraph


def graph_deviation(
    first: TangibleReachabilityGraph, second: TangibleReachabilityGraph
) -> float:
    """Largest absolute numeric deviation between two equivalent graphs.

    States are aligned by marking (the graphs may number them differently),
    and the initial distributions, edge rates, base rates, per-state
    enabling-degree coefficients and per-edge coefficients are compared
    entry by entry.

    Returns:
        The maximum absolute difference over all compared quantities.

    Raises:
        StateSpaceError: if the graphs are structurally different (marking
            sets, edge sets, transition names or sparsity patterns differ).
    """
    if first.number_of_states != second.number_of_states:
        raise StateSpaceError(
            f"state counts differ: {first.number_of_states} vs {second.number_of_states}"
        )
    second_ids = {marking: i for i, marking in enumerate(second.markings)}
    if len(second_ids) != second.number_of_states:
        raise StateSpaceError("second graph contains duplicate markings")
    try:
        to_second = [second_ids[marking] for marking in first.markings]
    except KeyError as missing:
        raise StateSpaceError(f"marking {missing} missing from second graph") from None

    deviation = 0.0

    def compare_dicts(a: dict, b: dict, label: str) -> None:
        nonlocal deviation
        if set(a) != set(b):
            raise StateSpaceError(f"{label}: key sets differ")
        for key, value in a.items():
            deviation = max(deviation, abs(value - b[key]))

    compare_dicts(
        {to_second[state]: p for state, p in first.initial_distribution.items()},
        dict(second.initial_distribution),
        "initial distribution",
    )
    compare_dicts(
        {
            (to_second[source], to_second[target]): rate
            for (source, target), rate in first.transitions.items()
        },
        second.transitions,
        "edges",
    )
    if set(first.transition_names) != set(second.transition_names):
        raise StateSpaceError("transition name sets differ")
    compare_dicts(first.base_rates, second.base_rates, "base rates")

    first_state_coefficients = first.throughput_coefficients
    second_state_coefficients = second.throughput_coefficients
    first_edge_coefficients = first.edge_contributions
    second_edge_coefficients = second.edge_contributions
    for name in first.transition_names:
        compare_dicts(
            {
                to_second[state]: degree
                for state, degree in first_state_coefficients.get(name, {}).items()
            },
            second_state_coefficients.get(name, {}),
            f"state coefficients of {name!r}",
        )
        compare_dicts(
            {
                (to_second[source], to_second[target]): coefficient
                for (source, target), coefficient in first_edge_coefficients.get(
                    name, {}
                ).items()
            },
            second_edge_coefficients.get(name, {}),
            f"edge coefficients of {name!r}",
        )
    return deviation
