"""Tangible reachability graph generation with vanishing-marking elimination.

The analysis pipeline of the paper's tools (Mercury, TimeNET) reduces a GSPN
to a continuous-time Markov chain over its *tangible* markings: markings in
which no immediate transition is enabled.  Markings that enable immediate
transitions (*vanishing* markings) are passed through in zero time and are
eliminated on the fly here — every timed firing that lands on a vanishing
marking is redistributed over the tangible markings reachable through
immediate firings, weighted by the branching probabilities of the immediate
race (priority first, then relative weights).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import StateSpaceError
from repro.spn.enabling import CompiledNet
from repro.spn.marking import MarkingView
from repro.spn.model import StochasticPetriNet

#: Safety limit: exploring more tangible markings than this aborts generation.
DEFAULT_MAX_TANGIBLE_MARKINGS = 500_000

#: Safety limit on the depth of chained immediate firings from a single marking.
DEFAULT_MAX_VANISHING_DEPTH = 10_000


@dataclass
class TangibleReachabilityGraph:
    """The tangible state space of a net.

    Attributes:
        net: the compiled net the graph was generated from.
        markings: tangible markings in discovery order (index = state id).
        initial_distribution: probability of starting in each tangible
            marking (the initial marking itself may be vanishing).
        transitions: ``{(source_id, target_id): rate}`` aggregated rates.
        throughput_contributions: ``{transition_name: {state_id: rate}}`` —
            the effective firing rate of each *timed* transition in each
            tangible state, used for throughput measures.
        edge_contributions: ``{transition_name: {(source_id, target_id): c}}``
            where ``c`` is the *rate-independent* coefficient (enabling degree
            × switching probability through vanishing markings) such that the
            edge rate equals ``Σ_t base_rate(t) · c``.  Because the graph
            structure itself never depends on the delays, these coefficients
            let :mod:`repro.spn.parametric` re-rate the same graph for a whole
            family of parameter values (the Figure 7 sweep) without
            regenerating the state space.
        throughput_coefficients: ``{transition_name: {state_id: degree}}`` —
            the rate-independent part of ``throughput_contributions``.
    """

    net: CompiledNet
    markings: list[tuple[int, ...]]
    initial_distribution: dict[int, float]
    transitions: dict[tuple[int, int], float]
    throughput_contributions: dict[str, dict[int, float]] = field(default_factory=dict)
    edge_contributions: dict[str, dict[tuple[int, int], float]] = field(default_factory=dict)
    throughput_coefficients: dict[str, dict[int, float]] = field(default_factory=dict)
    base_rates: dict[str, float] = field(default_factory=dict)

    @property
    def number_of_states(self) -> int:
        return len(self.markings)

    @property
    def number_of_transitions(self) -> int:
        return len(self.transitions)

    def marking_view(self, state_id: int) -> MarkingView:
        """Dict-like view of one tangible marking."""
        return MarkingView(self.markings[state_id], self.net.place_index)


def _immediate_branching(
    net: CompiledNet, marking: tuple[int, ...]
) -> list[tuple[float, tuple[int, ...]]]:
    """One step of the immediate race: ``[(probability, next_marking), ...]``."""
    enabled = net.enabled_immediate(marking)
    total_weight = sum(t.weight for t in enabled)
    return [(t.weight / total_weight, t.fire(marking)) for t in enabled]


def resolve_vanishing(
    net: CompiledNet,
    marking: tuple[int, ...],
    max_depth: int = DEFAULT_MAX_VANISHING_DEPTH,
    memo: dict[tuple[int, ...], dict[tuple[int, ...], float]] | None = None,
) -> dict[tuple[int, ...], float]:
    """Distribute a (possibly vanishing) marking over tangible markings.

    Performs a memoized depth-first traversal of the vanishing sub-graph
    rooted at ``marking``, accumulating branching probabilities.  Memoization
    matters: when an infrastructure component fails, the flush-style immediate
    transitions of the cloud models can fire in factorially many orders, all
    converging on the same tangible markings — each intermediate vanishing
    marking is resolved once.  Cycles among vanishing markings (immediate
    loops / "time traps") are detected and reported.

    Args:
        net: compiled net.
        marking: the marking to resolve.
        max_depth: maximum length of a chain of immediate firings.
        memo: optional cache shared across calls (the reachability generator
            passes one cache for the whole exploration).

    Returns:
        ``{tangible_marking: probability}`` summing to one.

    Raises:
        StateSpaceError: on immediate-transition cycles or excessive depth.
    """
    if not net.is_vanishing(marking):
        return {marking: 1.0}
    if memo is None:
        memo = {}
    on_path: set[tuple[int, ...]] = set()

    def resolve(current: tuple[int, ...], depth: int) -> dict[tuple[int, ...], float]:
        cached = memo.get(current)
        if cached is not None:
            return cached
        if depth > max_depth:
            raise StateSpaceError(
                f"net {net.name!r}: vanishing-marking resolution exceeded "
                f"{max_depth} chained immediate firings"
            )
        if current in on_path:
            raise StateSpaceError(
                f"net {net.name!r}: cycle of immediate transitions detected "
                f"(time trap) around marking {current}"
            )
        on_path.add(current)
        distribution: dict[tuple[int, ...], float] = {}
        for branch_probability, successor in _immediate_branching(net, current):
            if branch_probability <= 0.0:
                continue
            if net.is_vanishing(successor):
                for tangible, probability in resolve(successor, depth + 1).items():
                    mass = branch_probability * probability
                    distribution[tangible] = distribution.get(tangible, 0.0) + mass
            else:
                distribution[successor] = (
                    distribution.get(successor, 0.0) + branch_probability
                )
        on_path.discard(current)
        memo[current] = distribution
        return distribution

    result = resolve(marking, 0)
    total = sum(result.values())
    if abs(total - 1.0) > 1e-9:
        raise StateSpaceError(
            f"net {net.name!r}: vanishing resolution lost probability mass "
            f"(total={total!r})"
        )
    return result


def generate_tangible_reachability_graph(
    net: StochasticPetriNet | CompiledNet,
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
    canonicalize=None,
) -> TangibleReachabilityGraph:
    """Explore the tangible state space of ``net``.

    Args:
        net: the net to explore (a declarative net is compiled first).
        max_states: abort if more tangible markings than this are discovered
            (protects against unbounded nets).
        canonicalize: optional ``f(marking_tuple) -> marking_tuple`` mapping
            every marking to the canonical representative of its symmetry
            orbit.  When the net is invariant under a group of place
            permutations (e.g. identical physical machines within a data
            center), exploring only canonical representatives produces the
            exactly lumped CTMC, often several times smaller.  Measures
            evaluated on the lumped graph must themselves be symmetric under
            the same permutations.

    Raises:
        StateSpaceError: if the exploration exceeds ``max_states`` or the net
            contains immediate-transition cycles.
    """
    compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)

    marking_ids: dict[tuple[int, ...], int] = {}
    markings: list[tuple[int, ...]] = []
    transitions: dict[tuple[int, int], float] = {}
    throughput: dict[str, dict[int, float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    throughput_coefficients: dict[str, dict[int, float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    edge_contributions: dict[str, dict[tuple[int, int], float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    base_rates = {t.name: t.rate for t in compiled.timed_transitions}

    def intern(marking: tuple[int, ...]) -> tuple[int, bool]:
        if canonicalize is not None:
            marking = canonicalize(marking)
        state_id = marking_ids.get(marking)
        if state_id is not None:
            return state_id, False
        state_id = len(markings)
        if state_id >= max_states:
            raise StateSpaceError(
                f"net {compiled.name!r}: tangible state space exceeds the limit of "
                f"{max_states} markings"
            )
        marking_ids[marking] = state_id
        markings.append(marking)
        return state_id, True

    vanishing_memo: dict[tuple[int, ...], dict[tuple[int, ...], float]] = {}
    initial_distribution: dict[int, float] = {}
    frontier: deque[int] = deque()
    for tangible_marking, probability in resolve_vanishing(
        compiled, compiled.initial_marking, memo=vanishing_memo
    ).items():
        state_id, is_new = intern(tangible_marking)
        initial_distribution[state_id] = (
            initial_distribution.get(state_id, 0.0) + probability
        )
        if is_new:
            frontier.append(state_id)

    while frontier:
        state_id = frontier.popleft()
        marking = markings[state_id]
        for transition in compiled.timed_transitions:
            if not transition.is_enabled(marking):
                continue
            degree = float(transition.enabling_degree(marking)) if transition.infinite_server else 1.0
            rate = transition.rate * degree
            if rate <= 0.0:
                continue
            throughput[transition.name][state_id] = (
                throughput[transition.name].get(state_id, 0.0) + rate
            )
            throughput_coefficients[transition.name][state_id] = (
                throughput_coefficients[transition.name].get(state_id, 0.0) + degree
            )
            fired = transition.fire(marking)
            contributions = edge_contributions[transition.name]
            for tangible_marking, probability in resolve_vanishing(
                compiled, fired, memo=vanishing_memo
            ).items():
                target_id, is_new = intern(tangible_marking)
                if is_new:
                    frontier.append(target_id)
                if target_id == state_id:
                    # A self-loop contributes nothing to the CTMC dynamics.
                    continue
                key = (state_id, target_id)
                transitions[key] = transitions.get(key, 0.0) + rate * probability
                contributions[key] = contributions.get(key, 0.0) + degree * probability

    return TangibleReachabilityGraph(
        net=compiled,
        markings=markings,
        initial_distribution=initial_distribution,
        transitions=transitions,
        throughput_contributions=throughput,
        edge_contributions=edge_contributions,
        throughput_coefficients=throughput_coefficients,
        base_rates=base_rates,
    )
