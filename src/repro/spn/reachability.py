"""Tangible reachability graph generation with vanishing-marking elimination.

The analysis pipeline of the paper's tools (Mercury, TimeNET) reduces a GSPN
to a continuous-time Markov chain over its *tangible* markings: markings in
which no immediate transition is enabled.  Markings that enable immediate
transitions (*vanishing* markings) are passed through in zero time and are
eliminated on the fly here — every timed firing that lands on a vanishing
marking is redistributed over the tangible markings reachable through
immediate firings, weighted by the branching probabilities of the immediate
race (priority first, then relative weights).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Mapping, NamedTuple, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError, StateSpaceError, StateSpaceLimitError
from repro.spn.enabling import CompiledNet
from repro.spn.marking import MarkingView
from repro.spn.model import StochasticPetriNet
from repro.symmetry.validate import validate_canonicalizer

#: Safety limit: exploring more tangible markings than this aborts generation.
DEFAULT_MAX_TANGIBLE_MARKINGS = 500_000

#: Safety limit on the depth of chained immediate firings from a single marking.
DEFAULT_MAX_VANISHING_DEPTH = 10_000

#: Number of frontier markings expanded per vectorized BFS wave.
DEFAULT_EXPLORATION_CHUNK = 4096


class TangibleReachabilityGraph:
    """The tangible state space of a net, stored sparse-natively.

    The edge list and the per-transition coefficient matrices are held as
    flat numpy / scipy.sparse arrays so that re-rating the graph for a new
    parameter point (:mod:`repro.spn.parametric`) and assembling the CTMC
    generator (:mod:`repro.spn.ctmc_export`) are a handful of vectorized
    array operations instead of Python dict walks.

    Sparse-native attributes:
        edge_sources / edge_targets: ``int64`` arrays of length ``E`` — the
            unique (source_id, target_id) pairs of the aggregated tangible
            edges, self-loops excluded.
        edge_rates: ``float64`` array of length ``E`` — current edge rates,
            aligned with ``edge_sources`` / ``edge_targets``.
        transition_names: names of the timed transitions carrying coefficient
            data (all timed transitions of the net for generated graphs).
        rate_vector: ``float64`` array of length ``T`` — current base rate of
            each timed transition, aligned with ``transition_names``.
        edge_coefficient_matrix: CSR matrix of shape ``(T, E)``; entry
            ``(t, e)`` is the rate-independent coefficient (enabling degree ×
            switching probability through vanishing markings) of transition
            ``t`` on edge ``e``, so that
            ``edge_rates = edge_coefficient_matrix.T @ rate_vector``.
        state_coefficient_matrix: CSR matrix of shape ``(T, N)``; entry
            ``(t, s)`` is the enabling degree of transition ``t`` in state
            ``s`` (the rate-independent part of the throughput).

    The historical dict-shaped views (``transitions``,
    ``edge_contributions``, ``throughput_contributions``,
    ``throughput_coefficients``, ``base_rates``) remain available as
    read-only properties that materialise fresh dicts on access; hot paths
    should use the array attributes directly.
    """

    def __init__(
        self,
        net: CompiledNet,
        markings: list[tuple[int, ...]],
        initial_distribution: dict[int, float],
        transitions: Optional[Mapping[tuple[int, int], float]] = None,
        throughput_contributions: Optional[Mapping[str, Mapping[int, float]]] = None,
        edge_contributions: Optional[Mapping[str, Mapping[tuple[int, int], float]]] = None,
        throughput_coefficients: Optional[Mapping[str, Mapping[int, float]]] = None,
        base_rates: Optional[Mapping[str, float]] = None,
        *,
        edge_sources: Optional[np.ndarray] = None,
        edge_targets: Optional[np.ndarray] = None,
        edge_rates: Optional[np.ndarray] = None,
        transition_names: Optional[tuple[str, ...]] = None,
        rate_vector: Optional[np.ndarray] = None,
        edge_coefficient_matrix: Optional[sparse.csr_matrix] = None,
        state_coefficient_matrix: Optional[sparse.csr_matrix] = None,
    ) -> None:
        self.net = net
        self.markings = markings
        self.initial_distribution = initial_distribution
        if edge_sources is not None:
            self.edge_sources = np.asarray(edge_sources, dtype=np.int64)
            self.edge_targets = np.asarray(edge_targets, dtype=np.int64)
            self.edge_rates = np.asarray(edge_rates, dtype=np.float64)
            self.transition_names = tuple(transition_names or ())
            self.rate_vector = (
                np.asarray(rate_vector, dtype=np.float64)
                if rate_vector is not None
                else np.zeros(len(self.transition_names))
            )
            self.edge_coefficient_matrix = edge_coefficient_matrix
            self.state_coefficient_matrix = state_coefficient_matrix
            self._explicit_throughput = None
        else:
            self._init_from_dicts(
                dict(transitions or {}),
                throughput_contributions,
                edge_contributions,
                throughput_coefficients,
                base_rates,
            )
        self.transition_index = {
            name: i for i, name in enumerate(self.transition_names)
        }

    def _init_from_dicts(
        self,
        transitions: dict[tuple[int, int], float],
        throughput_contributions,
        edge_contributions,
        throughput_coefficients,
        base_rates,
    ) -> None:
        """Back-compat construction from the historical dict representation."""
        edges = list(transitions.items())
        self.edge_sources = np.fromiter(
            (source for (source, _), _ in edges), dtype=np.int64, count=len(edges)
        )
        self.edge_targets = np.fromiter(
            (target for (_, target), _ in edges), dtype=np.int64, count=len(edges)
        )
        self.edge_rates = np.fromiter(
            (rate for _, rate in edges), dtype=np.float64, count=len(edges)
        )
        if base_rates:
            self.transition_names = tuple(base_rates)
            self.rate_vector = np.asarray(
                [base_rates[name] for name in self.transition_names], dtype=np.float64
            )
            edge_index = {edge: i for i, (edge, _) in enumerate(edges)}
            self.edge_coefficient_matrix = _coefficients_to_csr(
                self.transition_names,
                edge_contributions or {},
                edge_index,
                len(edges),
            )
            self.state_coefficient_matrix = _coefficients_to_csr(
                self.transition_names,
                throughput_coefficients or {},
                None,
                len(self.markings),
            )
            self._explicit_throughput = None
        else:
            self.transition_names = ()
            self.rate_vector = np.zeros(0)
            self.edge_coefficient_matrix = None
            self.state_coefficient_matrix = None
            # Without coefficient data the throughput cannot be derived from
            # rate × degree; keep any explicitly provided dict as-is.
            self._explicit_throughput = (
                {name: dict(values) for name, values in throughput_contributions.items()}
                if throughput_contributions
                else None
            )

    # --- shape ------------------------------------------------------------

    @property
    def number_of_states(self) -> int:
        return len(self.markings)

    @property
    def number_of_transitions(self) -> int:
        return int(self.edge_rates.size)

    @property
    def has_coefficients(self) -> bool:
        """Whether the graph carries the data needed for parametric re-rating."""
        return bool(self.transition_names) and self.edge_coefficient_matrix is not None

    def marking_view(self, state_id: int) -> MarkingView:
        """Dict-like view of one tangible marking."""
        return MarkingView(self.markings[state_id], self.net.place_index)

    # --- vectorized operations --------------------------------------------

    def with_rate_vector(self, rate_vector: np.ndarray) -> "TangibleReachabilityGraph":
        """A re-rated copy sharing this graph's structure.

        The new edge rates are a single sparse mat-vec
        ``Q-entries(θ) = Σ_t rate_t(θ) · C_t`` over the stacked coefficient
        matrix; markings, edge index arrays and coefficient matrices are
        shared (they are rate-independent).
        """
        rate_vector = np.asarray(rate_vector, dtype=np.float64)
        edge_rates = self.edge_coefficient_matrix.T.dot(rate_vector)
        return TangibleReachabilityGraph(
            net=self.net,
            markings=self.markings,
            initial_distribution=self.initial_distribution,
            edge_sources=self.edge_sources,
            edge_targets=self.edge_targets,
            edge_rates=np.asarray(edge_rates, dtype=np.float64).ravel(),
            transition_names=self.transition_names,
            rate_vector=rate_vector,
            edge_coefficient_matrix=self.edge_coefficient_matrix,
            state_coefficient_matrix=self.state_coefficient_matrix,
        )

    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate of every tangible state (dense, length ``N``)."""
        return np.bincount(
            self.edge_sources, weights=self.edge_rates, minlength=self.number_of_states
        )

    def throughput_vector(self, transition_name: str) -> np.ndarray:
        """Dense per-state effective firing rate of one timed transition.

        Raises:
            KeyError: if the transition is unknown (callers translate this
                into their layer's error type).
        """
        index = self.transition_index.get(transition_name)
        if index is None:
            if (
                self._explicit_throughput is not None
                and transition_name in self._explicit_throughput
            ):
                vector = np.zeros(self.number_of_states)
                for state_id, rate in self._explicit_throughput[transition_name].items():
                    vector[state_id] = rate
                return vector
            raise KeyError(transition_name)
        row = self.state_coefficient_matrix.getrow(index)
        vector = np.zeros(self.number_of_states)
        vector[row.indices] = row.data * self.rate_vector[index]
        return vector

    # --- back-compat dict views -------------------------------------------

    @property
    def transitions(self) -> dict[tuple[int, int], float]:
        """``{(source_id, target_id): rate}`` built fresh from the edge arrays."""
        return {
            (int(source), int(target)): float(rate)
            for source, target, rate in zip(
                self.edge_sources, self.edge_targets, self.edge_rates
            )
        }

    @property
    def base_rates(self) -> dict[str, float]:
        """``{transition_name: current_rate}`` view of ``rate_vector``."""
        return {
            name: float(rate)
            for name, rate in zip(self.transition_names, self.rate_vector)
        }

    @property
    def edge_contributions(self) -> dict[str, dict[tuple[int, int], float]]:
        """``{transition_name: {(source, target): coefficient}}`` dict view."""
        if self.edge_coefficient_matrix is None:
            return {}
        result: dict[str, dict[tuple[int, int], float]] = {}
        matrix = self.edge_coefficient_matrix
        for index, name in enumerate(self.transition_names):
            start, end = matrix.indptr[index], matrix.indptr[index + 1]
            result[name] = {
                (int(self.edge_sources[e]), int(self.edge_targets[e])): float(c)
                for e, c in zip(matrix.indices[start:end], matrix.data[start:end])
            }
        return result

    @property
    def throughput_coefficients(self) -> dict[str, dict[int, float]]:
        """``{transition_name: {state_id: degree}}`` dict view."""
        if self.state_coefficient_matrix is None:
            return {}
        result: dict[str, dict[int, float]] = {}
        matrix = self.state_coefficient_matrix
        for index, name in enumerate(self.transition_names):
            start, end = matrix.indptr[index], matrix.indptr[index + 1]
            result[name] = {
                int(state): float(degree)
                for state, degree in zip(
                    matrix.indices[start:end], matrix.data[start:end]
                )
            }
        return result

    @property
    def throughput_contributions(self) -> dict[str, dict[int, float]]:
        """``{transition_name: {state_id: rate × degree}}`` dict view."""
        if self._explicit_throughput is not None:
            return {name: dict(values) for name, values in self._explicit_throughput.items()}
        if self.state_coefficient_matrix is None:
            return {}
        result: dict[str, dict[int, float]] = {}
        matrix = self.state_coefficient_matrix
        for index, name in enumerate(self.transition_names):
            start, end = matrix.indptr[index], matrix.indptr[index + 1]
            rate = float(self.rate_vector[index])
            result[name] = {
                int(state): rate * float(degree)
                for state, degree in zip(
                    matrix.indices[start:end], matrix.data[start:end]
                )
            }
        return result


def _coefficients_to_csr(
    names: Sequence[str],
    coefficients: Mapping[str, Mapping],
    edge_index: Optional[dict[tuple[int, int], int]],
    width: int,
) -> sparse.csr_matrix:
    """Stack per-transition coefficient dicts into one ``(T, width)`` CSR matrix.

    ``edge_index`` maps edge keys to column ids; when ``None`` the dict keys
    are state ids used as columns directly.
    """
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for row, name in enumerate(names):
        for key, value in (coefficients.get(name) or {}).items():
            rows.append(row)
            cols.append(edge_index[key] if edge_index is not None else key)
            data.append(value)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(names), width), dtype=np.float64
    )


def _immediate_branching(
    net: CompiledNet, marking: tuple[int, ...]
) -> list[tuple[float, tuple[int, ...]]]:
    """One step of the immediate race: ``[(probability, next_marking), ...]``."""
    enabled = net.enabled_immediate(marking)
    total_weight = sum(t.weight for t in enabled)
    return [(t.weight / total_weight, t.fire(marking)) for t in enabled]


def resolve_vanishing(
    net: CompiledNet,
    marking: tuple[int, ...],
    max_depth: int = DEFAULT_MAX_VANISHING_DEPTH,
    memo: dict[tuple[int, ...], dict[tuple[int, ...], float]] | None = None,
) -> dict[tuple[int, ...], float]:
    """Distribute a (possibly vanishing) marking over tangible markings.

    Performs a memoized depth-first traversal of the vanishing sub-graph
    rooted at ``marking``, accumulating branching probabilities.  Memoization
    matters: when an infrastructure component fails, the flush-style immediate
    transitions of the cloud models can fire in factorially many orders, all
    converging on the same tangible markings — each intermediate vanishing
    marking is resolved once.  Cycles among vanishing markings (immediate
    loops / "time traps") are detected and reported.

    Args:
        net: compiled net.
        marking: the marking to resolve.
        max_depth: maximum length of a chain of immediate firings.
        memo: optional cache shared across calls (the reachability generator
            passes one cache for the whole exploration).

    Returns:
        ``{tangible_marking: probability}`` summing to one.

    Raises:
        StateSpaceError: on immediate-transition cycles or excessive depth.
    """
    if not net.is_vanishing(marking):
        return {marking: 1.0}
    if memo is None:
        memo = {}
    on_path: set[tuple[int, ...]] = set()

    def resolve(current: tuple[int, ...], depth: int) -> dict[tuple[int, ...], float]:
        cached = memo.get(current)
        if cached is not None:
            return cached
        if depth > max_depth:
            raise StateSpaceError(
                f"net {net.name!r}: vanishing-marking resolution exceeded "
                f"{max_depth} chained immediate firings"
            )
        if current in on_path:
            raise StateSpaceError(
                f"net {net.name!r}: cycle of immediate transitions detected "
                f"(time trap) around marking {current}"
            )
        on_path.add(current)
        distribution: dict[tuple[int, ...], float] = {}
        for branch_probability, successor in _immediate_branching(net, current):
            if branch_probability <= 0.0:
                continue
            if net.is_vanishing(successor):
                for tangible, probability in resolve(successor, depth + 1).items():
                    mass = branch_probability * probability
                    distribution[tangible] = distribution.get(tangible, 0.0) + mass
            else:
                distribution[successor] = (
                    distribution.get(successor, 0.0) + branch_probability
                )
        on_path.discard(current)
        memo[current] = distribution
        return distribution

    result = resolve(marking, 0)
    total = sum(result.values())
    if abs(total - 1.0) > 1e-9:
        raise StateSpaceError(
            f"net {net.name!r}: vanishing resolution lost probability mass "
            f"(total={total!r})"
        )
    return result


def _concat(chunks: list[np.ndarray], dtype) -> np.ndarray:
    """Concatenate array chunks (empty list → empty array of ``dtype``)."""
    if not chunks:
        return np.zeros(0, dtype=dtype)
    return np.concatenate(chunks).astype(dtype, copy=False)


def _compact_records(block: np.ndarray) -> np.ndarray:
    """Contiguous copy of a marking block, int16 when every value fits.

    int16 records are 4× smaller than int64, which speeds up both the
    C-level row dedupe and the hashing of the derived bytes keys.
    """
    if block.size and -32768 <= block.min() and block.max() <= 32767:
        return np.ascontiguousarray(block, dtype=np.int16)
    return np.ascontiguousarray(block, dtype=np.int64)


def _record_view(block: np.ndarray) -> np.ndarray:
    """1-D void view of a contiguous 2-D block: one fixed-size record per row."""
    return block.view(np.dtype((np.void, block.dtype.itemsize * block.shape[1]))).ravel()


def _marking_row_key(row: np.ndarray) -> bytes:
    """Compact, encoding-stable bytes key of one marking vector.

    Uses the :func:`_compact_records` encoding rule on a single row: the
    decision is per marking, so a given marking always maps to the same key
    regardless of which block it arrives in, and the two encodings cannot
    collide (different lengths).
    """
    return _compact_records(np.atleast_2d(row)).tobytes()


def _marking_block_keys(block: np.ndarray) -> list[bytes]:
    """Per-row :func:`_marking_row_key` of a ``(N, P)`` block, batched."""
    if block.size == 0:
        return []
    compact = _compact_records(block)
    if compact.dtype != np.int16:
        # Mixed blocks fall back to per-row encoding so a small marking is
        # keyed identically no matter which block it arrives in.
        return [_marking_row_key(row) for row in block]
    record = compact.dtype.itemsize * compact.shape[1]
    buffer = compact.tobytes()
    return [buffer[k * record : (k + 1) * record] for k in range(len(compact))]


class _MarkingInterner:
    """Bytes-keyed state interner with optional (batched) canonicalization.

    States are keyed by the raw bytes of their canonical int64 marking
    vector; the tuple form is materialised once per *new* state only.  When
    the canonicalizer carries a vectorized ``batch`` companion (see
    :meth:`repro.core.cloud_model.CloudSystemModel.symmetry_canonicalizer`),
    whole blocks of markings are canonicalized in a handful of array
    operations instead of one Python call per marking.
    """

    def __init__(self, net_name: str, max_states: int, canonicalize) -> None:
        self.net_name = net_name
        self.max_states = max_states
        self.canonicalize = canonicalize
        self.canonicalize_batch = getattr(canonicalize, "batch", None)
        self.markings: list[tuple[int, ...]] = []
        #: Canonical marking bytes → state id (tangible states only).
        self.ids: dict[bytes, int] = {}

    def insert(self, key: bytes, row: np.ndarray) -> int:
        """Intern an already-canonical marking keyed by its array bytes."""
        state_id = self.ids.get(key)
        if state_id is not None:
            return state_id
        state_id = len(self.markings)
        if state_id >= self.max_states:
            raise StateSpaceLimitError(
                f"net {self.net_name!r}: tangible state space exceeds the limit "
                f"of {self.max_states} markings",
                max_states=self.max_states,
                states_explored=len(self.markings),
            )
        self.ids[key] = state_id
        self.markings.append(tuple(row.tolist()))
        return state_id

    def intern_tuple(self, marking: tuple[int, ...]) -> int:
        if self.canonicalize is not None:
            marking = self.canonicalize(marking)
        row = np.asarray(marking, dtype=np.int64)
        return self.insert(_marking_row_key(row), row)

    def canonical_block(self, block: np.ndarray) -> np.ndarray:
        """Canonical representatives of a ``(N, P)`` block of raw markings."""
        if self.canonicalize_batch is not None:
            return np.ascontiguousarray(self.canonicalize_batch(block), dtype=np.int64)
        if self.canonicalize is not None:
            return np.asarray(
                [
                    self.canonicalize(tuple(int(tokens) for tokens in row))
                    for row in block
                ],
                dtype=np.int64,
            )
        return np.ascontiguousarray(block, dtype=np.int64)


class _BatchSuccessorResolver:
    """Maps raw successor markings to interned tangible distributions.

    One instance lives for the duration of an exploration.  ``cache`` maps
    the raw bytes of a successor marking to its fully resolved distribution
    ``((state_id, probability), ...)`` — the vanishing-chain traversal, the
    optional orbit canonicalization and the interning are all collapsed into
    that single lookup, so each distinct successor pays the resolution cost
    exactly once.

    Novel vanishing successors of a wave are resolved together: the
    vanishing sub-graph below them is discovered level by level (one
    vectorized immediate-race expansion per level of chained immediate
    firings) and the branching probabilities are then absorbed through the
    sub-graph with sparse matrix products (see
    :meth:`_resolve_vanishing_batch`).  Cycles of immediate transitions
    (time traps) leave unabsorbed probability mass and are reported.

    With a canonicalizer, the entire resolution runs in *canonical* marking
    space — vanishing chain markings included.  The canonicalizer contract
    (the net is invariant under the underlying place permutations) makes
    this exact: permuted vanishing markings have permuted races with
    identical probabilities, hence identical canonical tangible
    distributions.  Working on orbit representatives shrinks the vanishing
    sub-graph by up to the orbit size.
    """

    def __init__(
        self,
        kernel,
        interner: _MarkingInterner,
        max_depth: int = DEFAULT_MAX_VANISHING_DEPTH,
    ):
        self.kernel = kernel
        self.net = kernel.net
        self.interner = interner
        self.max_depth = max_depth
        #: Raw successor bytes → resolved ((state_id, probability), ...).
        self.cache: dict[bytes, tuple[tuple[int, float], ...]] = {}
        #: Canonical bytes of a *vanishing* marking → resolved distribution.
        self._vanishing_distributions: dict[bytes, tuple[tuple[int, float], ...]] = {}

    def resolve_wave(self, successors: np.ndarray, keys: list[bytes]) -> None:
        """Ensure ``cache`` covers every successor of the wave."""
        novel_rows: list[int] = []
        seen: set[bytes] = set()
        for row, key in enumerate(keys):
            if key in self.cache or key in seen:
                continue
            seen.add(key)
            novel_rows.append(row)
        if not novel_rows:
            return
        canonical = self.interner.canonical_block(successors[novel_rows])
        canonical_keys = _marking_block_keys(canonical)
        state_ids = self.interner.ids
        unknown_rows: list[int] = []
        unknown_keys: list[bytes] = []
        seen.clear()
        for index, canonical_key in enumerate(canonical_keys):
            if (
                canonical_key in state_ids
                or canonical_key in self._vanishing_distributions
                or canonical_key in seen
            ):
                continue
            seen.add(canonical_key)
            unknown_rows.append(index)
            unknown_keys.append(canonical_key)
        if unknown_rows:
            vanishing = self.kernel.vanishing_mask(canonical[unknown_rows])
            pending_rows: list[int] = []
            pending_keys: list[bytes] = []
            for position, index in enumerate(unknown_rows):
                if vanishing[position]:
                    pending_rows.append(index)
                    pending_keys.append(unknown_keys[position])
                else:
                    self.interner.insert(unknown_keys[position], canonical[index])
            if pending_rows:
                self._resolve_vanishing_batch(canonical[pending_rows], pending_keys)
        for index, row in enumerate(novel_rows):
            canonical_key = canonical_keys[index]
            state_id = state_ids.get(canonical_key)
            if state_id is not None:
                self.cache[keys[row]] = ((state_id, 1.0),)
            else:
                self.cache[keys[row]] = self._vanishing_distributions[canonical_key]

    def _resolve_vanishing_batch(self, markings: np.ndarray, keys: list[bytes]) -> None:
        """Resolve a batch of distinct, unresolved, *canonical* vanishing markings.

        Two phases.  *Discovery* walks the vanishing sub-graph level by
        level, assigning every unresolved vanishing marking an integer node
        id and collecting the one-step race as COO triplets of two sparse
        matrices — ``P_vv`` (vanishing → vanishing) and ``P_vt`` (vanishing
        → tangible, tangible children interned on the spot).  *Absorption*
        then computes every node's tangible distribution at once as
        ``D = (Σ_k P_vv^k) · P_vt`` with sparse mat-mats; ``P_vv`` is
        nilpotent on a cycle-free sub-graph, so the series terminates, and
        leftover mass (a cycle of immediate transitions / time trap) is
        reported.
        """
        kernel = self.kernel
        interner = self.interner
        state_ids = interner.ids
        immediate_ids = kernel.immediate_indices
        priorities = kernel.immediate_priorities
        weights = kernel.immediate_weights

        node_ids: dict[bytes, int] = {}
        node_keys: list[bytes] = []

        def new_node(key: bytes) -> int:
            node_id = len(node_keys)
            node_ids[key] = node_id
            node_keys.append(key)
            return node_id

        for key in keys:
            new_node(key)

        vv_rows: list[np.ndarray] = []
        vv_columns: list[np.ndarray] = []
        vv_probabilities: list[np.ndarray] = []
        vt_rows: list[np.ndarray] = []
        vt_columns: list[np.ndarray] = []
        vt_probabilities: list[np.ndarray] = []

        level_markings = markings
        level_nodes = np.arange(len(keys), dtype=np.int64)
        depth = 0
        while level_nodes.size:
            depth += 1
            if depth > self.max_depth:
                raise StateSpaceError(
                    f"net {self.net.name!r}: vanishing-marking resolution exceeded "
                    f"{self.max_depth} chained immediate firings"
                )
            enabled = kernel.enabled(level_markings, immediate_ids)
            masked_priorities = np.where(enabled, priorities[None, :], np.iinfo(np.int64).min)
            top = masked_priorities.max(axis=1)
            race = enabled & (priorities[None, :] == top[:, None])
            race_weights = np.where(race, weights[None, :], 0.0)
            totals = race_weights.sum(axis=1)
            rows, columns = np.nonzero(race)
            children = interner.canonical_block(
                level_markings[rows] + kernel.delta[immediate_ids[columns]]
            )
            probabilities = race_weights[rows, columns] / totals[rows]
            # Dedupe the level's children in C; classification runs per
            # *distinct* child and is scattered back over the race pairs
            # with one fancy-index per array.
            _, first_rows, inverse = np.unique(
                _record_view(_compact_records(children)),
                return_index=True,
                return_inverse=True,
            )
            unique_keys = _marking_block_keys(children[first_rows])

            # Per distinct child: tangible (kind 0, code = state id), node of
            # this batch (kind 1, code = node id), or previously resolved
            # vanishing marking (kind 2, code = index into known_dists).
            n_unique = len(unique_keys)
            kinds = np.empty(n_unique, dtype=np.int8)
            codes = np.empty(n_unique, dtype=np.int64)
            known_dists: list[tuple[tuple[int, float], ...]] = []
            unknown_positions: list[int] = []
            for position, child_key in enumerate(unique_keys):
                state_id = state_ids.get(child_key)
                if state_id is not None:
                    kinds[position] = 0
                    codes[position] = state_id
                    continue
                node_id = node_ids.get(child_key)
                if node_id is not None:
                    kinds[position] = 1
                    codes[position] = node_id
                    continue
                known = self._vanishing_distributions.get(child_key)
                if known is not None:
                    kinds[position] = 2
                    codes[position] = len(known_dists)
                    known_dists.append(known)
                    continue
                unknown_positions.append(position)
            next_rows: list[int] = []
            if unknown_positions:
                unknown_rows = first_rows[unknown_positions]
                child_vanishing = kernel.vanishing_mask(children[unknown_rows])
                for offset, position in enumerate(unknown_positions):
                    child_key = unique_keys[position]
                    row = int(unknown_rows[offset])
                    if child_vanishing[offset]:
                        kinds[position] = 1
                        codes[position] = new_node(child_key)
                        next_rows.append(row)
                    else:
                        kinds[position] = 0
                        codes[position] = interner.insert(child_key, children[row])

            parent_nodes = level_nodes[rows]
            pair_kinds = kinds[inverse]
            pair_codes = codes[inverse]
            tangible_mask = pair_kinds == 0
            vt_rows.append(parent_nodes[tangible_mask])
            vt_columns.append(pair_codes[tangible_mask])
            vt_probabilities.append(probabilities[tangible_mask])
            node_mask = pair_kinds == 1
            vv_rows.append(parent_nodes[node_mask])
            vv_columns.append(pair_codes[node_mask])
            vv_probabilities.append(probabilities[node_mask])
            known_mask = pair_kinds == 2
            if known_mask.any():
                # A child resolved by an earlier batch contributes its known
                # distribution directly, expanded with a ragged repeat.
                known_codes = pair_codes[known_mask]
                counts = np.fromiter(
                    (len(known_dists[code]) for code in known_codes),
                    dtype=np.int64,
                    count=known_codes.size,
                )
                vt_rows.append(np.repeat(parent_nodes[known_mask], counts))
                vt_columns.append(
                    np.fromiter(
                        (
                            state
                            for code in known_codes
                            for state, _ in known_dists[code]
                        ),
                        dtype=np.int64,
                    )
                )
                vt_probabilities.append(
                    np.repeat(probabilities[known_mask], counts)
                    * np.fromiter(
                        (
                            mass
                            for code in known_codes
                            for _, mass in known_dists[code]
                        ),
                        dtype=np.float64,
                    )
                )
            level_markings = children[next_rows]
            level_nodes = np.arange(
                len(node_keys) - len(next_rows), len(node_keys), dtype=np.int64
            )

        number_of_nodes = len(node_keys)
        width = len(interner.markings)
        to_tangible = sparse.coo_matrix(
            (
                _concat(vt_probabilities, np.float64),
                (_concat(vt_rows, np.int64), _concat(vt_columns, np.int64)),
            ),
            shape=(number_of_nodes, width),
        ).tocsr()
        to_vanishing = sparse.coo_matrix(
            (
                _concat(vv_probabilities, np.float64),
                (_concat(vv_rows, np.int64), _concat(vv_columns, np.int64)),
            ),
            shape=(number_of_nodes, number_of_nodes),
        ).tocsr()

        distributions = to_tangible.copy()
        remaining = to_vanishing
        for _ in range(self.max_depth):
            if remaining.nnz == 0:
                break
            distributions = distributions + remaining @ to_tangible
            remaining = remaining @ to_vanishing
        if remaining.nnz:
            raise StateSpaceError(
                f"net {self.net.name!r}: cycle of immediate transitions detected "
                "(time trap)"
            )
        row_totals = np.asarray(distributions.sum(axis=1)).ravel()
        worst = np.abs(row_totals - 1.0).max() if row_totals.size else 0.0
        if worst > 1e-9:
            raise StateSpaceError(
                f"net {self.net.name!r}: vanishing resolution lost probability "
                f"mass (worst row total deviates by {worst!r})"
            )

        memo = self._vanishing_distributions
        indptr = distributions.indptr
        indices = distributions.indices.tolist()
        data = distributions.data.tolist()
        for node_id, key in enumerate(node_keys):
            start, end = indptr[node_id], indptr[node_id + 1]
            memo[key] = tuple(zip(indices[start:end], data[start:end]))


class WaveBlock(NamedTuple):
    """One finalized BFS wave of the exploration (see :class:`WaveExploration`).

    Blocks partition the state space by source rows: the rows
    ``[row_start, row_end)`` of block ``k`` pick up exactly where block
    ``k-1`` stopped, and — because every state is expanded in exactly one
    wave — all edges with a source in that range live in that block.  Edges
    are deduplicated and sorted by ``(source, target)`` *within* the block,
    which (with disjoint, increasing source ranges) makes the concatenation
    of the per-block edge lists identical to a globally sorted edge list.
    """

    row_start: int
    row_end: int
    #: ``(W, P)`` int64 marking rows of the wave's source states.
    markings: np.ndarray
    #: Aggregated tangible edges of the wave, absolute state ids.
    edge_sources: np.ndarray
    edge_targets: np.ndarray
    edge_rates: np.ndarray
    #: ``(T, E_w)`` CSR slice of the edge coefficient matrix.
    edge_coefficient_block: sparse.csr_matrix
    #: ``(T, W)`` CSR slice of the state coefficient matrix; columns are
    #: wave-relative (``absolute_state - row_start``).
    state_coefficient_block: sparse.csr_matrix


class WaveExploration:
    """Shared chunked-wave BFS core behind every state-space representation.

    Owns the setup that both graph frontends need — compiled net, incidence
    kernel, marking interner, vanishing-chain resolver, resolved initial
    distribution — and exposes the exploration as a stream of finalized
    :class:`WaveBlock` objects.  The in-RAM frontend
    (:func:`generate_tangible_reachability_graph`) concatenates the blocks
    into one :class:`TangibleReachabilityGraph`; the disk-backed frontend
    (:mod:`repro.statespace.chunked`) writes each block to its own chunk
    file and never holds more than one wave in memory.

    Per-wave finalization is exact, not approximate: deduplication keys,
    coefficient placement and rate accumulation order are arranged so that
    concatenating the per-wave results is *bitwise* identical to the
    single-pass global construction (duplicate edge contributions are always
    wave-internal, and block-local sort order extends the global
    ``(source, target)`` order).
    """

    def __init__(
        self,
        net: StochasticPetriNet | CompiledNet,
        max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
        canonicalize=None,
        chunk_size: int = DEFAULT_EXPLORATION_CHUNK,
    ) -> None:
        self.compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)
        validate_canonicalizer(
            canonicalize, len(self.compiled.place_names), self.compiled.name
        )
        self.max_states = max_states
        self.chunk_size = max(1, chunk_size)
        self.kernel = self.compiled.kernel()
        self.timed_ids = self.kernel.timed_indices
        self.n_timed = int(self.timed_ids.size)
        self.nominal_rates = self.kernel.timed_rates
        self.transition_names = tuple(
            t.name for t in self.compiled.timed_transitions
        )
        self.interner = _MarkingInterner(self.compiled.name, max_states, canonicalize)
        self.resolver = _BatchSuccessorResolver(self.kernel, self.interner)
        self.initial_distribution: dict[int, float] = {}
        for tangible_marking, probability in resolve_vanishing(
            self.compiled, self.compiled.initial_marking
        ).items():
            target_id = self.interner.intern_tuple(tangible_marking)
            self.initial_distribution[target_id] = (
                self.initial_distribution.get(target_id, 0.0) + probability
            )

    @property
    def markings(self) -> list[tuple[int, ...]]:
        return self.interner.markings

    def blocks(self) -> Iterator[WaveBlock]:
        """Stream the exploration as finalized per-wave blocks.

        Every wave yields exactly one block (edge arrays may be empty), so
        the blocks' ``[row_start, row_end)`` ranges partition the final
        state space.  A ``max_states`` overflow is re-raised enriched with
        how far the exploration got and a wave-growth projection of the
        total state-space size.
        """
        kernel = self.kernel
        interner = self.interner
        resolver = self.resolver
        markings = interner.markings
        timed_ids = self.timed_ids
        n_timed = self.n_timed
        nominal_rates = self.nominal_rates
        infinite_server = kernel.timed_infinite_server
        infinite_ids = timed_ids[infinite_server]
        empty_edges = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )

        wave_totals: list[int] = []
        head = 0
        try:
            while head < len(markings):
                wave_end = min(head + self.chunk_size, len(markings))
                wave_ids = np.arange(head, wave_end, dtype=np.int64)
                wave = np.asarray(markings[head:wave_end], dtype=np.int64)
                row_start, head = head, wave_end
                if n_timed == 0:
                    wave_totals.append(len(markings))
                    yield WaveBlock(
                        row_start,
                        wave_end,
                        wave,
                        *empty_edges,
                        sparse.csr_matrix((n_timed, 0), dtype=np.float64),
                        sparse.csr_matrix(
                            (n_timed, wave_end - row_start), dtype=np.float64
                        ),
                    )
                    continue

                enabled = kernel.enabled(wave, timed_ids)
                pair_rate_matrix = enabled * nominal_rates[None, :]
                degree_matrix = None
                if infinite_ids.size:
                    # Degrees only matter for infinite-server transitions;
                    # computing them for those columns alone keeps the 3-D
                    # floor-divide small.
                    degree_matrix = np.ones((len(wave), n_timed), dtype=np.float64)
                    degree_matrix[:, infinite_server] = kernel.enabling_degrees(
                        wave, infinite_ids
                    )
                    pair_rate_matrix = pair_rate_matrix * degree_matrix
                firing_mask = enabled & (pair_rate_matrix > 0.0)
                rows, columns = np.nonzero(firing_mask)  # state-major order
                if rows.size == 0:
                    wave_totals.append(len(markings))
                    yield WaveBlock(
                        row_start,
                        wave_end,
                        wave,
                        *empty_edges,
                        sparse.csr_matrix((n_timed, 0), dtype=np.float64),
                        sparse.csr_matrix(
                            (n_timed, wave_end - row_start), dtype=np.float64
                        ),
                    )
                    continue

                successors = wave[rows] + kernel.delta[timed_ids[columns]]
                if kernel.firing_can_go_negative and (successors < 0).any():
                    raise ModelError(
                        f"net {self.compiled.name!r}: firing a transition with "
                        "duplicate input arcs would make a place marking negative"
                    )
                pair_rates = pair_rate_matrix[rows, columns]
                if degree_matrix is None:
                    pair_degrees = np.ones(rows.size, dtype=np.float64)
                else:
                    pair_degrees = degree_matrix[rows, columns]
                pair_sources = wave_ids[rows]

                state_coefficient_block = sparse.coo_matrix(
                    (pair_degrees, (columns, pair_sources - row_start)),
                    shape=(n_timed, wave_end - row_start),
                ).tocsr()

                # Dedupe the wave's successors in C (a sort over fixed-size
                # byte records), resolve each distinct successor once, then
                # expand the resolved distributions back over all pairs with
                # ragged gathers.
                _, first_rows, inverse = np.unique(
                    _record_view(_compact_records(successors)),
                    return_index=True,
                    return_inverse=True,
                )
                unique_successors = successors[first_rows]
                unique_keys = _marking_block_keys(unique_successors)
                resolver.resolve_wave(unique_successors, unique_keys)
                cache = resolver.cache
                distributions = [cache[key] for key in unique_keys]
                counts = np.fromiter(
                    (len(d) for d in distributions),
                    dtype=np.int64,
                    count=len(distributions),
                )
                offsets = np.cumsum(counts) - counts
                flat_targets = np.fromiter(
                    (target for d in distributions for target, _ in d),
                    dtype=np.int64,
                )
                flat_probabilities = np.fromiter(
                    (probability for d in distributions for _, probability in d),
                    dtype=np.float64,
                )
                lengths = counts[inverse]
                total = int(lengths.sum())
                out_offsets = np.cumsum(lengths) - lengths
                gather = np.arange(total, dtype=np.int64) + np.repeat(
                    offsets[inverse] - out_offsets, lengths
                )
                targets = flat_targets[gather]
                probabilities = flat_probabilities[gather]
                sources = np.repeat(pair_sources, lengths)
                keep = targets != sources  # self-loops contribute nothing
                kept_sources = sources[keep]
                kept_targets = targets[keep]
                kept_rows = np.repeat(columns, lengths)[keep]
                kept_rates = (np.repeat(pair_rates, lengths) * probabilities)[keep]
                kept_coefficients = (
                    np.repeat(pair_degrees, lengths) * probabilities
                )[keep]

                # Finalize the wave: dedupe/sort its edges exactly as the
                # global pass would.  Every target is interned by now, so
                # ``stride`` bounds them and the block-local key sorts in
                # global (source, target) order; duplicate contributions to
                # one edge are always wave-internal (wave-locality), so the
                # per-wave bincount accumulates the same addends in the same
                # order as a global bincount would.
                stride = len(markings)
                edge_keys = (kept_sources - row_start) * stride + kept_targets
                unique_edge_keys, edge_index = np.unique(
                    edge_keys, return_inverse=True
                )
                block_sources = unique_edge_keys // stride + row_start
                block_targets = unique_edge_keys % stride
                block_rates = np.bincount(
                    edge_index, weights=kept_rates, minlength=unique_edge_keys.size
                )
                edge_coefficient_block = sparse.coo_matrix(
                    (kept_coefficients, (kept_rows, edge_index)),
                    shape=(n_timed, unique_edge_keys.size),
                ).tocsr()
                wave_totals.append(len(markings))
                yield WaveBlock(
                    row_start,
                    wave_end,
                    wave,
                    block_sources,
                    block_targets,
                    block_rates,
                    edge_coefficient_block,
                    state_coefficient_block,
                )
        except StateSpaceLimitError as error:
            raise _enriched_limit_error(
                error, self.compiled.name, wave_totals, len(markings)
            ) from None


def _enriched_limit_error(
    error: StateSpaceLimitError,
    net_name: str,
    wave_totals: list[int],
    states_explored: int,
) -> StateSpaceLimitError:
    """Rebuild a ``max_states`` overflow with exploration context.

    Projects the total state-space size by extrapolating the per-wave
    discovery counts geometrically (BFS levels of these nets grow roughly
    geometrically until saturation); the projection is omitted when the
    recent growth is flat or shrinking, where a geometric tail sum would be
    meaningless.
    """
    waves_explored = len(wave_totals) + 1
    projected = None
    if len(wave_totals) >= 3:
        added = np.diff(np.asarray(wave_totals[-4:], dtype=np.float64))
        if added.size >= 2 and (added > 0).all():
            growth = float(np.exp(np.mean(np.log(added[1:] / added[:-1]))))
            if growth > 1.05:
                projected = int(states_explored + added[-1] * growth / (growth - 1.0))
    projection_clause = (
        f"; wave growth projects roughly {projected} tangible markings in total"
        if projected is not None
        else ""
    )
    return StateSpaceLimitError(
        f"net {net_name!r}: tangible state space exceeds the limit of "
        f"{error.max_states} markings after exploring {states_explored} states "
        f"across {waves_explored} BFS waves{projection_clause}. Options: raise "
        "max_states, enable symmetry_reduction, route the model to the "
        "disk-backed chunked backend (repro.statespace.chunked / "
        "--memory-budget), or size it first with the symbolic counter "
        "(repro.statespace.symbolic).",
        max_states=error.max_states,
        states_explored=states_explored,
        waves_explored=waves_explored,
        projected_states=projected,
    )


def generate_tangible_reachability_graph(
    net: StochasticPetriNet | CompiledNet,
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
    canonicalize=None,
    chunk_size: int = DEFAULT_EXPLORATION_CHUNK,
) -> TangibleReachabilityGraph:
    """Explore the tangible state space of ``net`` with the incidence kernel.

    The breadth-first exploration expands the frontier in waves: up to
    ``chunk_size`` markings are stacked into one ``(F, P)`` array, and
    enabledness, enabling degrees and all successor markings of the wave are
    computed with broadcast array operations
    (:class:`repro.spn.kernel.IncidenceKernel`).  Vanishing successors are
    resolved by a batch traversal of the vanishing sub-graph (one vectorized
    immediate-race expansion per chain level, then a sparse-matrix
    absorption of the branching probabilities), and every successor marking
    seen before is a single bytes-key lookup.  The produced graph is
    equivalent to the one built by the retained scalar reference
    (:func:`generate_tangible_reachability_graph_scalar`): same markings,
    edges and coefficients, possibly under a different state numbering.

    This is the in-RAM frontend over :class:`WaveExploration`; the
    disk-backed frontend in :mod:`repro.statespace.chunked` consumes the
    same wave stream without accumulating it.

    Args:
        net: the net to explore (a declarative net is compiled first).
        max_states: abort if more tangible markings than this are discovered
            (protects against unbounded nets).
        canonicalize: optional ``f(marking_tuple) -> marking_tuple`` mapping
            every marking to the canonical representative of its symmetry
            orbit.  When the net is invariant under a group of place
            permutations (e.g. identical physical machines within a data
            center), exploring only canonical representatives produces the
            exactly lumped CTMC, often several times smaller.  Measures
            evaluated on the lumped graph must themselves be symmetric under
            the same permutations.  The canonicalizer is validated against
            the net up front (place count / permutation behaviour) — a stale
            canonicalizer built for a different net raises
            :class:`~repro.exceptions.ModelError` instead of silently
            producing a wrong lumped graph.
        chunk_size: frontier markings expanded per vectorized wave.

    Raises:
        StateSpaceError: if the exploration exceeds ``max_states`` or the net
            contains immediate-transition cycles.
        ModelError: if ``canonicalize`` does not fit the net.
    """
    exploration = WaveExploration(net, max_states, canonicalize, chunk_size)
    n_timed = exploration.n_timed

    edge_source_blocks: list[np.ndarray] = []
    edge_target_blocks: list[np.ndarray] = []
    edge_rate_blocks: list[np.ndarray] = []
    edge_coefficient_blocks: list[sparse.csr_matrix] = []
    state_coefficient_blocks: list[sparse.csr_matrix] = []
    for block in exploration.blocks():
        edge_source_blocks.append(block.edge_sources)
        edge_target_blocks.append(block.edge_targets)
        edge_rate_blocks.append(block.edge_rates)
        edge_coefficient_blocks.append(block.edge_coefficient_block)
        state_coefficient_blocks.append(block.state_coefficient_block)

    markings = exploration.markings
    number_of_states = len(markings)
    if edge_coefficient_blocks:
        edge_coefficient_matrix = sparse.hstack(
            edge_coefficient_blocks, format="csr"
        )
        state_coefficient_matrix = sparse.hstack(
            state_coefficient_blocks, format="csr"
        )
    else:  # pragma: no cover - a net always has at least one tangible state
        edge_coefficient_matrix = sparse.csr_matrix((n_timed, 0), dtype=np.float64)
        state_coefficient_matrix = sparse.csr_matrix(
            (n_timed, number_of_states), dtype=np.float64
        )

    return TangibleReachabilityGraph(
        net=exploration.compiled,
        markings=markings,
        initial_distribution=exploration.initial_distribution,
        edge_sources=_concat(edge_source_blocks, np.int64),
        edge_targets=_concat(edge_target_blocks, np.int64),
        edge_rates=_concat(edge_rate_blocks, np.float64),
        transition_names=exploration.transition_names,
        rate_vector=exploration.nominal_rates.copy(),
        edge_coefficient_matrix=edge_coefficient_matrix,
        state_coefficient_matrix=state_coefficient_matrix,
    )


def generate_tangible_reachability_graph_scalar(
    net: StochasticPetriNet | CompiledNet,
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
    canonicalize=None,
) -> TangibleReachabilityGraph:
    """Scalar reference explorer (one marking, one transition at a time).

    This is the pre-kernel implementation, retained verbatim as the ground
    truth the vectorized explorer is verified against (property tests,
    ``benchmarks/bench_statespace.py``).  Semantics and state numbering are
    identical to :func:`generate_tangible_reachability_graph`; only the
    per-marking Python loops differ.
    """
    compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)
    validate_canonicalizer(canonicalize, len(compiled.place_names), compiled.name)

    marking_ids: dict[tuple[int, ...], int] = {}
    markings: list[tuple[int, ...]] = []
    transitions: dict[tuple[int, int], float] = {}
    throughput: dict[str, dict[int, float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    throughput_coefficients: dict[str, dict[int, float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    edge_contributions: dict[str, dict[tuple[int, int], float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    base_rates = {t.name: t.rate for t in compiled.timed_transitions}

    def intern(marking: tuple[int, ...]) -> tuple[int, bool]:
        if canonicalize is not None:
            marking = canonicalize(marking)
        state_id = marking_ids.get(marking)
        if state_id is not None:
            return state_id, False
        state_id = len(markings)
        if state_id >= max_states:
            raise StateSpaceError(
                f"net {compiled.name!r}: tangible state space exceeds the limit of "
                f"{max_states} markings"
            )
        marking_ids[marking] = state_id
        markings.append(marking)
        return state_id, True

    vanishing_memo: dict[tuple[int, ...], dict[tuple[int, ...], float]] = {}
    initial_distribution: dict[int, float] = {}
    frontier: deque[int] = deque()
    for tangible_marking, probability in resolve_vanishing(
        compiled, compiled.initial_marking, memo=vanishing_memo
    ).items():
        state_id, is_new = intern(tangible_marking)
        initial_distribution[state_id] = (
            initial_distribution.get(state_id, 0.0) + probability
        )
        if is_new:
            frontier.append(state_id)

    while frontier:
        state_id = frontier.popleft()
        marking = markings[state_id]
        for transition in compiled.timed_transitions:
            if not transition.is_enabled(marking):
                continue
            degree = float(transition.enabling_degree(marking)) if transition.infinite_server else 1.0
            rate = transition.rate * degree
            if rate <= 0.0:
                continue
            throughput[transition.name][state_id] = (
                throughput[transition.name].get(state_id, 0.0) + rate
            )
            throughput_coefficients[transition.name][state_id] = (
                throughput_coefficients[transition.name].get(state_id, 0.0) + degree
            )
            fired = transition.fire(marking)
            contributions = edge_contributions[transition.name]
            for tangible_marking, probability in resolve_vanishing(
                compiled, fired, memo=vanishing_memo
            ).items():
                target_id, is_new = intern(tangible_marking)
                if is_new:
                    frontier.append(target_id)
                if target_id == state_id:
                    # A self-loop contributes nothing to the CTMC dynamics.
                    continue
                key = (state_id, target_id)
                transitions[key] = transitions.get(key, 0.0) + rate * probability
                contributions[key] = contributions.get(key, 0.0) + degree * probability

    return TangibleReachabilityGraph(
        net=compiled,
        markings=markings,
        initial_distribution=initial_distribution,
        transitions=transitions,
        throughput_contributions=throughput,
        edge_contributions=edge_contributions,
        throughput_coefficients=throughput_coefficients,
        base_rates=base_rates,
    )
