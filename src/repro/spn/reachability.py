"""Tangible reachability graph generation with vanishing-marking elimination.

The analysis pipeline of the paper's tools (Mercury, TimeNET) reduces a GSPN
to a continuous-time Markov chain over its *tangible* markings: markings in
which no immediate transition is enabled.  Markings that enable immediate
transitions (*vanishing* markings) are passed through in zero time and are
eliminated on the fly here — every timed firing that lands on a vanishing
marking is redistributed over the tangible markings reachable through
immediate firings, weighted by the branching probabilities of the immediate
race (priority first, then relative weights).
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import StateSpaceError
from repro.spn.enabling import CompiledNet
from repro.spn.marking import MarkingView
from repro.spn.model import StochasticPetriNet

#: Safety limit: exploring more tangible markings than this aborts generation.
DEFAULT_MAX_TANGIBLE_MARKINGS = 500_000

#: Safety limit on the depth of chained immediate firings from a single marking.
DEFAULT_MAX_VANISHING_DEPTH = 10_000


class TangibleReachabilityGraph:
    """The tangible state space of a net, stored sparse-natively.

    The edge list and the per-transition coefficient matrices are held as
    flat numpy / scipy.sparse arrays so that re-rating the graph for a new
    parameter point (:mod:`repro.spn.parametric`) and assembling the CTMC
    generator (:mod:`repro.spn.ctmc_export`) are a handful of vectorized
    array operations instead of Python dict walks.

    Sparse-native attributes:
        edge_sources / edge_targets: ``int64`` arrays of length ``E`` — the
            unique (source_id, target_id) pairs of the aggregated tangible
            edges, self-loops excluded.
        edge_rates: ``float64`` array of length ``E`` — current edge rates,
            aligned with ``edge_sources`` / ``edge_targets``.
        transition_names: names of the timed transitions carrying coefficient
            data (all timed transitions of the net for generated graphs).
        rate_vector: ``float64`` array of length ``T`` — current base rate of
            each timed transition, aligned with ``transition_names``.
        edge_coefficient_matrix: CSR matrix of shape ``(T, E)``; entry
            ``(t, e)`` is the rate-independent coefficient (enabling degree ×
            switching probability through vanishing markings) of transition
            ``t`` on edge ``e``, so that
            ``edge_rates = edge_coefficient_matrix.T @ rate_vector``.
        state_coefficient_matrix: CSR matrix of shape ``(T, N)``; entry
            ``(t, s)`` is the enabling degree of transition ``t`` in state
            ``s`` (the rate-independent part of the throughput).

    The historical dict-shaped views (``transitions``,
    ``edge_contributions``, ``throughput_contributions``,
    ``throughput_coefficients``, ``base_rates``) remain available as
    read-only properties that materialise fresh dicts on access; hot paths
    should use the array attributes directly.
    """

    def __init__(
        self,
        net: CompiledNet,
        markings: list[tuple[int, ...]],
        initial_distribution: dict[int, float],
        transitions: Optional[Mapping[tuple[int, int], float]] = None,
        throughput_contributions: Optional[Mapping[str, Mapping[int, float]]] = None,
        edge_contributions: Optional[Mapping[str, Mapping[tuple[int, int], float]]] = None,
        throughput_coefficients: Optional[Mapping[str, Mapping[int, float]]] = None,
        base_rates: Optional[Mapping[str, float]] = None,
        *,
        edge_sources: Optional[np.ndarray] = None,
        edge_targets: Optional[np.ndarray] = None,
        edge_rates: Optional[np.ndarray] = None,
        transition_names: Optional[tuple[str, ...]] = None,
        rate_vector: Optional[np.ndarray] = None,
        edge_coefficient_matrix: Optional[sparse.csr_matrix] = None,
        state_coefficient_matrix: Optional[sparse.csr_matrix] = None,
    ) -> None:
        self.net = net
        self.markings = markings
        self.initial_distribution = initial_distribution
        if edge_sources is not None:
            self.edge_sources = np.asarray(edge_sources, dtype=np.int64)
            self.edge_targets = np.asarray(edge_targets, dtype=np.int64)
            self.edge_rates = np.asarray(edge_rates, dtype=np.float64)
            self.transition_names = tuple(transition_names or ())
            self.rate_vector = (
                np.asarray(rate_vector, dtype=np.float64)
                if rate_vector is not None
                else np.zeros(len(self.transition_names))
            )
            self.edge_coefficient_matrix = edge_coefficient_matrix
            self.state_coefficient_matrix = state_coefficient_matrix
            self._explicit_throughput = None
        else:
            self._init_from_dicts(
                dict(transitions or {}),
                throughput_contributions,
                edge_contributions,
                throughput_coefficients,
                base_rates,
            )
        self.transition_index = {
            name: i for i, name in enumerate(self.transition_names)
        }

    def _init_from_dicts(
        self,
        transitions: dict[tuple[int, int], float],
        throughput_contributions,
        edge_contributions,
        throughput_coefficients,
        base_rates,
    ) -> None:
        """Back-compat construction from the historical dict representation."""
        edges = list(transitions.items())
        self.edge_sources = np.fromiter(
            (source for (source, _), _ in edges), dtype=np.int64, count=len(edges)
        )
        self.edge_targets = np.fromiter(
            (target for (_, target), _ in edges), dtype=np.int64, count=len(edges)
        )
        self.edge_rates = np.fromiter(
            (rate for _, rate in edges), dtype=np.float64, count=len(edges)
        )
        if base_rates:
            self.transition_names = tuple(base_rates)
            self.rate_vector = np.asarray(
                [base_rates[name] for name in self.transition_names], dtype=np.float64
            )
            edge_index = {edge: i for i, (edge, _) in enumerate(edges)}
            self.edge_coefficient_matrix = _coefficients_to_csr(
                self.transition_names,
                edge_contributions or {},
                edge_index,
                len(edges),
            )
            self.state_coefficient_matrix = _coefficients_to_csr(
                self.transition_names,
                throughput_coefficients or {},
                None,
                len(self.markings),
            )
            self._explicit_throughput = None
        else:
            self.transition_names = ()
            self.rate_vector = np.zeros(0)
            self.edge_coefficient_matrix = None
            self.state_coefficient_matrix = None
            # Without coefficient data the throughput cannot be derived from
            # rate × degree; keep any explicitly provided dict as-is.
            self._explicit_throughput = (
                {name: dict(values) for name, values in throughput_contributions.items()}
                if throughput_contributions
                else None
            )

    # --- shape ------------------------------------------------------------

    @property
    def number_of_states(self) -> int:
        return len(self.markings)

    @property
    def number_of_transitions(self) -> int:
        return int(self.edge_rates.size)

    @property
    def has_coefficients(self) -> bool:
        """Whether the graph carries the data needed for parametric re-rating."""
        return bool(self.transition_names) and self.edge_coefficient_matrix is not None

    def marking_view(self, state_id: int) -> MarkingView:
        """Dict-like view of one tangible marking."""
        return MarkingView(self.markings[state_id], self.net.place_index)

    # --- vectorized operations --------------------------------------------

    def with_rate_vector(self, rate_vector: np.ndarray) -> "TangibleReachabilityGraph":
        """A re-rated copy sharing this graph's structure.

        The new edge rates are a single sparse mat-vec
        ``Q-entries(θ) = Σ_t rate_t(θ) · C_t`` over the stacked coefficient
        matrix; markings, edge index arrays and coefficient matrices are
        shared (they are rate-independent).
        """
        rate_vector = np.asarray(rate_vector, dtype=np.float64)
        edge_rates = self.edge_coefficient_matrix.T.dot(rate_vector)
        return TangibleReachabilityGraph(
            net=self.net,
            markings=self.markings,
            initial_distribution=self.initial_distribution,
            edge_sources=self.edge_sources,
            edge_targets=self.edge_targets,
            edge_rates=np.asarray(edge_rates, dtype=np.float64).ravel(),
            transition_names=self.transition_names,
            rate_vector=rate_vector,
            edge_coefficient_matrix=self.edge_coefficient_matrix,
            state_coefficient_matrix=self.state_coefficient_matrix,
        )

    def exit_rates(self) -> np.ndarray:
        """Total outgoing rate of every tangible state (dense, length ``N``)."""
        return np.bincount(
            self.edge_sources, weights=self.edge_rates, minlength=self.number_of_states
        )

    def throughput_vector(self, transition_name: str) -> np.ndarray:
        """Dense per-state effective firing rate of one timed transition.

        Raises:
            KeyError: if the transition is unknown (callers translate this
                into their layer's error type).
        """
        index = self.transition_index.get(transition_name)
        if index is None:
            if (
                self._explicit_throughput is not None
                and transition_name in self._explicit_throughput
            ):
                vector = np.zeros(self.number_of_states)
                for state_id, rate in self._explicit_throughput[transition_name].items():
                    vector[state_id] = rate
                return vector
            raise KeyError(transition_name)
        row = self.state_coefficient_matrix.getrow(index)
        vector = np.zeros(self.number_of_states)
        vector[row.indices] = row.data * self.rate_vector[index]
        return vector

    # --- back-compat dict views -------------------------------------------

    @property
    def transitions(self) -> dict[tuple[int, int], float]:
        """``{(source_id, target_id): rate}`` built fresh from the edge arrays."""
        return {
            (int(source), int(target)): float(rate)
            for source, target, rate in zip(
                self.edge_sources, self.edge_targets, self.edge_rates
            )
        }

    @property
    def base_rates(self) -> dict[str, float]:
        """``{transition_name: current_rate}`` view of ``rate_vector``."""
        return {
            name: float(rate)
            for name, rate in zip(self.transition_names, self.rate_vector)
        }

    @property
    def edge_contributions(self) -> dict[str, dict[tuple[int, int], float]]:
        """``{transition_name: {(source, target): coefficient}}`` dict view."""
        if self.edge_coefficient_matrix is None:
            return {}
        result: dict[str, dict[tuple[int, int], float]] = {}
        matrix = self.edge_coefficient_matrix
        for index, name in enumerate(self.transition_names):
            start, end = matrix.indptr[index], matrix.indptr[index + 1]
            result[name] = {
                (int(self.edge_sources[e]), int(self.edge_targets[e])): float(c)
                for e, c in zip(matrix.indices[start:end], matrix.data[start:end])
            }
        return result

    @property
    def throughput_coefficients(self) -> dict[str, dict[int, float]]:
        """``{transition_name: {state_id: degree}}`` dict view."""
        if self.state_coefficient_matrix is None:
            return {}
        result: dict[str, dict[int, float]] = {}
        matrix = self.state_coefficient_matrix
        for index, name in enumerate(self.transition_names):
            start, end = matrix.indptr[index], matrix.indptr[index + 1]
            result[name] = {
                int(state): float(degree)
                for state, degree in zip(
                    matrix.indices[start:end], matrix.data[start:end]
                )
            }
        return result

    @property
    def throughput_contributions(self) -> dict[str, dict[int, float]]:
        """``{transition_name: {state_id: rate × degree}}`` dict view."""
        if self._explicit_throughput is not None:
            return {name: dict(values) for name, values in self._explicit_throughput.items()}
        if self.state_coefficient_matrix is None:
            return {}
        result: dict[str, dict[int, float]] = {}
        matrix = self.state_coefficient_matrix
        for index, name in enumerate(self.transition_names):
            start, end = matrix.indptr[index], matrix.indptr[index + 1]
            rate = float(self.rate_vector[index])
            result[name] = {
                int(state): rate * float(degree)
                for state, degree in zip(
                    matrix.indices[start:end], matrix.data[start:end]
                )
            }
        return result


def _coefficients_to_csr(
    names: Sequence[str],
    coefficients: Mapping[str, Mapping],
    edge_index: Optional[dict[tuple[int, int], int]],
    width: int,
) -> sparse.csr_matrix:
    """Stack per-transition coefficient dicts into one ``(T, width)`` CSR matrix.

    ``edge_index`` maps edge keys to column ids; when ``None`` the dict keys
    are state ids used as columns directly.
    """
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for row, name in enumerate(names):
        for key, value in (coefficients.get(name) or {}).items():
            rows.append(row)
            cols.append(edge_index[key] if edge_index is not None else key)
            data.append(value)
    return sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(names), width), dtype=np.float64
    )


def _immediate_branching(
    net: CompiledNet, marking: tuple[int, ...]
) -> list[tuple[float, tuple[int, ...]]]:
    """One step of the immediate race: ``[(probability, next_marking), ...]``."""
    enabled = net.enabled_immediate(marking)
    total_weight = sum(t.weight for t in enabled)
    return [(t.weight / total_weight, t.fire(marking)) for t in enabled]


def resolve_vanishing(
    net: CompiledNet,
    marking: tuple[int, ...],
    max_depth: int = DEFAULT_MAX_VANISHING_DEPTH,
    memo: dict[tuple[int, ...], dict[tuple[int, ...], float]] | None = None,
) -> dict[tuple[int, ...], float]:
    """Distribute a (possibly vanishing) marking over tangible markings.

    Performs a memoized depth-first traversal of the vanishing sub-graph
    rooted at ``marking``, accumulating branching probabilities.  Memoization
    matters: when an infrastructure component fails, the flush-style immediate
    transitions of the cloud models can fire in factorially many orders, all
    converging on the same tangible markings — each intermediate vanishing
    marking is resolved once.  Cycles among vanishing markings (immediate
    loops / "time traps") are detected and reported.

    Args:
        net: compiled net.
        marking: the marking to resolve.
        max_depth: maximum length of a chain of immediate firings.
        memo: optional cache shared across calls (the reachability generator
            passes one cache for the whole exploration).

    Returns:
        ``{tangible_marking: probability}`` summing to one.

    Raises:
        StateSpaceError: on immediate-transition cycles or excessive depth.
    """
    if not net.is_vanishing(marking):
        return {marking: 1.0}
    if memo is None:
        memo = {}
    on_path: set[tuple[int, ...]] = set()

    def resolve(current: tuple[int, ...], depth: int) -> dict[tuple[int, ...], float]:
        cached = memo.get(current)
        if cached is not None:
            return cached
        if depth > max_depth:
            raise StateSpaceError(
                f"net {net.name!r}: vanishing-marking resolution exceeded "
                f"{max_depth} chained immediate firings"
            )
        if current in on_path:
            raise StateSpaceError(
                f"net {net.name!r}: cycle of immediate transitions detected "
                f"(time trap) around marking {current}"
            )
        on_path.add(current)
        distribution: dict[tuple[int, ...], float] = {}
        for branch_probability, successor in _immediate_branching(net, current):
            if branch_probability <= 0.0:
                continue
            if net.is_vanishing(successor):
                for tangible, probability in resolve(successor, depth + 1).items():
                    mass = branch_probability * probability
                    distribution[tangible] = distribution.get(tangible, 0.0) + mass
            else:
                distribution[successor] = (
                    distribution.get(successor, 0.0) + branch_probability
                )
        on_path.discard(current)
        memo[current] = distribution
        return distribution

    result = resolve(marking, 0)
    total = sum(result.values())
    if abs(total - 1.0) > 1e-9:
        raise StateSpaceError(
            f"net {net.name!r}: vanishing resolution lost probability mass "
            f"(total={total!r})"
        )
    return result


def generate_tangible_reachability_graph(
    net: StochasticPetriNet | CompiledNet,
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
    canonicalize=None,
) -> TangibleReachabilityGraph:
    """Explore the tangible state space of ``net``.

    Args:
        net: the net to explore (a declarative net is compiled first).
        max_states: abort if more tangible markings than this are discovered
            (protects against unbounded nets).
        canonicalize: optional ``f(marking_tuple) -> marking_tuple`` mapping
            every marking to the canonical representative of its symmetry
            orbit.  When the net is invariant under a group of place
            permutations (e.g. identical physical machines within a data
            center), exploring only canonical representatives produces the
            exactly lumped CTMC, often several times smaller.  Measures
            evaluated on the lumped graph must themselves be symmetric under
            the same permutations.

    Raises:
        StateSpaceError: if the exploration exceeds ``max_states`` or the net
            contains immediate-transition cycles.
    """
    compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)

    marking_ids: dict[tuple[int, ...], int] = {}
    markings: list[tuple[int, ...]] = []
    transitions: dict[tuple[int, int], float] = {}
    throughput: dict[str, dict[int, float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    throughput_coefficients: dict[str, dict[int, float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    edge_contributions: dict[str, dict[tuple[int, int], float]] = {
        t.name: {} for t in compiled.timed_transitions
    }
    base_rates = {t.name: t.rate for t in compiled.timed_transitions}

    def intern(marking: tuple[int, ...]) -> tuple[int, bool]:
        if canonicalize is not None:
            marking = canonicalize(marking)
        state_id = marking_ids.get(marking)
        if state_id is not None:
            return state_id, False
        state_id = len(markings)
        if state_id >= max_states:
            raise StateSpaceError(
                f"net {compiled.name!r}: tangible state space exceeds the limit of "
                f"{max_states} markings"
            )
        marking_ids[marking] = state_id
        markings.append(marking)
        return state_id, True

    vanishing_memo: dict[tuple[int, ...], dict[tuple[int, ...], float]] = {}
    initial_distribution: dict[int, float] = {}
    frontier: deque[int] = deque()
    for tangible_marking, probability in resolve_vanishing(
        compiled, compiled.initial_marking, memo=vanishing_memo
    ).items():
        state_id, is_new = intern(tangible_marking)
        initial_distribution[state_id] = (
            initial_distribution.get(state_id, 0.0) + probability
        )
        if is_new:
            frontier.append(state_id)

    while frontier:
        state_id = frontier.popleft()
        marking = markings[state_id]
        for transition in compiled.timed_transitions:
            if not transition.is_enabled(marking):
                continue
            degree = float(transition.enabling_degree(marking)) if transition.infinite_server else 1.0
            rate = transition.rate * degree
            if rate <= 0.0:
                continue
            throughput[transition.name][state_id] = (
                throughput[transition.name].get(state_id, 0.0) + rate
            )
            throughput_coefficients[transition.name][state_id] = (
                throughput_coefficients[transition.name].get(state_id, 0.0) + degree
            )
            fired = transition.fire(marking)
            contributions = edge_contributions[transition.name]
            for tangible_marking, probability in resolve_vanishing(
                compiled, fired, memo=vanishing_memo
            ).items():
                target_id, is_new = intern(tangible_marking)
                if is_new:
                    frontier.append(target_id)
                if target_id == state_id:
                    # A self-loop contributes nothing to the CTMC dynamics.
                    continue
                key = (state_id, target_id)
                transitions[key] = transitions.get(key, 0.0) + rate * probability
                contributions[key] = contributions.get(key, 0.0) + degree * probability

    return TangibleReachabilityGraph(
        net=compiled,
        markings=markings,
        initial_distribution=initial_distribution,
        transitions=transitions,
        throughput_contributions=throughput,
        edge_contributions=edge_contributions,
        throughput_coefficients=throughput_coefficients,
        base_rates=base_rates,
    )
