"""Structural validation of stochastic Petri nets.

``validate`` performs cheap, purely structural checks that catch the most
common modelling mistakes *before* an expensive state-space generation:
transitions without arcs, guards referencing unknown places, immediate
transitions that can never win a race, source transitions that make the net
obviously unbounded, and so on.  Findings are reported as a list of
:class:`ValidationIssue`; only ``ERROR`` severity raises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ModelError
from repro.spn.model import ArcKind, StochasticPetriNet


class Severity(enum.Enum):
    """Severity of a validation finding."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """One finding of the structural validator."""

    severity: Severity
    subject: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.subject}: {self.message}"


def validate(net: StochasticPetriNet, raise_on_error: bool = True) -> list[ValidationIssue]:
    """Run all structural checks on ``net``.

    Args:
        net: the net to inspect.
        raise_on_error: raise :class:`~repro.exceptions.ModelError` if any
            ERROR-severity issue is found (warnings never raise).

    Returns:
        All issues found, errors first.
    """
    issues: list[ValidationIssue] = []
    issues.extend(_check_guard_references(net))
    issues.extend(_check_transition_connectivity(net))
    issues.extend(_check_token_sources(net))
    issues.extend(_check_isolated_places(net))
    issues.sort(key=lambda issue: 0 if issue.severity is Severity.ERROR else 1)
    if raise_on_error:
        errors = [issue for issue in issues if issue.severity is Severity.ERROR]
        if errors:
            summary = "; ".join(str(issue) for issue in errors)
            raise ModelError(f"net {net.name!r} failed validation: {summary}")
    return issues


def _check_guard_references(net: StochasticPetriNet) -> list[ValidationIssue]:
    issues = []
    known = set(net.place_names)
    for transition in net.transitions:
        if transition.guard is None:
            continue
        unknown = transition.guard.places() - known
        if unknown:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    transition.name,
                    f"guard references unknown places {sorted(unknown)}",
                )
            )
        if transition.guard.identifiers():
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    transition.name,
                    "guard contains unresolved identifiers "
                    f"{sorted(transition.guard.identifiers())}",
                )
            )
    return issues


def _check_transition_connectivity(net: StochasticPetriNet) -> list[ValidationIssue]:
    issues = []
    for transition in net.transitions:
        arcs = net.arcs_of(transition.name)
        inputs = [arc for arc in arcs if arc.kind is ArcKind.INPUT]
        outputs = [arc for arc in arcs if arc.kind is ArcKind.OUTPUT]
        if not inputs and not outputs:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    transition.name,
                    "transition has neither input nor output arcs",
                )
            )
        elif not inputs and transition.immediate and transition.guard is None:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    transition.name,
                    "immediate transition without input arcs or guard is always "
                    "enabled and creates an immediate loop",
                )
            )
    return issues


def _check_token_sources(net: StochasticPetriNet) -> list[ValidationIssue]:
    issues = []
    for transition in net.transitions:
        arcs = net.arcs_of(transition.name)
        inputs = [arc for arc in arcs if arc.kind is ArcKind.INPUT]
        outputs = [arc for arc in arcs if arc.kind is ArcKind.OUTPUT]
        if not inputs and outputs and not transition.immediate:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    transition.name,
                    "timed transition produces tokens without consuming any; the "
                    "net may be unbounded",
                )
            )
    return issues


def _check_isolated_places(net: StochasticPetriNet) -> list[ValidationIssue]:
    connected = {arc.place for arc in net.arcs}
    guard_places: set[str] = set()
    for transition in net.transitions:
        if transition.guard is not None:
            guard_places |= transition.guard.places()
    issues = []
    for place in net.places:
        if place.name not in connected and place.name not in guard_places:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    place.name,
                    "place is not connected to any transition or guard",
                )
            )
    return issues
