"""Stochastic Petri net model definition.

The model class follows the flavour of generalized stochastic Petri nets
(GSPN) used by the paper and by the Mercury / TimeNET tools it references:

* places hold non-negative integer token counts;
* *timed* transitions fire after an exponentially distributed delay with
  either single-server (``ss``) or infinite-server (``is``) semantics
  (Tables I, III and V of the paper);
* *immediate* transitions fire in zero time, are resolved by priority and
  probabilistic weights, and always have precedence over timed transitions;
* transitions may carry a *guard* — a boolean expression over the marking
  (Tables II and IV) — and input, output and inhibitor arcs with integer
  multiplicities.

The class is purely declarative: analysis lives in
:mod:`repro.spn.reachability`, :mod:`repro.spn.analysis` and
:mod:`repro.spn.simulation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from repro.exceptions import ModelError
from repro.expressions import Expression, parse


class ServerSemantics(enum.Enum):
    """Concurrency semantics of a timed transition.

    ``SINGLE_SERVER`` (``ss``) fires at its nominal rate regardless of the
    enabling degree; ``INFINITE_SERVER`` (``is``) fires at the nominal rate
    multiplied by the enabling degree (used by the paper for VM failure and
    repair, Table III).
    """

    SINGLE_SERVER = "ss"
    INFINITE_SERVER = "is"


@dataclass(frozen=True)
class Place:
    """A place of the net.

    Attributes:
        name: unique identifier (also used inside guard expressions).
        initial_tokens: token count in the initial marking.
    """

    name: str
    initial_tokens: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("a place needs a non-empty name")
        if self.initial_tokens < 0:
            raise ModelError(
                f"place {self.name!r}: initial tokens must be non-negative, "
                f"got {self.initial_tokens!r}"
            )


class ArcKind(enum.Enum):
    """Kind of an arc."""

    INPUT = "input"
    OUTPUT = "output"
    INHIBITOR = "inhibitor"


@dataclass(frozen=True)
class Arc:
    """An arc connecting a place and a transition.

    For ``INPUT`` and ``INHIBITOR`` arcs the place is the source; for
    ``OUTPUT`` arcs the place is the target.  ``multiplicity`` is the number
    of tokens consumed / produced, or the inhibition threshold (the
    transition is disabled when the place holds *at least* ``multiplicity``
    tokens).
    """

    kind: ArcKind
    place: str
    transition: str
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ModelError(
                f"arc {self.place!r} <-> {self.transition!r}: multiplicity must be "
                f"at least 1, got {self.multiplicity!r}"
            )


@dataclass(frozen=True)
class Transition:
    """A transition of the net.

    Exactly one of the two behaviours applies:

    * **timed** (``immediate=False``): ``delay`` is the mean of the
      exponential firing delay; ``semantics`` selects single- or
      infinite-server behaviour.
    * **immediate** (``immediate=True``): ``weight`` and ``priority`` resolve
      races between simultaneously enabled immediate transitions.

    ``guard`` is an optional boolean expression over the marking; a
    transition with a guard is enabled only when the guard evaluates to true.
    """

    name: str
    immediate: bool = False
    delay: Optional[float] = None
    semantics: ServerSemantics = ServerSemantics.SINGLE_SERVER
    weight: float = 1.0
    priority: int = 1
    guard: Optional[Expression] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("a transition needs a non-empty name")
        if self.immediate:
            if self.delay is not None:
                raise ModelError(
                    f"immediate transition {self.name!r} must not define a delay"
                )
            if self.weight <= 0.0:
                raise ModelError(
                    f"immediate transition {self.name!r}: weight must be positive, "
                    f"got {self.weight!r}"
                )
            if self.priority < 1:
                raise ModelError(
                    f"immediate transition {self.name!r}: priority must be >= 1, "
                    f"got {self.priority!r}"
                )
        else:
            if self.delay is None or self.delay <= 0.0:
                raise ModelError(
                    f"timed transition {self.name!r}: delay must be a positive mean "
                    f"time, got {self.delay!r}"
                )

    @property
    def rate(self) -> float:
        """Nominal firing rate ``1 / delay`` of a timed transition."""
        if self.immediate or self.delay is None:
            raise ModelError(f"transition {self.name!r} is immediate and has no rate")
        return 1.0 / self.delay


GuardLike = Union[str, Expression, None]


class StochasticPetriNet:
    """A generalized stochastic Petri net.

    The builder API is intentionally close to the vocabulary of the paper::

        net = StochasticPetriNet("SIMPLE_COMPONENT")
        net.add_place("X_ON", initial_tokens=1)
        net.add_place("X_OFF")
        net.add_timed_transition("X_Failure", delay=mttf)
        net.add_timed_transition("X_Repair", delay=mttr)
        net.add_input_arc("X_ON", "X_Failure")
        net.add_output_arc("X_Failure", "X_OFF")
        net.add_input_arc("X_OFF", "X_Repair")
        net.add_output_arc("X_Repair", "X_ON")
    """

    def __init__(self, name: str = "net"):
        if not name:
            raise ModelError("a net needs a non-empty name")
        self.name = name
        self._places: dict[str, Place] = {}
        self._transitions: dict[str, Transition] = {}
        self._arcs: list[Arc] = []

    # --- introspection -----------------------------------------------------

    @property
    def places(self) -> list[Place]:
        """Places in insertion order."""
        return list(self._places.values())

    @property
    def place_names(self) -> list[str]:
        return list(self._places.keys())

    @property
    def transitions(self) -> list[Transition]:
        """Transitions in insertion order."""
        return list(self._transitions.values())

    @property
    def transition_names(self) -> list[str]:
        return list(self._transitions.keys())

    @property
    def arcs(self) -> list[Arc]:
        return list(self._arcs)

    def place(self, name: str) -> Place:
        try:
            return self._places[name]
        except KeyError:
            raise ModelError(f"unknown place {name!r} in net {self.name!r}") from None

    def transition(self, name: str) -> Transition:
        try:
            return self._transitions[name]
        except KeyError:
            raise ModelError(f"unknown transition {name!r} in net {self.name!r}") from None

    def has_place(self, name: str) -> bool:
        return name in self._places

    def has_transition(self, name: str) -> bool:
        return name in self._transitions

    def initial_marking(self) -> dict[str, int]:
        """Initial marking as a ``{place: tokens}`` mapping."""
        return {place.name: place.initial_tokens for place in self._places.values()}

    def arcs_of(self, transition_name: str) -> list[Arc]:
        """All arcs attached to one transition."""
        self.transition(transition_name)
        return [arc for arc in self._arcs if arc.transition == transition_name]

    # --- construction ------------------------------------------------------

    def add_place(self, name: str, initial_tokens: int = 0) -> Place:
        """Add a place; re-adding the same name with the same marking is a no-op."""
        if name in self._places:
            existing = self._places[name]
            if existing.initial_tokens != initial_tokens:
                raise ModelError(
                    f"place {name!r} already exists with {existing.initial_tokens} "
                    f"initial tokens (requested {initial_tokens})"
                )
            return existing
        place = Place(name, initial_tokens)
        self._places[name] = place
        return place

    def set_initial_tokens(self, name: str, tokens: int) -> None:
        """Replace the initial marking of an existing place."""
        self.place(name)
        self._places[name] = Place(name, tokens)

    def add_timed_transition(
        self,
        name: str,
        delay: float,
        semantics: ServerSemantics | str = ServerSemantics.SINGLE_SERVER,
        guard: GuardLike = None,
    ) -> Transition:
        """Add an exponentially timed transition with mean delay ``delay``."""
        transition = Transition(
            name=name,
            immediate=False,
            delay=delay,
            semantics=self._coerce_semantics(semantics),
            guard=self._coerce_guard(guard),
        )
        return self._register_transition(transition)

    def add_immediate_transition(
        self,
        name: str,
        weight: float = 1.0,
        priority: int = 1,
        guard: GuardLike = None,
    ) -> Transition:
        """Add an immediate transition resolved by weight and priority."""
        transition = Transition(
            name=name,
            immediate=True,
            weight=weight,
            priority=priority,
            guard=self._coerce_guard(guard),
        )
        return self._register_transition(transition)

    def add_input_arc(self, place: str, transition: str, multiplicity: int = 1) -> Arc:
        """Arc from ``place`` to ``transition`` (tokens consumed on firing)."""
        return self._register_arc(Arc(ArcKind.INPUT, place, transition, multiplicity))

    def add_output_arc(self, transition: str, place: str, multiplicity: int = 1) -> Arc:
        """Arc from ``transition`` to ``place`` (tokens produced on firing)."""
        return self._register_arc(Arc(ArcKind.OUTPUT, place, transition, multiplicity))

    def add_inhibitor_arc(self, place: str, transition: str, multiplicity: int = 1) -> Arc:
        """Inhibitor arc: the transition is disabled when ``#place >= multiplicity``."""
        return self._register_arc(Arc(ArcKind.INHIBITOR, place, transition, multiplicity))

    # --- helpers -------------------------------------------------------------

    @staticmethod
    def _coerce_semantics(semantics: ServerSemantics | str) -> ServerSemantics:
        if isinstance(semantics, ServerSemantics):
            return semantics
        try:
            return ServerSemantics(semantics)
        except ValueError:
            raise ModelError(
                f"unknown server semantics {semantics!r}; use 'ss' or 'is'"
            ) from None

    @staticmethod
    def _coerce_guard(guard: GuardLike) -> Optional[Expression]:
        if guard is None:
            return None
        if isinstance(guard, Expression):
            return guard
        return parse(guard)

    def _register_transition(self, transition: Transition) -> Transition:
        if transition.name in self._transitions:
            raise ModelError(
                f"transition {transition.name!r} already exists in net {self.name!r}"
            )
        if transition.name in self._places:
            raise ModelError(
                f"name {transition.name!r} is already used by a place in net {self.name!r}"
            )
        self._transitions[transition.name] = transition
        return transition

    def _register_arc(self, arc: Arc) -> Arc:
        if arc.place not in self._places:
            raise ModelError(
                f"arc references unknown place {arc.place!r} in net {self.name!r}"
            )
        if arc.transition not in self._transitions:
            raise ModelError(
                f"arc references unknown transition {arc.transition!r} in net {self.name!r}"
            )
        self._arcs.append(arc)
        return arc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StochasticPetriNet({self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)}, arcs={len(self._arcs)})"
        )
