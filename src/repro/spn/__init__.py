"""Stochastic Petri net engine: modelling, analysis, simulation and export."""

from repro.spn.analysis import (
    SteadyStateSolution,
    TransientSolution,
    solve_steady_state,
    solve_transient,
)
from repro.spn.compare import graph_deviation
from repro.spn.composition import merge, relabel
from repro.spn.ctmc_export import generator_matrix, initial_distribution_vector, to_markov_chain
from repro.spn.enabling import CompiledNet, CompiledTransition
from repro.spn.kernel import IncidenceKernel
from repro.spn.marking import MarkingView, marking_vector
from repro.spn.model import (
    Arc,
    ArcKind,
    Place,
    ServerSemantics,
    StochasticPetriNet,
    Transition,
)
from repro.spn.parametric import with_transition_delays, with_transition_rates
from repro.spn.reachability import (
    TangibleReachabilityGraph,
    generate_tangible_reachability_graph,
    generate_tangible_reachability_graph_scalar,
    resolve_vanishing,
)
from repro.spn.rewards import (
    ExpectedTokensMeasure,
    Measure,
    ProbabilityMeasure,
    ThroughputMeasure,
    availability_measure,
    validate_measures,
)
from repro.spn.simulation import MeasureEstimate, SimulationResult, simulate
from repro.spn.validation import Severity, ValidationIssue, validate
from repro.spn.visualization import to_dot, write_dot

__all__ = [
    "SteadyStateSolution",
    "TransientSolution",
    "solve_steady_state",
    "solve_transient",
    "merge",
    "relabel",
    "generator_matrix",
    "initial_distribution_vector",
    "to_markov_chain",
    "CompiledNet",
    "CompiledTransition",
    "IncidenceKernel",
    "MarkingView",
    "marking_vector",
    "Arc",
    "ArcKind",
    "Place",
    "ServerSemantics",
    "StochasticPetriNet",
    "Transition",
    "with_transition_delays",
    "with_transition_rates",
    "TangibleReachabilityGraph",
    "generate_tangible_reachability_graph",
    "generate_tangible_reachability_graph_scalar",
    "graph_deviation",
    "resolve_vanishing",
    "ExpectedTokensMeasure",
    "Measure",
    "ProbabilityMeasure",
    "ThroughputMeasure",
    "availability_measure",
    "validate_measures",
    "MeasureEstimate",
    "SimulationResult",
    "simulate",
    "Severity",
    "ValidationIssue",
    "validate",
    "to_dot",
    "write_dot",
]
