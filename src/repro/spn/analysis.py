"""Numerical analysis of stochastic Petri nets.

``solve_steady_state`` is the analytic pipeline used throughout the case
study: generate the tangible reachability graph, build the CTMC generator,
solve for the stationary distribution and evaluate measures on it.
``solve_transient`` provides instantaneous (point) availability curves via
uniformization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, Union

import numpy as np

from repro.exceptions import AnalysisError, ModelError
from repro.expressions import Expression, compile_expression
from repro.markov import solvers
from repro.markov.transient import transient_distribution
from repro.spn.ctmc_export import generator_matrix, initial_distribution_vector
from repro.spn.enabling import CompiledNet
from repro.spn.marking import MarkingView
from repro.spn.model import StochasticPetriNet
from repro.spn.reachability import (
    DEFAULT_MAX_TANGIBLE_MARKINGS,
    TangibleReachabilityGraph,
    generate_tangible_reachability_graph,
)
from repro.spn.rewards import (
    ExpectedTokensMeasure,
    Measure,
    ProbabilityMeasure,
    ThroughputMeasure,
    validate_measures,
)

ExpressionLike = Union[str, Expression]


class _SolutionBase:
    """Shared measure-evaluation helpers over a probability vector."""

    graph: TangibleReachabilityGraph

    def _place_index(self) -> Mapping[str, int]:
        return self.graph.net.place_index

    def _expectation(self, values_per_state: np.ndarray, probabilities: np.ndarray) -> float:
        return float(np.dot(values_per_state, probabilities))

    def _predicate_vector(self, expression: ExpressionLike) -> np.ndarray:
        predicate = compile_expression(expression, self._place_index())
        return np.asarray(
            [1.0 if predicate(marking) else 0.0 for marking in self.graph.markings]
        )

    def _value_vector(self, expression: ExpressionLike) -> np.ndarray:
        if isinstance(expression, str):
            candidate = expression.strip()
            if candidate in self._place_index():
                expression = f"#{candidate}"
        value = compile_expression(expression, self._place_index())
        return np.asarray([float(value(marking)) for marking in self.graph.markings])

    def _throughput_vector(self, transition_name: str) -> np.ndarray:
        try:
            return self.graph.throughput_vector(transition_name)
        except KeyError:
            raise ModelError(
                f"unknown timed transition {transition_name!r}; throughput is only "
                "defined for timed transitions"
            ) from None


@dataclass
class SteadyStateSolution(_SolutionBase):
    """Stationary solution of a net.

    Attributes:
        graph: tangible reachability graph.
        probabilities: stationary probability of each tangible marking.
    """

    graph: TangibleReachabilityGraph
    probabilities: np.ndarray

    # --- the paper's operators -------------------------------------------

    def probability(self, expression: ExpressionLike) -> float:
        """``P{expression}`` — steady-state probability of a marking predicate."""
        return self._expectation(self._predicate_vector(expression), self.probabilities)

    def expected_tokens(self, expression: ExpressionLike) -> float:
        """``E{expression}`` — expected value of a numeric marking expression."""
        return self._expectation(self._value_vector(expression), self.probabilities)

    def throughput(self, transition_name: str) -> float:
        """Expected firing rate of a timed transition."""
        return self._expectation(
            self._throughput_vector(transition_name), self.probabilities
        )

    # --- measure objects ----------------------------------------------------

    def measure(self, measure: Measure) -> float:
        """Evaluate a single measure object."""
        if isinstance(measure, ProbabilityMeasure):
            return self.probability(measure.expression)
        if isinstance(measure, ExpectedTokensMeasure):
            return self.expected_tokens(measure.expression)
        if isinstance(measure, ThroughputMeasure):
            return self.throughput(measure.transition)
        raise ModelError(f"unsupported measure type {type(measure)!r}")

    def evaluate(self, measures: Sequence[Measure]) -> dict[str, float]:
        """Evaluate several measures at once."""
        validate_measures(measures)
        return {measure.name: self.measure(measure) for measure in measures}

    # --- inspection -----------------------------------------------------------

    def marking_probabilities(
        self, minimum_probability: float = 0.0
    ) -> list[tuple[MarkingView, float]]:
        """(marking, probability) pairs sorted by decreasing probability."""
        pairs = [
            (self.graph.marking_view(state_id), float(probability))
            for state_id, probability in enumerate(self.probabilities)
            if probability >= minimum_probability
        ]
        pairs.sort(key=lambda item: item[1], reverse=True)
        return pairs

    @property
    def number_of_states(self) -> int:
        return self.graph.number_of_states


@dataclass
class TransientSolution(_SolutionBase):
    """Point (instantaneous) solution of a net at a set of time instants."""

    graph: TangibleReachabilityGraph
    times: tuple[float, ...]
    distributions: np.ndarray  # shape (len(times), number_of_states)

    def probability(self, expression: ExpressionLike) -> np.ndarray:
        """``P{expression}`` evaluated at every requested time instant."""
        predicate = self._predicate_vector(expression)
        return np.asarray([
            self._expectation(predicate, distribution)
            for distribution in self.distributions
        ])

    def expected_tokens(self, expression: ExpressionLike) -> np.ndarray:
        """``E{expression}`` evaluated at every requested time instant."""
        values = self._value_vector(expression)
        return np.asarray([
            self._expectation(values, distribution)
            for distribution in self.distributions
        ])


def solve_steady_state(
    net: Union[StochasticPetriNet, CompiledNet, TangibleReachabilityGraph],
    method: str = "auto",
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
) -> SteadyStateSolution:
    """Stationary analysis of a net.

    Args:
        net: a declarative net, a compiled net, or an already-generated
            tangible reachability graph (reused as-is).
        method: stationary solver passed to :func:`repro.markov.solvers.steady_state`.
        max_states: tangible state-space limit for reachability generation.
    """
    graph = _as_graph(net, max_states)
    matrix = generator_matrix(graph)
    if graph.number_of_states == 1:
        probabilities = np.array([1.0])
    else:
        probabilities = solvers.steady_state(matrix, method=method)
    return SteadyStateSolution(graph=graph, probabilities=probabilities)


def solve_transient(
    net: Union[StochasticPetriNet, CompiledNet, TangibleReachabilityGraph],
    times: Iterable[float],
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
) -> TransientSolution:
    """Point (instantaneous) analysis at the requested time instants.

    The initial distribution is the net's initial marking (redistributed over
    tangible markings if it is vanishing).
    """
    graph = _as_graph(net, max_states)
    times = tuple(float(t) for t in times)
    if not times:
        raise AnalysisError("at least one time instant is required")
    matrix = generator_matrix(graph)
    initial = initial_distribution_vector(graph)
    distributions = np.vstack(
        [transient_distribution(matrix, initial, time) for time in times]
    )
    return TransientSolution(graph=graph, times=times, distributions=distributions)


def _as_graph(
    net: Union[StochasticPetriNet, CompiledNet, TangibleReachabilityGraph],
    max_states: int,
) -> TangibleReachabilityGraph:
    if isinstance(net, TangibleReachabilityGraph):
        return net
    return generate_tangible_reachability_graph(net, max_states=max_states)
