"""Measure (reward) definitions for SPN analysis.

The paper expresses its metrics with two operators (Section IV): ``P{exp}``,
the steady-state probability that a boolean expression over the marking
holds, and ``#p``, the number of tokens in place ``p``.  The measures here
cover both, plus transition throughput, and can be evaluated against either
an analytic solution (probability vector over tangible markings) or a
simulation run (time-weighted averages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from repro.exceptions import ExpressionError
from repro.expressions import Expression, compile_expression, parse


@dataclass(frozen=True)
class ProbabilityMeasure:
    """``P{expression}`` — steady-state probability of a marking predicate.

    Example: ``ProbabilityMeasure("availability", "#VM_UP1 + #VM_UP2 >= 2")``.
    """

    name: str
    expression: Union[str, Expression]

    def compiled(self, place_index: Mapping[str, int]):
        predicate = compile_expression(self.expression, place_index)
        return lambda marking: 1.0 if predicate(marking) else 0.0


@dataclass(frozen=True)
class ExpectedTokensMeasure:
    """``E{expression}`` — expected value of a numeric marking expression.

    Example: ``ExpectedTokensMeasure("running_vms", "#VM_UP1 + #VM_UP2")``.
    A bare place name is accepted as shorthand for ``#place``.
    """

    name: str
    expression: Union[str, Expression]

    def compiled(self, place_index: Mapping[str, int]):
        expression = self.expression
        if isinstance(expression, str) and not expression.strip().startswith(("#", "(")):
            candidate = expression.strip()
            if candidate in place_index:
                expression = f"#{candidate}"
        value = compile_expression(expression, place_index)
        return lambda marking: float(value(marking))


@dataclass(frozen=True)
class ThroughputMeasure:
    """Expected firing rate of a timed transition (firings per time unit)."""

    name: str
    transition: str


Measure = Union[ProbabilityMeasure, ExpectedTokensMeasure, ThroughputMeasure]


def availability_measure(expression: Union[str, Expression], name: str = "availability") -> ProbabilityMeasure:
    """Convenience constructor for the paper's availability metric ``P{exp}``."""
    return ProbabilityMeasure(name, expression)


def validate_measures(measures: Sequence[Measure]) -> None:
    """Fail fast on duplicate measure names or unparsable expressions."""
    seen: set[str] = set()
    for measure in measures:
        if measure.name in seen:
            raise ExpressionError(f"duplicate measure name {measure.name!r}")
        seen.add(measure.name)
        if isinstance(measure, (ProbabilityMeasure, ExpectedTokensMeasure)):
            if isinstance(measure.expression, str) and measure.expression.strip().startswith(("#", "(")):
                parse(measure.expression)
