"""Case-study scenarios: city pairs, baselines and distributed configurations.

Section V of the paper evaluates

* three non-distributed baselines (one, two and four machines in a single
  data center), and
* two-data-center deployments for five city pairs — Rio de Janeiro paired
  with Brasília, Recife, New York, Calcutta and Tokyo — with the backup
  server in São Paulo, swept over α ∈ {0.35, 0.40, 0.45} and disaster mean
  time ∈ {100, 200, 300} years.

This module turns those descriptions into ready-to-solve
:class:`~repro.core.cloud_model.CloudSystemModel` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cloud_model import CloudSystemModel
from repro.core.datacenter import single_datacenter_spec, two_datacenter_spec
from repro.core.parameters import (
    ALPHA_VALUES,
    DISASTER_MEAN_TIME_YEARS,
    CaseStudyParameters,
    DEFAULT_PARAMETERS,
)
from repro.exceptions import ConfigurationError
from repro.network.geo import (
    BRASILIA,
    CALCUTTA,
    NEW_YORK,
    RECIFE,
    RIO_DE_JANEIRO,
    SAO_PAULO,
    TOKYO,
    City,
)

#: The five city pairs of the case study (first data center is Rio de Janeiro).
CITY_PAIRS: tuple[tuple[City, City], ...] = (
    (RIO_DE_JANEIRO, BRASILIA),
    (RIO_DE_JANEIRO, RECIFE),
    (RIO_DE_JANEIRO, NEW_YORK),
    (RIO_DE_JANEIRO, CALCUTTA),
    (RIO_DE_JANEIRO, TOKYO),
)

#: Location of the backup server in the case study.
BACKUP_LOCATION: City = SAO_PAULO

#: Baseline α and disaster mean time (the reference bars of Figure 7).
BASELINE_ALPHA = 0.35
BASELINE_DISASTER_YEARS = 100.0


@dataclass(frozen=True)
class DistributedScenario:
    """One two-data-center configuration of the case study.

    Attributes:
        first / second: data-center locations.
        alpha: network-speed coefficient.
        disaster_mean_time_years: mean time between disasters per data center.
        backup: backup-server location.
    """

    first: City
    second: City
    alpha: float = BASELINE_ALPHA
    disaster_mean_time_years: float = BASELINE_DISASTER_YEARS
    backup: City = BACKUP_LOCATION

    @property
    def label(self) -> str:
        """Human-readable identifier used in result tables."""
        return (
            f"{self.first.name} - {self.second.name} "
            f"(alpha={self.alpha:.2f}, disaster={self.disaster_mean_time_years:.0f}y)"
        )

    def build_model(
        self, parameters: Optional[CaseStudyParameters] = None
    ) -> CloudSystemModel:
        """Instantiate the CloudSystemModel for this scenario."""
        base = parameters or DEFAULT_PARAMETERS
        base = base.with_disaster_mean_time(self.disaster_mean_time_years)
        spec = two_datacenter_spec(
            first_location=self.first,
            second_location=self.second,
            backup_location=self.backup,
            machines_per_datacenter=2,
            vms_per_machine=base.vms_per_physical_machine,
            required_running_vms=base.required_running_vms,
        )
        return CloudSystemModel(spec=spec, parameters=base, alpha=self.alpha)


def baseline_distributed_scenarios() -> list[DistributedScenario]:
    """The five baseline architectures of Table VII (α = 0.35, 100-year disasters)."""
    return [DistributedScenario(first, second) for first, second in CITY_PAIRS]


def figure7_scenarios() -> list[DistributedScenario]:
    """The full Figure 7 sweep: 5 city pairs × 3 α values × 3 disaster mean times."""
    scenarios = []
    for first, second in CITY_PAIRS:
        for alpha in ALPHA_VALUES:
            for years in DISASTER_MEAN_TIME_YEARS:
                scenarios.append(
                    DistributedScenario(
                        first=first,
                        second=second,
                        alpha=alpha,
                        disaster_mean_time_years=years,
                    )
                )
    return scenarios


@dataclass(frozen=True)
class SingleDataCenterScenario:
    """A non-distributed baseline of Table VII."""

    machines: int
    label: str
    include_disasters: bool = True
    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)

    def build_model(self) -> CloudSystemModel:
        if self.machines < 1:
            raise ConfigurationError("a baseline needs at least one machine")
        spec = single_datacenter_spec(
            machines=self.machines,
            vms_per_machine=self.parameters.vms_per_physical_machine,
            required_running_vms=self.parameters.required_running_vms,
            location=RIO_DE_JANEIRO,
        )
        return CloudSystemModel(spec=spec, parameters=self.parameters)


def single_datacenter_baselines() -> list[SingleDataCenterScenario]:
    """The three single-site baselines of Table VII."""
    return [
        SingleDataCenterScenario(machines=1, label="Cloud system with one machine"),
        SingleDataCenterScenario(
            machines=2, label="Cloud system with two machines in one data center"
        ),
        SingleDataCenterScenario(
            machines=4, label="Cloud system with four machines in one data center"
        ),
    ]
