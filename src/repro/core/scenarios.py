"""Case-study scenarios: city pairs, baselines and distributed configurations.

Section V of the paper evaluates

* three non-distributed baselines (one, two and four machines in a single
  data center), and
* two-data-center deployments for five city pairs — Rio de Janeiro paired
  with Brasília, Recife, New York, Calcutta and Tokyo — with the backup
  server in São Paulo, swept over α ∈ {0.35, 0.40, 0.45} and disaster mean
  time ∈ {100, 200, 300} years.

This module turns those descriptions into ready-to-solve
:class:`~repro.core.cloud_model.CloudSystemModel` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.cloud_model import CloudSystemModel
from repro.core.datacenter import (
    multi_datacenter_spec,
    single_datacenter_spec,
    two_datacenter_spec,
)
from repro.core.parameters import (
    ALPHA_VALUES,
    DISASTER_MEAN_TIME_YEARS,
    CaseStudyParameters,
    DEFAULT_PARAMETERS,
)
from repro.exceptions import ConfigurationError
from repro.network.geo import (
    BRASILIA,
    CALCUTTA,
    NEW_YORK,
    RECIFE,
    RIO_DE_JANEIRO,
    SAO_PAULO,
    TOKYO,
    City,
)

#: The five city pairs of the case study (first data center is Rio de Janeiro).
CITY_PAIRS: tuple[tuple[City, City], ...] = (
    (RIO_DE_JANEIRO, BRASILIA),
    (RIO_DE_JANEIRO, RECIFE),
    (RIO_DE_JANEIRO, NEW_YORK),
    (RIO_DE_JANEIRO, CALCUTTA),
    (RIO_DE_JANEIRO, TOKYO),
)

#: Location of the backup server in the case study.
BACKUP_LOCATION: City = SAO_PAULO

#: Baseline α and disaster mean time (the reference bars of Figure 7).
BASELINE_ALPHA = 0.35
BASELINE_DISASTER_YEARS = 100.0


def _axis_value(value: float) -> str:
    """Label formatting of a numeric axis value.

    The paper's values render as before (``0.35``, ``100``), but arbitrary
    sweep points keep their full precision — labels double as unique grid
    case names, so rounding two distinct values onto one string (``0.351``
    and ``0.352`` both to ``0.35``) must not happen.
    """
    return f"{value:g}"


@dataclass(frozen=True)
class DistributedScenario:
    """One two-data-center configuration of the case study.

    Attributes:
        first / second: data-center locations.
        alpha: network-speed coefficient.
        disaster_mean_time_years: mean time between disasters per data center.
        backup: backup-server location.
        machines_per_datacenter: hot PMs per data center; ``None`` (the
            default) means "whatever the evaluating runner is configured
            for" and falls back to the paper's 2 when the scenario is built
            stand-alone.  An explicit value is validated by
            :class:`~repro.casestudy.runner.DistributedSweepRunner` against
            its own machine count, so a scenario can never silently evaluate
            on a structure with a different machine count.
    """

    first: City
    second: City
    alpha: float = BASELINE_ALPHA
    disaster_mean_time_years: float = BASELINE_DISASTER_YEARS
    backup: City = BACKUP_LOCATION
    machines_per_datacenter: Optional[int] = None

    def __post_init__(self) -> None:
        if (
            self.machines_per_datacenter is not None
            and self.machines_per_datacenter < 1
        ):
            raise ConfigurationError(
                f"a data center needs at least one machine, got "
                f"{self.machines_per_datacenter!r}"
            )

    @property
    def label(self) -> str:
        """Human-readable identifier used in result tables."""
        extras = [
            f"alpha={_axis_value(self.alpha)}",
            f"disaster={_axis_value(self.disaster_mean_time_years)}y",
        ]
        if self.machines_per_datacenter is not None:
            extras.append(f"machines={self.machines_per_datacenter}")
        return f"{self.first.name} - {self.second.name} ({', '.join(extras)})"

    def build_model(
        self, parameters: Optional[CaseStudyParameters] = None
    ) -> CloudSystemModel:
        """Instantiate the CloudSystemModel for this scenario."""
        base = parameters or DEFAULT_PARAMETERS
        base = base.with_disaster_mean_time(self.disaster_mean_time_years)
        spec = two_datacenter_spec(
            first_location=self.first,
            second_location=self.second,
            backup_location=self.backup,
            machines_per_datacenter=(
                self.machines_per_datacenter
                if self.machines_per_datacenter is not None
                else 2
            ),
            vms_per_machine=base.vms_per_physical_machine,
            required_running_vms=base.required_running_vms,
        )
        return CloudSystemModel(spec=spec, parameters=base, alpha=self.alpha)


def baseline_distributed_scenarios() -> list[DistributedScenario]:
    """The five baseline architectures of Table VII (α = 0.35, 100-year disasters)."""
    return [DistributedScenario(first, second) for first, second in CITY_PAIRS]


def figure7_scenarios() -> list[DistributedScenario]:
    """The full Figure 7 sweep: 5 city pairs × 3 α values × 3 disaster mean times."""
    scenarios = []
    for first, second in CITY_PAIRS:
        for alpha in ALPHA_VALUES:
            for years in DISASTER_MEAN_TIME_YEARS:
                scenarios.append(
                    DistributedScenario(
                        first=first,
                        second=second,
                        alpha=alpha,
                        disaster_mean_time_years=years,
                    )
                )
    return scenarios


@dataclass(frozen=True)
class SingleDataCenterScenario:
    """A non-distributed baseline of Table VII.

    ``disaster_mean_time_years`` (when set) overrides the disaster mean time
    of ``parameters`` — a single site still suffers disasters, so the grid
    sweeps this axis for baselines too.  ``location`` only labels the site
    (a single site has no migration paths).
    """

    machines: int
    label: str
    include_disasters: bool = True
    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    disaster_mean_time_years: Optional[float] = None
    location: City = RIO_DE_JANEIRO

    def build_model(self) -> CloudSystemModel:
        if self.machines < 1:
            raise ConfigurationError("a baseline needs at least one machine")
        parameters = self.parameters
        if self.disaster_mean_time_years is not None:
            parameters = parameters.with_disaster_mean_time(
                self.disaster_mean_time_years
            )
        spec = single_datacenter_spec(
            machines=self.machines,
            vms_per_machine=parameters.vms_per_physical_machine,
            required_running_vms=parameters.required_running_vms,
            location=self.location,
        )
        return CloudSystemModel(spec=spec, parameters=parameters)


@dataclass(frozen=True)
class MultiDataCenterScenario:
    """A geo-distributed deployment over N ≥ 2 data centers.

    Generalises :class:`DistributedScenario` beyond the paper's city pairs:
    any number of locations, a configurable migration topology (full mesh
    or ring), an optional backup server, a per-scenario machine count and
    the paper's ``l`` migration threshold.

    Attributes:
        locations: data-center cities (1-based indices in order).
        alpha: network-speed coefficient.
        disaster_mean_time_years: mean time between disasters per data center.
        backup: backup-server location (ignored when ``has_backup_server``
            is false).
        machines_per_datacenter: hot PMs per data center.
        topology: ``"mesh"`` or ``"ring"`` migration paths.
        minimum_operational_pms: the paper's ``l`` threshold for migrating
            VMs out of a data center.
        has_backup_server: include the backup server and its restoration
            paths.
        uniform_transfer_hours / uniform_backup_hours: bypass the geographic
            transmission-time calculation with one mean transfer (backup)
            time shared by every path — the idealised *homogeneous*
            deployment whose data centers are fully exchangeable, which the
            symmetry machinery lumps ~N!-fold
            (see :meth:`repro.core.cloud_model.CloudSystemModel.symmetry_spec`).
    """

    locations: tuple[City, ...]
    alpha: float = BASELINE_ALPHA
    disaster_mean_time_years: float = BASELINE_DISASTER_YEARS
    backup: Optional[City] = BACKUP_LOCATION
    machines_per_datacenter: int = 2
    topology: str = "mesh"
    minimum_operational_pms: int = 1
    has_backup_server: bool = True
    uniform_transfer_hours: Optional[float] = None
    uniform_backup_hours: Optional[float] = None
    max_in_flight_vms: Optional[int] = None
    capacity_aware_migration: bool = False

    def __post_init__(self) -> None:
        if len(self.locations) < 2:
            raise ConfigurationError(
                "a multi-data-center scenario needs at least two locations; "
                "use SingleDataCenterScenario for one site"
            )
        if self.machines_per_datacenter < 1:
            raise ConfigurationError("each data center needs at least one machine")
        if self.has_backup_server and self.backup is None:
            raise ConfigurationError(
                "a scenario with a backup server needs a backup location"
            )

    @property
    def label(self) -> str:
        """Human-readable identifier used in result tables."""
        cities = " - ".join(city.name for city in self.locations)
        extras = [
            f"alpha={_axis_value(self.alpha)}",
            f"disaster={_axis_value(self.disaster_mean_time_years)}y",
            f"machines={self.machines_per_datacenter}",
        ]
        if len(self.locations) > 2:
            extras.append(f"topology={self.topology}")
        if self.minimum_operational_pms != 1:
            extras.append(f"l={self.minimum_operational_pms}")
        if not self.has_backup_server:
            extras.append("no-backup")
        if self.uniform_transfer_hours is not None:
            extras.append(f"transfer={_axis_value(self.uniform_transfer_hours)}h")
        if self.uniform_backup_hours is not None:
            extras.append(f"backup={_axis_value(self.uniform_backup_hours)}h")
        if self.max_in_flight_vms is not None:
            extras.append(f"in-flight<={self.max_in_flight_vms}")
        if self.capacity_aware_migration:
            extras.append("capacity-aware")
        return f"{cities} ({', '.join(extras)})"

    def build_model(
        self, parameters: Optional[CaseStudyParameters] = None
    ) -> CloudSystemModel:
        """Instantiate the CloudSystemModel for this scenario."""
        base = parameters or DEFAULT_PARAMETERS
        base = base.with_disaster_mean_time(self.disaster_mean_time_years)
        spec = multi_datacenter_spec(
            locations=self.locations,
            backup_location=self.backup if self.has_backup_server else None,
            machines_per_datacenter=self.machines_per_datacenter,
            vms_per_machine=base.vms_per_physical_machine,
            required_running_vms=base.required_running_vms,
            has_backup_server=self.has_backup_server,
        )
        return CloudSystemModel(
            spec=spec,
            parameters=base,
            alpha=self.alpha,
            topology=self.topology,
            minimum_operational_pms=self.minimum_operational_pms,
            uniform_transfer_hours=self.uniform_transfer_hours,
            uniform_backup_hours=self.uniform_backup_hours,
            max_in_flight_vms=self.max_in_flight_vms,
            capacity_aware_migration=self.capacity_aware_migration,
        )


def homogeneous_mesh_scenario(
    datacenters: int,
    machines_per_datacenter: int = 2,
    transfer_hours: float = 0.25,
    backup_hours: Optional[float] = None,
    location: City = RIO_DE_JANEIRO,
    **kwargs,
) -> MultiDataCenterScenario:
    """A fully exchangeable N-data-center mesh (one site replicated N times).

    Every data center carries the same machine pool and every migration path
    the same uniform transfer time, so the deployment is invariant under all
    ``N!`` permutations of its data centers — the configuration where
    symmetry reduction pays the most (an N = 5 mesh only fits the state
    limit lumped).
    """
    return MultiDataCenterScenario(
        locations=(location,) * datacenters,
        machines_per_datacenter=machines_per_datacenter,
        topology="mesh",
        uniform_transfer_hours=transfer_hours,
        uniform_backup_hours=backup_hours,
        **kwargs,
    )


def single_datacenter_baselines() -> list[SingleDataCenterScenario]:
    """The three single-site baselines of Table VII."""
    return [
        SingleDataCenterScenario(machines=1, label="Cloud system with one machine"),
        SingleDataCenterScenario(
            machines=2, label="Cloud system with two machines in one data center"
        ),
        SingleDataCenterScenario(
            machines=4, label="Cloud system with four machines in one data center"
        ),
    ]
