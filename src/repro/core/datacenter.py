"""Deployment specification: physical machines, data centers, cloud system.

Section III of the paper: a cloud system is made of ``d`` data centers, each
with a *hot pool* of ``n`` physical machines actively running VMs and a
*warm pool* of ``m`` physical machines that are powered on but idle; every
PM can host up to a fixed number of VMs; a backup server keeps copies of
every VM image; the system is operational while at least ``k`` VMs run.
These dataclasses describe that deployment and compute the naming scheme
shared by the SPN blocks (``OSPM_i``, ``NAS_NET_d``, ``DC_d``,
``FailedVMS_d``...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.network.geo import City


@dataclass(frozen=True)
class PhysicalMachineSpec:
    """One physical machine of a data center.

    Attributes:
        index: global 1-based index of the PM in the cloud system (used in
            place names such as ``OSPM_UP3`` / ``VM_UP3``).
        datacenter_index: 1-based index of the owning data center.
        vm_capacity: maximum number of VMs the PM can host.
        initial_vms: number of VMs running on the PM at time zero
            (``vm_capacity`` for hot-pool machines, 0 for warm-pool machines).
    """

    index: int
    datacenter_index: int
    vm_capacity: int
    initial_vms: int

    def __post_init__(self) -> None:
        if self.vm_capacity < 1:
            raise ConfigurationError(
                f"PM {self.index}: VM capacity must be at least 1, got {self.vm_capacity!r}"
            )
        if not 0 <= self.initial_vms <= self.vm_capacity:
            raise ConfigurationError(
                f"PM {self.index}: initial VMs must be between 0 and the capacity "
                f"({self.vm_capacity}), got {self.initial_vms!r}"
            )

    @property
    def name(self) -> str:
        """Component label of the PM's SIMPLE_COMPONENT (``OSPM_i``)."""
        return f"OSPM_{self.index}"

    @property
    def is_hot(self) -> bool:
        """Hot-pool machines start with at least one running VM."""
        return self.initial_vms > 0


@dataclass(frozen=True)
class DataCenterSpec:
    """One data center: location, hot pool and warm pool sizes.

    ``vms_per_machine`` is the hosting *capacity* of each PM ("up to two VMs
    per machine" in the paper); ``initial_vms_per_hot_machine`` is how many
    VMs each hot-pool machine runs at time zero (the case study's N = 4 VMs
    over four PMs corresponds to one VM per hot machine).  Warm-pool machines
    start empty.
    """

    index: int
    location: Optional[City] = None
    hot_physical_machines: int = 2
    warm_physical_machines: int = 0
    vms_per_machine: int = 2
    initial_vms_per_hot_machine: int = 1

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ConfigurationError("data-center indices are 1-based")
        if self.hot_physical_machines < 0 or self.warm_physical_machines < 0:
            raise ConfigurationError("pool sizes must be non-negative")
        if self.hot_physical_machines + self.warm_physical_machines < 1:
            raise ConfigurationError(
                f"data center {self.index} needs at least one physical machine"
            )
        if self.vms_per_machine < 1:
            raise ConfigurationError("each machine must be able to host at least one VM")
        if not 1 <= self.initial_vms_per_hot_machine <= self.vms_per_machine:
            raise ConfigurationError(
                f"data center {self.index}: hot machines must start with between 1 and "
                f"{self.vms_per_machine} VMs, got {self.initial_vms_per_hot_machine!r}"
            )

    @property
    def total_physical_machines(self) -> int:
        """``t = n + m`` in the paper's notation."""
        return self.hot_physical_machines + self.warm_physical_machines

    @property
    def name(self) -> str:
        """Component label of the disaster SIMPLE_COMPONENT (``DC_d``)."""
        return f"DC_{self.index}"

    @property
    def network_name(self) -> str:
        """Component label of the network SIMPLE_COMPONENT (``NAS_NET_d``)."""
        return f"NAS_NET_{self.index}"

    @property
    def failed_pool_place(self) -> str:
        """Shared place holding failed VM images awaiting re-instantiation."""
        return f"FailedVMS_{self.index}"


@dataclass(frozen=True)
class CloudSystemSpec:
    """A complete deployment: data centers, backup server and threshold ``k``."""

    datacenters: tuple[DataCenterSpec, ...]
    backup_location: Optional[City] = None
    has_backup_server: bool = True
    required_running_vms: int = 2

    def __post_init__(self) -> None:
        if not self.datacenters:
            raise ConfigurationError("a cloud system needs at least one data center")
        indices = [dc.index for dc in self.datacenters]
        if indices != list(range(1, len(indices) + 1)):
            raise ConfigurationError(
                f"data-center indices must be 1..{len(indices)} in order, got {indices}"
            )
        if self.required_running_vms < 1:
            raise ConfigurationError("at least one running VM must be required")
        if self.required_running_vms > self.total_initial_vms:
            raise ConfigurationError(
                f"the system requires {self.required_running_vms} running VMs but only "
                f"{self.total_initial_vms} VMs exist"
            )

    @property
    def total_initial_vms(self) -> int:
        """Total number of VM images in the system (conserved by the model)."""
        return sum(
            dc.hot_physical_machines * dc.initial_vms_per_hot_machine
            for dc in self.datacenters
        )

    @property
    def physical_machines(self) -> tuple[PhysicalMachineSpec, ...]:
        """Globally indexed PM specifications, hot machines first per data center."""
        machines: list[PhysicalMachineSpec] = []
        next_index = 1
        for dc in self.datacenters:
            for position in range(dc.total_physical_machines):
                is_hot = position < dc.hot_physical_machines
                machines.append(
                    PhysicalMachineSpec(
                        index=next_index,
                        datacenter_index=dc.index,
                        vm_capacity=dc.vms_per_machine,
                        initial_vms=dc.initial_vms_per_hot_machine if is_hot else 0,
                    )
                )
                next_index += 1
        return tuple(machines)

    def machines_of(self, datacenter_index: int) -> tuple[PhysicalMachineSpec, ...]:
        """The PMs belonging to one data center."""
        return tuple(
            pm for pm in self.physical_machines if pm.datacenter_index == datacenter_index
        )

    @property
    def is_distributed(self) -> bool:
        """Whether the deployment spans more than one data center."""
        return len(self.datacenters) > 1


def single_datacenter_spec(
    machines: int = 2,
    vms_per_machine: int = 2,
    required_running_vms: int = 2,
    initial_vms_per_machine: Optional[int] = None,
    location: Optional[City] = None,
    has_backup_server: bool = False,
) -> CloudSystemSpec:
    """Convenience spec for the non-distributed baselines of Table VII.

    ``initial_vms_per_machine`` defaults to one VM per machine, but never
    fewer than needed to satisfy ``required_running_vms`` (e.g. the
    single-machine baseline hosts two VMs so that k = 2 can be met).
    """
    if initial_vms_per_machine is None:
        needed = -(-required_running_vms // machines)  # ceiling division
        initial_vms_per_machine = max(1, needed)
    return CloudSystemSpec(
        datacenters=(
            DataCenterSpec(
                index=1,
                location=location,
                hot_physical_machines=machines,
                warm_physical_machines=0,
                vms_per_machine=vms_per_machine,
                initial_vms_per_hot_machine=initial_vms_per_machine,
            ),
        ),
        backup_location=None,
        has_backup_server=has_backup_server,
        required_running_vms=required_running_vms,
    )


def multi_datacenter_spec(
    locations: Sequence[Optional[City]],
    backup_location: Optional[City] = None,
    machines_per_datacenter: int = 2,
    vms_per_machine: int = 2,
    initial_vms_per_hot_machine: int = 1,
    required_running_vms: int = 2,
    warm_machines_per_datacenter: int = 0,
    has_backup_server: bool = True,
) -> CloudSystemSpec:
    """A geo-distributed deployment over N ≥ 2 data centers.

    One :class:`DataCenterSpec` per entry of ``locations`` (1-based indices
    in order), all sharing the same pool sizes and VM capacity; the
    two-data-center case is exactly :func:`two_datacenter_spec`.
    """
    if len(locations) < 2:
        raise ConfigurationError(
            f"a multi-data-center deployment needs at least two data centers, "
            f"got {len(locations)}"
        )
    return CloudSystemSpec(
        datacenters=tuple(
            DataCenterSpec(
                index=position + 1,
                location=location,
                hot_physical_machines=machines_per_datacenter,
                warm_physical_machines=warm_machines_per_datacenter,
                vms_per_machine=vms_per_machine,
                initial_vms_per_hot_machine=initial_vms_per_hot_machine,
            )
            for position, location in enumerate(locations)
        ),
        backup_location=backup_location if has_backup_server else None,
        has_backup_server=has_backup_server,
        required_running_vms=required_running_vms,
    )


def two_datacenter_spec(
    first_location: Optional[City] = None,
    second_location: Optional[City] = None,
    backup_location: Optional[City] = None,
    machines_per_datacenter: int = 2,
    vms_per_machine: int = 2,
    initial_vms_per_hot_machine: int = 1,
    required_running_vms: int = 2,
    warm_machines_per_datacenter: int = 0,
) -> CloudSystemSpec:
    """Convenience spec for the paper's two-data-center architecture (Figure 6).

    The defaults reproduce the case-study configuration: two data centers,
    two PMs each, up to two VMs per machine, N = 4 VMs in total and k = 2.
    """
    return CloudSystemSpec(
        datacenters=(
            DataCenterSpec(
                index=1,
                location=first_location,
                hot_physical_machines=machines_per_datacenter,
                warm_physical_machines=warm_machines_per_datacenter,
                vms_per_machine=vms_per_machine,
                initial_vms_per_hot_machine=initial_vms_per_hot_machine,
            ),
            DataCenterSpec(
                index=2,
                location=second_location,
                hot_physical_machines=machines_per_datacenter,
                warm_physical_machines=warm_machines_per_datacenter,
                vms_per_machine=vms_per_machine,
                initial_vms_per_hot_machine=initial_vms_per_hot_machine,
            ),
        ),
        backup_location=backup_location,
        has_backup_server=True,
        required_running_vms=required_running_vms,
    )
