"""SPN block: TRANSMISSION_COMPONENT (Figure 4 / Tables IV-V of the paper).

The block models the migration of VM images between two data centers and the
restoration of images by the backup server after a disaster.  Each of the
four paths is an immediate "initiate" transition (``TRI_xy`` / ``TBI_xy``)
that claims an image from the source pool into an in-transfer place, drained
by an exponential "execute" transition (``TRE_xy`` / ``TBE_xy``) whose mean
delay is the corresponding mean time to transmit (Table V):

* ``TRE_12`` / ``TRE_21`` — data-center-to-data-center migration, ``MTT_DCS``;
* ``TBE_12`` — backup server restores images into data center 2, ``MTT_BK2``;
* ``TBE_21`` — backup server restores images into data center 1, ``MTT_BK1``.

Guards follow Table IV: direct migration out of a data center is enabled when
the data center no longer has *l* operational physical machines (the case
study uses ``l = 1``, i.e. migrate only when no PM is operational) and the
destination is healthy; the backup paths are enabled when the backup server
is up, the source data center's network or the data center itself is down
(disaster), and the destination is healthy.  The published table contains two
obvious typos (``#DC_UP2=1`` in TRI_21 and a repeated ``#OSPM_UP1`` in
TBI_21); we use the symmetric forms, as documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.datacenter import DataCenterSpec, PhysicalMachineSpec
from repro.core.vm_behavior import failed_pool_place
from repro.exceptions import ModelError
from repro.spn import StochasticPetriNet


@dataclass(frozen=True)
class TransmissionParameters:
    """Mean times to transmit one VM image (hours, Table V)."""

    datacenter_to_datacenter: float
    backup_to_first: float
    backup_to_second: float

    def __post_init__(self) -> None:
        for label, value in (
            ("MTT_DCS", self.datacenter_to_datacenter),
            ("MTT_BK1", self.backup_to_first),
            ("MTT_BK2", self.backup_to_second),
        ):
            if value <= 0.0:
                raise ModelError(f"{label} must be positive, got {value!r}")


def transfer_place(source_dc: int, target_dc: int) -> str:
    """In-transfer place of the direct migration path ``source -> target``."""
    return f"TRF_{source_dc}{target_dc}"


def backup_transfer_place(source_dc: int, target_dc: int) -> str:
    """In-transfer place of the backup restoration path ``source -> target``."""
    return f"TBF_{source_dc}{target_dc}"


def _operational_pms_expression(machines: Sequence[PhysicalMachineSpec]) -> str:
    return "(" + " + ".join(f"#OSPM_{pm.index}_UP" for pm in machines) + ")"


def source_exhausted_guard(
    machines: Sequence[PhysicalMachineSpec], minimum_operational_pms: int
) -> str:
    """The source data center has fewer than ``l`` operational PMs."""
    return f"{_operational_pms_expression(machines)} < {minimum_operational_pms}"


def destination_healthy_guard(
    datacenter: DataCenterSpec, machines: Sequence[PhysicalMachineSpec]
) -> str:
    """The destination can actually receive and run migrated VMs (Table IV)."""
    return (
        f"NOT ({_operational_pms_expression(machines)} = 0 "
        f"OR #NAS_NET_{datacenter.index}_UP = 0 OR #DC_{datacenter.index}_UP = 0)"
    )


def source_disaster_guard(datacenter: DataCenterSpec) -> str:
    """The source data center's network or the data center itself is down."""
    return f"(#NAS_NET_{datacenter.index}_UP = 0 OR #DC_{datacenter.index}_UP = 0)"


def build_transmission_component(
    first: DataCenterSpec,
    second: DataCenterSpec,
    first_machines: Sequence[PhysicalMachineSpec],
    second_machines: Sequence[PhysicalMachineSpec],
    parameters: TransmissionParameters,
    has_backup_server: bool = True,
    minimum_operational_pms: int = 1,
) -> StochasticPetriNet:
    """Build the TRANSMISSION_COMPONENT between two data centers.

    Args:
        first / second: the two data-center specifications.
        first_machines / second_machines: the PMs of each data center (their
            global indices appear in the guard expressions).
        parameters: the three MTT values.
        has_backup_server: include the two backup restoration paths (requires
            a ``BKP`` SIMPLE_COMPONENT in the final composed model).
        minimum_operational_pms: the paper's ``l`` — VMs leave a data center
            when fewer than ``l`` of its PMs are operational.

    The block references the ``OSPM_*_UP``, ``NAS_NET_*_UP``, ``DC_*_UP`` and
    ``BKP_UP`` places of the SIMPLE_COMPONENT blocks and the ``FailedVMS_*``
    pools of the VM_BEHAVIOR blocks; composition happens via
    :func:`repro.spn.merge`.
    """
    if first.index == second.index:
        raise ModelError("a transmission component connects two distinct data centers")
    if minimum_operational_pms < 1:
        raise ModelError(
            f"the migration threshold l must be at least 1, got {minimum_operational_pms!r}"
        )
    net = StochasticPetriNet(f"TRANSMISSION_{first.index}{second.index}")

    net.add_place(failed_pool_place(first.index))
    net.add_place(failed_pool_place(second.index))

    _add_direct_path(
        net, first, second, first_machines, second_machines,
        parameters.datacenter_to_datacenter, minimum_operational_pms,
    )
    _add_direct_path(
        net, second, first, second_machines, first_machines,
        parameters.datacenter_to_datacenter, minimum_operational_pms,
    )
    if has_backup_server:
        _add_backup_path(
            net, first, second, second_machines, parameters.backup_to_second
        )
        _add_backup_path(
            net, second, first, first_machines, parameters.backup_to_first
        )
    return net


def _add_direct_path(
    net: StochasticPetriNet,
    source: DataCenterSpec,
    target: DataCenterSpec,
    source_machines: Sequence[PhysicalMachineSpec],
    target_machines: Sequence[PhysicalMachineSpec],
    mean_transfer_time: float,
    minimum_operational_pms: int,
) -> None:
    """Direct data-center-to-data-center migration (TRI_xy + TRE_xy)."""
    suffix = f"{source.index}{target.index}"
    in_transfer = transfer_place(source.index, target.index)
    net.add_place(in_transfer)
    guard = (
        f"({source_exhausted_guard(source_machines, minimum_operational_pms)}) "
        f"AND ({destination_healthy_guard(target, target_machines)}) "
        f"AND (#DC_{source.index}_UP > 0) AND (#NAS_NET_{source.index}_UP > 0)"
    )
    net.add_immediate_transition(f"TRI_{suffix}", guard=guard)
    net.add_input_arc(failed_pool_place(source.index), f"TRI_{suffix}")
    net.add_output_arc(f"TRI_{suffix}", in_transfer)
    net.add_timed_transition(f"TRE_{suffix}", delay=mean_transfer_time, semantics="ss")
    net.add_input_arc(in_transfer, f"TRE_{suffix}")
    net.add_output_arc(f"TRE_{suffix}", failed_pool_place(target.index))


def _add_backup_path(
    net: StochasticPetriNet,
    source: DataCenterSpec,
    target: DataCenterSpec,
    target_machines: Sequence[PhysicalMachineSpec],
    mean_transfer_time: float,
) -> None:
    """Backup-server restoration of ``source``'s images into ``target``."""
    suffix = f"{source.index}{target.index}"
    in_transfer = backup_transfer_place(source.index, target.index)
    net.add_place(in_transfer)
    guard = (
        f"#BKP_UP = 1 AND ({source_disaster_guard(source)}) "
        f"AND ({destination_healthy_guard(target, target_machines)})"
    )
    net.add_immediate_transition(f"TBI_{suffix}", guard=guard)
    net.add_input_arc(failed_pool_place(source.index), f"TBI_{suffix}")
    net.add_output_arc(f"TBI_{suffix}", in_transfer)
    net.add_timed_transition(f"TBE_{suffix}", delay=mean_transfer_time, semantics="ss")
    net.add_input_arc(in_transfer, f"TBE_{suffix}")
    net.add_output_arc(f"TBE_{suffix}", failed_pool_place(target.index))
