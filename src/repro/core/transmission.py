"""SPN block: TRANSMISSION_COMPONENT (Figure 4 / Tables IV-V of the paper).

The block models the migration of VM images between two data centers and the
restoration of images by the backup server after a disaster.  Each of the
four paths is an immediate "initiate" transition (``TRI_xy`` / ``TBI_xy``)
that claims an image from the source pool into an in-transfer place, drained
by an exponential "execute" transition (``TRE_xy`` / ``TBE_xy``) whose mean
delay is the corresponding mean time to transmit (Table V):

* ``TRE_12`` / ``TRE_21`` — data-center-to-data-center migration, ``MTT_DCS``;
* ``TBE_12`` — backup server restores images into data center 2, ``MTT_BK2``;
* ``TBE_21`` — backup server restores images into data center 1, ``MTT_BK1``.

Guards follow Table IV: direct migration out of a data center is enabled when
the data center no longer has *l* operational physical machines (the case
study uses ``l = 1``, i.e. migrate only when no PM is operational) and the
destination is healthy; the backup paths are enabled when the backup server
is up, the source data center's network or the data center itself is down
(disaster), and the destination is healthy.  The published table contains two
obvious typos (``#DC_UP2=1`` in TRI_21 and a repeated ``#OSPM_UP1`` in
TBI_21); we use the symmetric forms, as documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.datacenter import DataCenterSpec, PhysicalMachineSpec
from repro.core.vm_behavior import failed_pool_place, hosted_vms_expression
from repro.exceptions import ModelError
from repro.spn import StochasticPetriNet

#: Recognised migration topologies of :func:`build_transmission_network`.
TOPOLOGIES = ("mesh", "ring")


def topology_pairs(count: int, topology: str = "mesh") -> tuple[tuple[int, int], ...]:
    """Ordered data-center index pairs connected by a migration path.

    ``mesh`` connects every ordered pair; ``ring`` only neighbours on the
    cycle ``1 → 2 → … → count → 1`` (both directions).  Indices are the
    1-based data-center indices of :class:`~repro.core.datacenter.
    DataCenterSpec`.  For two data centers both topologies reduce to the
    paper's pair of direct paths.
    """
    if count < 2:
        raise ModelError(f"a migration topology needs at least two data centers, got {count}")
    if topology == "mesh":
        return tuple(
            (i, j)
            for i in range(1, count + 1)
            for j in range(1, count + 1)
            if i != j
        )
    if topology == "ring":
        pairs: list[tuple[int, int]] = []
        for i in range(1, count + 1):
            j = i % count + 1
            for pair in ((i, j), (j, i)):
                if pair not in pairs:
                    pairs.append(pair)
        return tuple(pairs)
    raise ModelError(f"unknown topology {topology!r}; expected one of {TOPOLOGIES}")


@dataclass(frozen=True)
class TransmissionParameters:
    """Mean times to transmit one VM image (hours, Table V)."""

    datacenter_to_datacenter: float
    backup_to_first: float
    backup_to_second: float

    def __post_init__(self) -> None:
        for label, value in (
            ("MTT_DCS", self.datacenter_to_datacenter),
            ("MTT_BK1", self.backup_to_first),
            ("MTT_BK2", self.backup_to_second),
        ):
            if value <= 0.0:
                raise ModelError(f"{label} must be positive, got {value!r}")


def transfer_place(source_dc: int, target_dc: int) -> str:
    """In-transfer place of the direct migration path ``source -> target``."""
    return f"TRF_{source_dc}{target_dc}"


def backup_transfer_place(source_dc: int, target_dc: int) -> str:
    """In-transfer place of the backup restoration path ``source -> target``."""
    return f"TBF_{source_dc}{target_dc}"


def _operational_pms_expression(machines: Sequence[PhysicalMachineSpec]) -> str:
    return "(" + " + ".join(f"#OSPM_{pm.index}_UP" for pm in machines) + ")"


def source_exhausted_guard(
    machines: Sequence[PhysicalMachineSpec], minimum_operational_pms: int
) -> str:
    """The source data center has fewer than ``l`` operational PMs."""
    return f"{_operational_pms_expression(machines)} < {minimum_operational_pms}"


def destination_healthy_guard(
    datacenter: DataCenterSpec, machines: Sequence[PhysicalMachineSpec]
) -> str:
    """The destination can actually receive and run migrated VMs (Table IV)."""
    return (
        f"NOT ({_operational_pms_expression(machines)} = 0 "
        f"OR #NAS_NET_{datacenter.index}_UP = 0 OR #DC_{datacenter.index}_UP = 0)"
    )


def source_disaster_guard(datacenter: DataCenterSpec) -> str:
    """The source data center's network or the data center itself is down."""
    return f"(#NAS_NET_{datacenter.index}_UP = 0 OR #DC_{datacenter.index}_UP = 0)"


def build_transmission_component(
    first: DataCenterSpec,
    second: DataCenterSpec,
    first_machines: Sequence[PhysicalMachineSpec],
    second_machines: Sequence[PhysicalMachineSpec],
    parameters: TransmissionParameters,
    has_backup_server: bool = True,
    minimum_operational_pms: int = 1,
) -> StochasticPetriNet:
    """Build the TRANSMISSION_COMPONENT between two data centers.

    Args:
        first / second: the two data-center specifications.
        first_machines / second_machines: the PMs of each data center (their
            global indices appear in the guard expressions).
        parameters: the three MTT values.
        has_backup_server: include the two backup restoration paths (requires
            a ``BKP`` SIMPLE_COMPONENT in the final composed model).
        minimum_operational_pms: the paper's ``l`` — VMs leave a data center
            when fewer than ``l`` of its PMs are operational.

    The block references the ``OSPM_*_UP``, ``NAS_NET_*_UP``, ``DC_*_UP`` and
    ``BKP_UP`` places of the SIMPLE_COMPONENT blocks and the ``FailedVMS_*``
    pools of the VM_BEHAVIOR blocks; composition happens via
    :func:`repro.spn.merge`.
    """
    if first.index == second.index:
        raise ModelError("a transmission component connects two distinct data centers")
    direct = parameters.datacenter_to_datacenter
    return build_transmission_network(
        datacenters=(first, second),
        machines={first.index: first_machines, second.index: second_machines},
        direct_times={
            (first.index, second.index): direct,
            (second.index, first.index): direct,
        },
        backup_times={
            first.index: parameters.backup_to_first,
            second.index: parameters.backup_to_second,
        },
        has_backup_server=has_backup_server,
        minimum_operational_pms=minimum_operational_pms,
    )


def build_transmission_network(
    datacenters: Sequence[DataCenterSpec],
    machines: Mapping[int, Sequence[PhysicalMachineSpec]],
    direct_times: Mapping[tuple[int, int], float],
    backup_times: Mapping[int, float],
    topology: str = "mesh",
    has_backup_server: bool = True,
    minimum_operational_pms: int = 1,
    max_in_flight_vms: Optional[int] = None,
    capacity_aware_migration: bool = False,
) -> StochasticPetriNet:
    """Build the migration network of an N-data-center deployment (N ≥ 2).

    Generalises the paper's two-data-center TRANSMISSION_COMPONENT: one
    direct migration path (``TRI_ij``/``TRE_ij``) per ordered data-center
    pair of the ``topology`` (full mesh or ring), and — with a backup
    server — one restoration path (``TBI_ij``/``TBE_ij``) per ordered pair
    of *all* data centers, enabled when data center ``i`` suffered a
    disaster and ``j`` is healthy.  Restoration always spans every pair
    because it flows over the backup server's own links (a star), not the
    inter-data-center migration links the ``topology`` restricts.

    Args:
        datacenters: every data center of the deployment, in index order.
        machines: the PMs of each data center, keyed by its 1-based index.
        direct_times: mean time (hours) to transmit one VM image between
            each connected ordered pair ``(i, j)``.
        backup_times: mean time (hours) to restore one VM image from the
            backup server *into* data center ``j``, keyed by ``j``.
        topology: ``"mesh"`` (every ordered pair) or ``"ring"`` (cycle
            neighbours only); for two data centers both reduce to the
            paper's layout.
        has_backup_server / minimum_operational_pms: as in
            :func:`build_transmission_component`.
        max_in_flight_vms: WAN admission control — when set, every initiate
            transition additionally requires fewer than this many VM images
            in transit across *all* migration and restoration paths
            combined.  The cap bounds the in-flight state space (its growth
            in N dominates large meshes) and, being a sum over every
            in-transfer place, is invariant under any permutation of the
            data centers, so it composes with the symmetry lumping.
        capacity_aware_migration: destination admission control — migrate
            into data center ``j`` only while its hosting capacity has room
            for one more image, counting images already bound to its PMs,
            pooled locally and inbound in flight.  The paper's model happily
            migrates into full data centers and lets images pile up in the
            destination pool, which makes per-data-center image counts (and
            the state space) grow with the *total* VM population; with
            admission each data center invariantly holds at most its own
            capacity.  The guard sums over all inbound paths uniformly, so
            it too commutes with data-center permutations.

    For two data centers the emitted net is structurally identical (same
    places, transitions, guards and emission order) to
    :func:`build_transmission_component`, which delegates here.
    """
    if minimum_operational_pms < 1:
        raise ModelError(
            f"the migration threshold l must be at least 1, got {minimum_operational_pms!r}"
        )
    by_index = {dc.index: dc for dc in datacenters}
    if len(by_index) != len(datacenters):
        raise ModelError("data-center indices of a migration network must be unique")
    # topology_pairs works over 1..N positions; map them onto the actual
    # (possibly non-contiguous) data-center indices in sequence order.
    indices = [dc.index for dc in datacenters]
    pairs = [
        (indices[i - 1], indices[j - 1])
        for i, j in topology_pairs(len(datacenters), topology)
    ]
    backup_pairs = [(i, j) for i in indices for j in indices if i != j]
    for i, j in pairs:
        if (i, j) not in direct_times:
            raise ModelError(f"no direct transfer time given for the pair ({i}, {j})")
        if direct_times[(i, j)] <= 0.0:
            raise ModelError(
                f"the transfer time of the pair ({i}, {j}) must be positive, "
                f"got {direct_times[(i, j)]!r}"
            )
    if has_backup_server:
        for j in indices:
            if j not in backup_times:
                raise ModelError(f"no backup restoration time given for data center {j}")
            if backup_times[j] <= 0.0:
                raise ModelError(
                    f"the backup restoration time of data center {j} must be "
                    f"positive, got {backup_times[j]!r}"
                )

    if max_in_flight_vms is not None and max_in_flight_vms < 1:
        raise ModelError(
            f"max_in_flight_vms must be at least 1, got {max_in_flight_vms!r}"
        )
    in_flight_guard = None
    if max_in_flight_vms is not None:
        in_transfer_places = [transfer_place(i, j) for i, j in pairs]
        if has_backup_server:
            in_transfer_places.extend(
                backup_transfer_place(i, j) for i, j in backup_pairs
            )
        total = " + ".join(f"#{name}" for name in in_transfer_places)
        in_flight_guard = f"({total}) < {max_in_flight_vms}"
    admission_guards: dict[int, str] = {}
    if capacity_aware_migration:
        for j in indices:
            bound = [hosted_vms_expression(pm.index) for pm in machines[j]]
            bound.append(f"#{failed_pool_place(j)}")
            bound.extend(f"#{transfer_place(k, j)}" for k, t in pairs if t == j)
            if has_backup_server:
                bound.extend(
                    f"#{backup_transfer_place(k, j)}" for k in indices if k != j
                )
            capacity = sum(pm.vm_capacity for pm in machines[j])
            admission_guards[j] = f"({' + '.join(bound)}) < {capacity}"

    suffix = "".join(str(dc.index) for dc in datacenters)
    net = StochasticPetriNet(f"TRANSMISSION_{suffix}")
    for datacenter in datacenters:
        net.add_place(failed_pool_place(datacenter.index))

    def extra_guard(j: int) -> Optional[str]:
        parts = [
            part
            for part in (in_flight_guard, admission_guards.get(j))
            if part is not None
        ]
        return " AND ".join(f"({part})" for part in parts) if parts else None

    for i, j in pairs:
        _add_direct_path(
            net, by_index[i], by_index[j], machines[i], machines[j],
            direct_times[(i, j)], minimum_operational_pms,
            in_flight_guard=extra_guard(j),
        )
    if has_backup_server:
        for i, j in backup_pairs:
            _add_backup_path(
                net, by_index[i], by_index[j], machines[j], backup_times[j],
                in_flight_guard=extra_guard(j),
            )
    return net


def _add_direct_path(
    net: StochasticPetriNet,
    source: DataCenterSpec,
    target: DataCenterSpec,
    source_machines: Sequence[PhysicalMachineSpec],
    target_machines: Sequence[PhysicalMachineSpec],
    mean_transfer_time: float,
    minimum_operational_pms: int,
    in_flight_guard: Optional[str] = None,
) -> None:
    """Direct data-center-to-data-center migration (TRI_xy + TRE_xy)."""
    suffix = f"{source.index}{target.index}"
    in_transfer = transfer_place(source.index, target.index)
    net.add_place(in_transfer)
    guard = (
        f"({source_exhausted_guard(source_machines, minimum_operational_pms)}) "
        f"AND ({destination_healthy_guard(target, target_machines)}) "
        f"AND (#DC_{source.index}_UP > 0) AND (#NAS_NET_{source.index}_UP > 0)"
    )
    if in_flight_guard is not None:
        guard = f"{guard} AND ({in_flight_guard})"
    net.add_immediate_transition(f"TRI_{suffix}", guard=guard)
    net.add_input_arc(failed_pool_place(source.index), f"TRI_{suffix}")
    net.add_output_arc(f"TRI_{suffix}", in_transfer)
    net.add_timed_transition(f"TRE_{suffix}", delay=mean_transfer_time, semantics="ss")
    net.add_input_arc(in_transfer, f"TRE_{suffix}")
    net.add_output_arc(f"TRE_{suffix}", failed_pool_place(target.index))


def _add_backup_path(
    net: StochasticPetriNet,
    source: DataCenterSpec,
    target: DataCenterSpec,
    target_machines: Sequence[PhysicalMachineSpec],
    mean_transfer_time: float,
    in_flight_guard: Optional[str] = None,
) -> None:
    """Backup-server restoration of ``source``'s images into ``target``."""
    suffix = f"{source.index}{target.index}"
    in_transfer = backup_transfer_place(source.index, target.index)
    net.add_place(in_transfer)
    guard = (
        f"#BKP_UP = 1 AND ({source_disaster_guard(source)}) "
        f"AND ({destination_healthy_guard(target, target_machines)})"
    )
    if in_flight_guard is not None:
        guard = f"{guard} AND ({in_flight_guard})"
    net.add_immediate_transition(f"TBI_{suffix}", guard=guard)
    net.add_input_arc(failed_pool_place(source.index), f"TBI_{suffix}")
    net.add_output_arc(f"TBI_{suffix}", in_transfer)
    net.add_timed_transition(f"TBE_{suffix}", delay=mean_transfer_time, semantics="ss")
    net.add_input_arc(in_transfer, f"TBE_{suffix}")
    net.add_output_arc(f"TBE_{suffix}", failed_pool_place(target.index))
