"""Assembly and evaluation of the full cloud-system SPN (Figure 6).

``CloudSystemModel`` glues together every block of Section IV for an
arbitrary :class:`~repro.core.datacenter.CloudSystemSpec`:

* one ``DC_d`` (disaster) and one ``NAS_NET_d`` SIMPLE_COMPONENT per data
  center, the latter parameterised by the NAS_NET RBD of the hierarchical
  step;
* one ``OSPM_i`` SIMPLE_COMPONENT per physical machine, parameterised by the
  OS_PM RBD;
* one VM_BEHAVIOR block per physical machine;
* one ``BKP`` SIMPLE_COMPONENT plus one TRANSMISSION_COMPONENT per ordered
  pair of data centers (two-data-center systems);

and evaluates the paper's availability metric
``P{Σ_i #VM_UP_i ≥ k}`` analytically (reachability graph + CTMC) or by
simulation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.components import build_simple_component
from repro.core.datacenter import CloudSystemSpec
from repro.core.hierarchical import HierarchicalParameters
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.core.transmission import build_transmission_network, topology_pairs
from repro.core.vm_behavior import VmBehaviorParameters, build_vm_behavior, vm_up_place
from repro.exceptions import ConfigurationError
from repro.metrics import AvailabilityResult
from repro.network.migration import MigrationPlanner, MigrationTimes
from repro.network.throughput import ThroughputModel
from repro.spn import (
    ProbabilityMeasure,
    SimulationResult,
    StochasticPetriNet,
    merge,
    simulate,
    solve_steady_state,
)
from repro.spn.analysis import SteadyStateSolution


@dataclass
class CloudSystemModel:
    """The paper's hierarchical dependability model of one deployment.

    Attributes:
        spec: deployment description (data centers, pools, threshold k).
        parameters: component / disaster / VM parameters (Table VI + Section V).
        alpha: network-speed coefficient used to derive migration times; only
            needed for distributed deployments.
        migration_times: explicit MTT values; when ``None`` they are computed
            from the data-center locations, the backup location and ``alpha``.
        minimum_operational_pms: the paper's ``l`` threshold for leaving a
            data center.
    """

    spec: CloudSystemSpec
    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    alpha: Optional[float] = None
    migration_times: Optional[MigrationTimes] = None
    minimum_operational_pms: int = 1
    throughput_model: ThroughputModel = field(default_factory=ThroughputModel)
    #: Migration topology for deployments with more than two data centers
    #: (``"mesh"`` or ``"ring"``); two data centers always form the paper's
    #: symmetric pair of paths.
    topology: str = "mesh"

    def __post_init__(self) -> None:
        if len(self.spec.datacenters) > 2 and self.migration_times is not None:
            raise ConfigurationError(
                "explicit MigrationTimes describe a two-data-center deployment; "
                f"deployments with {len(self.spec.datacenters)} data centers "
                "derive per-pair times from locations and alpha"
            )
        if self.spec.is_distributed and self.migration_times is None:
            self._require_locations()
        self._hierarchical = HierarchicalParameters.from_components(
            self.parameters.components
        )
        self._net: Optional[StochasticPetriNet] = None

    # --- assembly ---------------------------------------------------------

    @property
    def hierarchical_parameters(self) -> HierarchicalParameters:
        """Equivalent MTTF/MTTR of the RBD lower level (OS_PM and NAS_NET)."""
        return self._hierarchical

    def resolved_migration_times(self) -> Optional[MigrationTimes]:
        """The MTT values actually used (computed from geography if needed)."""
        if not self.spec.is_distributed:
            return None
        if self.migration_times is not None:
            return self.migration_times
        planner = MigrationPlanner(
            vm_image_size=self.parameters.vm_image_size,
            throughput_model=self.throughput_model,
        )
        first, second = self.spec.datacenters
        if self.spec.has_backup_server:
            return planner.migration_times(
                first.location, second.location, self.spec.backup_location, self.alpha
            )
        # Without a backup server only the direct path exists; the backup
        # fields are placeholders that never parameterise a transition.
        direct = planner.transfer_time(first.location, second.location, self.alpha)
        return MigrationTimes(
            datacenter_to_datacenter=direct,
            backup_to_first=direct,
            backup_to_second=direct,
        )

    def resolved_transmission_times(
        self,
    ) -> tuple[dict[tuple[int, int], float], dict[int, float]]:
        """Per-pair direct and per-destination backup MTTs (hours).

        For two data centers this is :meth:`resolved_migration_times` (so
        explicit ``migration_times`` keep working); for N > 2 every
        topology pair gets its own distance/α-derived transfer time and
        every data center its own backup restoration time.
        """
        datacenters = self.spec.datacenters
        if len(datacenters) == 2:
            times = self.resolved_migration_times()
            first, second = datacenters
            direct = times.datacenter_to_datacenter.hours
            return (
                {
                    (first.index, second.index): direct,
                    (second.index, first.index): direct,
                },
                {
                    first.index: times.backup_to_first.hours,
                    second.index: times.backup_to_second.hours,
                },
            )
        planner = MigrationPlanner(
            vm_image_size=self.parameters.vm_image_size,
            throughput_model=self.throughput_model,
        )
        by_index = {dc.index: dc for dc in datacenters}
        direct_times = {
            (i, j): planner.transfer_time(
                by_index[i].location, by_index[j].location, self.alpha
            ).hours
            for i, j in topology_pairs(len(datacenters), self.topology)
        }
        if not self.spec.has_backup_server:
            return direct_times, {}
        backup_times = {
            dc.index: planner.transfer_time(
                self.spec.backup_location, dc.location, self.alpha
            ).hours
            for dc in datacenters
        }
        return direct_times, backup_times

    def build(self) -> StochasticPetriNet:
        """Assemble (and cache) the full SPN of the deployment."""
        if self._net is not None:
            return self._net
        blocks: list[StochasticPetriNet] = []
        vm_parameters = VmBehaviorParameters(
            vm_mttf=self.parameters.components.virtual_machine.mttf_hours,
            vm_mttr=self.parameters.components.virtual_machine.mttr_hours,
            vm_start_time=self.parameters.vm_start_time.hours,
        )

        for datacenter in self.spec.datacenters:
            blocks.append(
                build_simple_component(
                    datacenter.name,
                    mttf=self.parameters.disaster.mean_time_to_disaster.hours,
                    mttr=self.parameters.disaster.recovery_time.hours,
                )
            )
            blocks.append(
                build_simple_component(
                    datacenter.network_name,
                    mttf=self._hierarchical.nas_net.mttf,
                    mttr=self._hierarchical.nas_net.mttr,
                )
            )
            for machine in self.spec.machines_of(datacenter.index):
                blocks.append(
                    build_simple_component(
                        machine.name,
                        mttf=self._hierarchical.os_pm.mttf,
                        mttr=self._hierarchical.os_pm.mttr,
                    )
                )
                blocks.append(build_vm_behavior(machine, datacenter, vm_parameters))

        if self.spec.is_distributed:
            if self.spec.has_backup_server:
                blocks.append(
                    build_simple_component(
                        "BKP",
                        mttf=self.parameters.components.backup_server.mttf_hours,
                        mttr=self.parameters.components.backup_server.mttr_hours,
                    )
                )
            direct_times, backup_times = self.resolved_transmission_times()
            blocks.append(
                build_transmission_network(
                    self.spec.datacenters,
                    {
                        dc.index: self.spec.machines_of(dc.index)
                        for dc in self.spec.datacenters
                    },
                    direct_times,
                    backup_times,
                    topology=self.topology,
                    has_backup_server=self.spec.has_backup_server,
                    minimum_operational_pms=self.minimum_operational_pms,
                )
            )

        self._net = merge(self._model_name(), blocks)
        return self._net

    def _model_name(self) -> str:
        locations = [
            dc.location.name if dc.location is not None else f"DC{dc.index}"
            for dc in self.spec.datacenters
        ]
        return "CLOUD_" + "_".join(name.replace(" ", "") for name in locations)

    def _require_locations(self) -> None:
        if self.alpha is None:
            raise ConfigurationError(
                "a distributed deployment needs either explicit migration_times or "
                "an alpha value to derive them"
            )
        for datacenter in self.spec.datacenters:
            if datacenter.location is None:
                raise ConfigurationError(
                    f"data center {datacenter.index} has no location; distributed "
                    "deployments need locations (or explicit migration_times)"
                )
        if self.spec.has_backup_server and self.spec.backup_location is None:
            raise ConfigurationError(
                "the deployment includes a backup server but no backup location was given"
            )

    # --- metrics -------------------------------------------------------------

    def availability_expression(self, required_running_vms: Optional[int] = None) -> str:
        """The paper's availability predicate ``Σ #VM_UP_i ≥ k``."""
        k = required_running_vms or self.spec.required_running_vms
        total = " + ".join(
            f"#{vm_up_place(machine.index)}" for machine in self.spec.physical_machines
        )
        return f"({total}) >= {k}"

    def availability_measure(self, name: str = "availability") -> ProbabilityMeasure:
        """Availability as a measure object (usable by analysis and simulation)."""
        return ProbabilityMeasure(name, self.availability_expression())

    def symmetry_groups(self) -> list[list[list[int]]]:
        """Per-data-center groups of exchangeable per-PM place indices.

        One group per data center with ≥ 2 machines; each group holds one
        place-index profile per machine (OSPM up/down plus the four VM
        places).  The groups fully determine the symmetry canonicalizer and
        are plain nested lists, so they travel through pickle to worker
        processes (see :func:`pm_symmetry_canonicalizer`).
        """
        net = self.build()
        place_index = {name: i for i, name in enumerate(net.place_names)}
        groups: list[list[list[int]]] = []
        for datacenter in self.spec.datacenters:
            machines = self.spec.machines_of(datacenter.index)
            if len(machines) < 2:
                continue
            profiles = []
            for machine in machines:
                i = machine.index
                profiles.append(
                    [
                        place_index[f"OSPM_{i}_UP"],
                        place_index[f"OSPM_{i}_DOWN"],
                        place_index[f"VM_UP_{i}"],
                        place_index[f"VM_DOWN_{i}"],
                        place_index[f"VM_RDY_{i}"],
                        place_index[f"VM_STRTD_{i}"],
                    ]
                )
            groups.append(profiles)
        return groups

    def symmetry_canonicalizer(self):
        """Marking canonicalizer exploiting the exchangeability of PMs in a DC.

        Physical machines of the same data center are stochastically
        identical (same OS_PM parameters, same VM capacity), so the model is
        invariant under permuting a PM's places together with its VM places.
        The returned function maps a marking to the representative of its
        orbit (per-PM state vectors sorted within each data center), which
        lets the reachability generator build the exactly lumped — and much
        smaller — CTMC.  All metrics exposed by this class (availability,
        expected running VMs) are symmetric under those permutations and
        therefore unaffected by the lumping.
        """
        groups = self.symmetry_groups()
        if not groups:
            return None
        return pm_symmetry_canonicalizer(groups)

    def solve(
        self,
        method: str = "auto",
        max_states: int = 500_000,
        symmetry_reduction: bool = False,
    ) -> SteadyStateSolution:
        """Generate the tangible state space and solve the underlying CTMC.

        Args:
            method: stationary solver (see :func:`repro.markov.solvers.steady_state`).
            max_states: tangible state-space limit.
            symmetry_reduction: exploit the exchangeability of the PMs within
                each data center to solve the exactly lumped CTMC instead of
                the full one (recommended for the two-data-center case-study
                configuration, whose full state space has ~1.3 × 10⁵ states).
        """
        from repro.spn.reachability import generate_tangible_reachability_graph

        canonicalize = self.symmetry_canonicalizer() if symmetry_reduction else None
        graph = generate_tangible_reachability_graph(
            self.build(), max_states=max_states, canonicalize=canonicalize
        )
        return solve_steady_state(graph, method=method)

    def availability(
        self,
        method: str = "auto",
        solution: Optional[SteadyStateSolution] = None,
    ) -> AvailabilityResult:
        """Steady-state availability ``P{Σ #VM_UP_i ≥ k}`` of the deployment."""
        if solution is None:
            solution = self.solve(method=method)
        value = solution.probability(self.availability_expression())
        return AvailabilityResult(min(1.0, max(0.0, value)), label=self._model_name())

    def expected_running_vms(
        self, solution: Optional[SteadyStateSolution] = None
    ) -> float:
        """Expected number of running VMs ``E{Σ #VM_UP_i}``."""
        if solution is None:
            solution = self.solve()
        total = " + ".join(
            f"#{vm_up_place(machine.index)}" for machine in self.spec.physical_machines
        )
        return solution.expected_tokens(f"({total})")

    def simulate_availability(
        self,
        horizon: float = 1_000_000.0,
        replications: int = 5,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        """Monte-Carlo estimate of the availability (cross-validation path)."""
        return simulate(
            self.build(),
            [self.availability_measure()],
            horizon=horizon,
            replications=replications,
            seed=seed,
        )


def pm_symmetry_canonicalizer(groups):
    """Build the PM-exchange canonicalizer from precomputed index groups.

    ``groups`` is the nested list produced by
    :meth:`CloudSystemModel.symmetry_groups` (one profile of place indices
    per machine, grouped per data center).  Module-level so worker processes
    can rebuild the canonicalizer from pickled groups (the closure itself
    does not pickle); the ``cache_id`` is derived from the normalised groups,
    so every construction path yields the same cache identity.
    """
    groups = [[list(profile) for profile in profiles] for profiles in groups]
    if not groups:
        return None

    def canonicalize(marking: tuple[int, ...]) -> tuple[int, ...]:
        values = list(marking)
        for profiles in groups:
            states = sorted(
                tuple(values[index] for index in profile) for profile in profiles
            )
            for profile, state in zip(profiles, states):
                for index, token in zip(profile, state):
                    values[index] = token
        return tuple(values)

    index_groups = [np.asarray(profiles, dtype=np.int64) for profiles in groups]

    def canonicalize_batch(block: np.ndarray) -> np.ndarray:
        """Vectorized companion: canonicalize a whole ``(N, P)`` block.

        Per group, the per-PM state vectors of every marking are sorted
        lexicographically with one ``np.lexsort`` (stable, ascending —
        the same order as the tuple sort above) instead of a Python
        sort per marking.
        """
        values = np.array(block, dtype=np.int64, copy=True)
        for indices in index_groups:
            sub = values[:, indices]  # (N, machines, places_per_machine)
            keys = tuple(
                sub[:, :, column]
                for column in range(indices.shape[1] - 1, -1, -1)
            )
            order = np.lexsort(keys)
            values[:, indices] = np.take_along_axis(sub, order[:, :, None], axis=1)
        return values

    canonicalize.batch = canonicalize_batch
    canonicalize.cache_id = "pm-symmetry:" + hashlib.sha256(
        repr(groups).encode()
    ).hexdigest()[:16]
    return canonicalize
