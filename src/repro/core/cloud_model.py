"""Assembly and evaluation of the full cloud-system SPN (Figure 6).

``CloudSystemModel`` glues together every block of Section IV for an
arbitrary :class:`~repro.core.datacenter.CloudSystemSpec`:

* one ``DC_d`` (disaster) and one ``NAS_NET_d`` SIMPLE_COMPONENT per data
  center, the latter parameterised by the NAS_NET RBD of the hierarchical
  step;
* one ``OSPM_i`` SIMPLE_COMPONENT per physical machine, parameterised by the
  OS_PM RBD;
* one VM_BEHAVIOR block per physical machine;
* one ``BKP`` SIMPLE_COMPONENT plus one TRANSMISSION_COMPONENT per ordered
  pair of data centers (two-data-center systems);

and evaluates the paper's availability metric
``P{Σ_i #VM_UP_i ≥ k}`` analytically (reachability graph + CTMC) or by
simulation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.components import build_simple_component
from repro.core.datacenter import CloudSystemSpec
from repro.core.hierarchical import HierarchicalParameters
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.core.transmission import build_transmission_network, topology_pairs
from repro.core.vm_behavior import VmBehaviorParameters, build_vm_behavior, vm_up_place
from repro.exceptions import ConfigurationError
from repro.metrics import AvailabilityResult
from repro.network.migration import MigrationPlanner, MigrationTimes
from repro.network.throughput import ThroughputModel
from repro.spn import (
    ProbabilityMeasure,
    SimulationResult,
    StochasticPetriNet,
    merge,
    simulate,
    solve_steady_state,
)
from repro.spn.analysis import SteadyStateSolution
from repro.symmetry import (
    DEFAULT_SYMMETRY_REDUCTION,
    OrbitGroup,
    SymmetrySpec,
    build_canonicalizer,
)


@dataclass
class CloudSystemModel:
    """The paper's hierarchical dependability model of one deployment.

    Attributes:
        spec: deployment description (data centers, pools, threshold k).
        parameters: component / disaster / VM parameters (Table VI + Section V).
        alpha: network-speed coefficient used to derive migration times; only
            needed for distributed deployments.
        migration_times: explicit MTT values; when ``None`` they are computed
            from the data-center locations, the backup location and ``alpha``.
        minimum_operational_pms: the paper's ``l`` threshold for leaving a
            data center.
    """

    spec: CloudSystemSpec
    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    alpha: Optional[float] = None
    migration_times: Optional[MigrationTimes] = None
    minimum_operational_pms: int = 1
    throughput_model: ThroughputModel = field(default_factory=ThroughputModel)
    #: Migration topology for deployments with more than two data centers
    #: (``"mesh"`` or ``"ring"``); two data centers always form the paper's
    #: symmetric pair of paths.
    topology: str = "mesh"
    #: Uniform per-pair transfer time (hours) overriding the distance/α
    #: derivation — the *homogeneous* deployments whose identical data
    #: centers the symmetry layer lumps ~N!-fold.  Deployments with this
    #: set need neither locations nor α.
    uniform_transfer_hours: Optional[float] = None
    #: Uniform backup restoration time (hours); defaults to
    #: ``uniform_transfer_hours`` when only that is set.
    uniform_backup_hours: Optional[float] = None
    #: WAN admission control: at most this many VM images in transit across
    #: all migration / restoration paths combined (``None`` = unbounded, the
    #: paper's model).  The cap is a sum over every in-transfer place, hence
    #: invariant under data-center permutations — it bounds the dominant
    #: state-space dimension of large meshes without breaking the lumping.
    max_in_flight_vms: Optional[int] = None
    #: Destination admission control: migrate into a data center only while
    #: its hosting capacity (images bound to its PMs + pooled + inbound in
    #: flight) has room.  Off by default — the paper's model migrates
    #: unconditionally; see
    #: :func:`repro.core.transmission.build_transmission_network`.
    capacity_aware_migration: bool = False

    def __post_init__(self) -> None:
        if len(self.spec.datacenters) > 2 and self.migration_times is not None:
            raise ConfigurationError(
                "explicit MigrationTimes describe a two-data-center deployment; "
                f"deployments with {len(self.spec.datacenters)} data centers "
                "derive per-pair times from locations and alpha"
            )
        for label, value in (
            ("uniform_transfer_hours", self.uniform_transfer_hours),
            ("uniform_backup_hours", self.uniform_backup_hours),
        ):
            if value is not None and not value > 0.0:
                raise ConfigurationError(f"{label} must be positive, got {value!r}")
        if self.uniform_transfer_hours is not None and self.migration_times is not None:
            raise ConfigurationError(
                "uniform_transfer_hours and explicit migration_times are "
                "mutually exclusive"
            )
        if self.uniform_backup_hours is not None and self.uniform_transfer_hours is None:
            raise ConfigurationError(
                "uniform_backup_hours needs uniform_transfer_hours"
            )
        if self.max_in_flight_vms is not None and self.max_in_flight_vms < 1:
            raise ConfigurationError(
                f"max_in_flight_vms must be at least 1, got "
                f"{self.max_in_flight_vms!r}"
            )
        if (
            self.spec.is_distributed
            and self.migration_times is None
            and self.uniform_transfer_hours is None
        ):
            self._require_locations()
        self._hierarchical = HierarchicalParameters.from_components(
            self.parameters.components
        )
        self._net: Optional[StochasticPetriNet] = None

    # --- assembly ---------------------------------------------------------

    @property
    def hierarchical_parameters(self) -> HierarchicalParameters:
        """Equivalent MTTF/MTTR of the RBD lower level (OS_PM and NAS_NET)."""
        return self._hierarchical

    def resolved_migration_times(self) -> Optional[MigrationTimes]:
        """The MTT values actually used (computed from geography if needed)."""
        if not self.spec.is_distributed:
            return None
        if self.migration_times is not None:
            return self.migration_times
        planner = MigrationPlanner(
            vm_image_size=self.parameters.vm_image_size,
            throughput_model=self.throughput_model,
        )
        first, second = self.spec.datacenters
        if self.spec.has_backup_server:
            return planner.migration_times(
                first.location, second.location, self.spec.backup_location, self.alpha
            )
        # Without a backup server only the direct path exists; the backup
        # fields are placeholders that never parameterise a transition.
        direct = planner.transfer_time(first.location, second.location, self.alpha)
        return MigrationTimes(
            datacenter_to_datacenter=direct,
            backup_to_first=direct,
            backup_to_second=direct,
        )

    def resolved_transmission_times(
        self,
    ) -> tuple[dict[tuple[int, int], float], dict[int, float]]:
        """Per-pair direct and per-destination backup MTTs (hours).

        For two data centers this is :meth:`resolved_migration_times` (so
        explicit ``migration_times`` keep working); for N > 2 every
        topology pair gets its own distance/α-derived transfer time and
        every data center its own backup restoration time.
        """
        datacenters = self.spec.datacenters
        if self.uniform_transfer_hours is not None:
            indices = [dc.index for dc in datacenters]
            direct_times = {
                (indices[i - 1], indices[j - 1]): float(self.uniform_transfer_hours)
                for i, j in topology_pairs(len(datacenters), self.topology)
            }
            if not self.spec.has_backup_server:
                return direct_times, {}
            backup = float(
                self.uniform_backup_hours
                if self.uniform_backup_hours is not None
                else self.uniform_transfer_hours
            )
            return direct_times, {index: backup for index in indices}
        if len(datacenters) == 2:
            times = self.resolved_migration_times()
            first, second = datacenters
            direct = times.datacenter_to_datacenter.hours
            return (
                {
                    (first.index, second.index): direct,
                    (second.index, first.index): direct,
                },
                {
                    first.index: times.backup_to_first.hours,
                    second.index: times.backup_to_second.hours,
                },
            )
        planner = MigrationPlanner(
            vm_image_size=self.parameters.vm_image_size,
            throughput_model=self.throughput_model,
        )
        by_index = {dc.index: dc for dc in datacenters}
        direct_times = {
            (i, j): planner.transfer_time(
                by_index[i].location, by_index[j].location, self.alpha
            ).hours
            for i, j in topology_pairs(len(datacenters), self.topology)
        }
        if not self.spec.has_backup_server:
            return direct_times, {}
        backup_times = {
            dc.index: planner.transfer_time(
                self.spec.backup_location, dc.location, self.alpha
            ).hours
            for dc in datacenters
        }
        return direct_times, backup_times

    def build(self) -> StochasticPetriNet:
        """Assemble (and cache) the full SPN of the deployment."""
        if self._net is not None:
            return self._net
        blocks: list[StochasticPetriNet] = []
        vm_parameters = VmBehaviorParameters(
            vm_mttf=self.parameters.components.virtual_machine.mttf_hours,
            vm_mttr=self.parameters.components.virtual_machine.mttr_hours,
            vm_start_time=self.parameters.vm_start_time.hours,
        )

        for datacenter in self.spec.datacenters:
            blocks.append(
                build_simple_component(
                    datacenter.name,
                    mttf=self.parameters.disaster.mean_time_to_disaster.hours,
                    mttr=self.parameters.disaster.recovery_time.hours,
                )
            )
            blocks.append(
                build_simple_component(
                    datacenter.network_name,
                    mttf=self._hierarchical.nas_net.mttf,
                    mttr=self._hierarchical.nas_net.mttr,
                )
            )
            for machine in self.spec.machines_of(datacenter.index):
                blocks.append(
                    build_simple_component(
                        machine.name,
                        mttf=self._hierarchical.os_pm.mttf,
                        mttr=self._hierarchical.os_pm.mttr,
                    )
                )
                blocks.append(build_vm_behavior(machine, datacenter, vm_parameters))

        if self.spec.is_distributed:
            if self.spec.has_backup_server:
                blocks.append(
                    build_simple_component(
                        "BKP",
                        mttf=self.parameters.components.backup_server.mttf_hours,
                        mttr=self.parameters.components.backup_server.mttr_hours,
                    )
                )
            direct_times, backup_times = self.resolved_transmission_times()
            blocks.append(
                build_transmission_network(
                    self.spec.datacenters,
                    {
                        dc.index: self.spec.machines_of(dc.index)
                        for dc in self.spec.datacenters
                    },
                    direct_times,
                    backup_times,
                    topology=self.topology,
                    has_backup_server=self.spec.has_backup_server,
                    minimum_operational_pms=self.minimum_operational_pms,
                    max_in_flight_vms=self.max_in_flight_vms,
                    capacity_aware_migration=self.capacity_aware_migration,
                )
            )

        self._net = merge(self._model_name(), blocks)
        return self._net

    def _model_name(self) -> str:
        locations = [
            dc.location.name if dc.location is not None else f"DC{dc.index}"
            for dc in self.spec.datacenters
        ]
        return "CLOUD_" + "_".join(name.replace(" ", "") for name in locations)

    def _require_locations(self) -> None:
        if self.alpha is None:
            raise ConfigurationError(
                "a distributed deployment needs either explicit migration_times or "
                "an alpha value to derive them"
            )
        for datacenter in self.spec.datacenters:
            if datacenter.location is None:
                raise ConfigurationError(
                    f"data center {datacenter.index} has no location; distributed "
                    "deployments need locations (or explicit migration_times)"
                )
        if self.spec.has_backup_server and self.spec.backup_location is None:
            raise ConfigurationError(
                "the deployment includes a backup server but no backup location was given"
            )

    # --- metrics -------------------------------------------------------------

    def availability_expression(self, required_running_vms: Optional[int] = None) -> str:
        """The paper's availability predicate ``Σ #VM_UP_i ≥ k``."""
        k = required_running_vms or self.spec.required_running_vms
        total = " + ".join(
            f"#{vm_up_place(machine.index)}" for machine in self.spec.physical_machines
        )
        return f"({total}) >= {k}"

    def availability_measure(self, name: str = "availability") -> ProbabilityMeasure:
        """Availability as a measure object (usable by analysis and simulation)."""
        return ProbabilityMeasure(name, self.availability_expression())

    # --- symmetry ----------------------------------------------------------

    def _machine_place_profile(
        self, place_index: dict[str, int], pm_index: int
    ) -> tuple[int, ...]:
        return (
            place_index[f"OSPM_{pm_index}_UP"],
            place_index[f"OSPM_{pm_index}_DOWN"],
            place_index[f"VM_UP_{pm_index}"],
            place_index[f"VM_DOWN_{pm_index}"],
            place_index[f"VM_RDY_{pm_index}"],
            place_index[f"VM_STRTD_{pm_index}"],
        )

    @staticmethod
    def _machine_rate_profile(pm_index: int) -> tuple[str, ...]:
        return (
            f"OSPM_{pm_index}_F",
            f"OSPM_{pm_index}_R",
            f"VM_F_{pm_index}",
            f"VM_R_{pm_index}",
            f"VM_STRT_{pm_index}",
        )

    def symmetry_spec(
        self, dc_exchange: bool = True, structural: bool = False
    ) -> Optional[SymmetrySpec]:
        """The declarative exchangeability structure of this deployment.

        Detects two symmetry levels and returns them as one picklable
        :class:`~repro.symmetry.spec.SymmetrySpec` (or ``None`` when the
        deployment has no exploitable symmetry):

        * one flat orbit group per data center with ≥ 2 physical machines
          (PMs of one DC are stochastically identical by construction);
        * with ``dc_exchange``, one *paired* orbit group of exchangeable
          whole data centers — identical machine pools, identical disaster /
          network / backup-restoration rates, and a permutation-invariant
          transfer topology (every ordered pair connected with equal
          transfer rates, verified on the assembled net's actual timed
          rates, so explicit overrides and uniform-time deployments are
          judged by what they really parameterise).  Each DC block carries
          its local places (``DC_d``/``NAS_NET_d`` up+down, the
          ``FailedVMS_d`` pool), its PM place profiles and the
          ``TRF``/``TBF`` transmission places keyed by the DC pair.  When
          several exchangeability classes exist only the largest is lumped
          (the paired canonical form is exact for one group; the others
          keep their PM-level groups).

        With ``structural=True`` rate equality is not required — the
        returned spec describes the permutations under which the net
        *structure* alone is invariant.  Such a spec must not drive lumping
        (rates may break it) but powers the grid's symmetry-aware rate-digest
        dedupe: cases differing only by a permutation of exchangeable DC
        parameter blocks map to one canonical rate vector.
        """
        net = self.build()
        place_index = {name: i for i, name in enumerate(net.place_names)}
        timed_rates = {
            transition.name: float(transition.rate)
            for transition in net.transitions
            if not transition.immediate
        }
        marking_groups: list[OrbitGroup] = []
        rate_groups: list[OrbitGroup] = []
        for datacenter in self.spec.datacenters:
            machines = self.spec.machines_of(datacenter.index)
            if len(machines) < 2:
                continue
            marking_groups.append(
                OrbitGroup(
                    profiles=tuple(
                        self._machine_place_profile(place_index, machine.index)
                        for machine in machines
                    )
                )
            )
            rate_groups.append(
                OrbitGroup(
                    profiles=tuple(
                        self._machine_rate_profile(machine.index)
                        for machine in machines
                    )
                )
            )
        kind = "pm"
        if dc_exchange and self.spec.is_distributed:
            members = self._exchangeable_datacenters(timed_rates, structural)
            if len(members) >= 2:
                dc_group, dc_rate_group = self._datacenter_orbit_group(
                    members, place_index, timed_rates
                )
                marking_groups.append(dc_group)
                rate_groups.append(dc_rate_group)
                kind = "dc+pm"
        if not marking_groups:
            return None
        return SymmetrySpec(
            place_count=len(net.place_names),
            marking_groups=tuple(marking_groups),
            rate_groups=tuple(rate_groups),
            kind=kind,
        )

    def _exchangeable_datacenters(
        self, timed_rates: dict[str, float], structural: bool
    ) -> list:
        """The largest verified class of mutually exchangeable data centers."""
        classes: dict[tuple, list] = {}
        for datacenter in self.spec.datacenters:
            key = (
                datacenter.hot_physical_machines,
                datacenter.warm_physical_machines,
                datacenter.vms_per_machine,
                datacenter.initial_vms_per_hot_machine,
            )
            classes.setdefault(key, []).append(datacenter)
        verified = [
            members
            for members in classes.values()
            if len(members) >= 2
            and self._class_is_exchangeable(members, timed_rates, structural)
        ]
        if not verified:
            return []
        return max(verified, key=len)

    def _class_is_exchangeable(
        self, members: list, timed_rates: dict[str, float], structural: bool
    ) -> bool:
        """Verify a same-profile DC class against the assembled net.

        Structural conditions (always): every ordered pair *within* the
        class has a direct migration path (a ring of N ≥ 4 never qualifies),
        and the paths to/from every fixed DC exist uniformly across the
        class.  Rate conditions (skipped when ``structural``): equal
        disaster / network rates, position-wise equal PM rates, one transfer
        rate within the class, and per-fixed-DC equal transfer/backup rates
        across the class.
        """
        indices = [dc.index for dc in members]
        member_set = set(indices)
        others = [
            dc.index
            for dc in self.spec.datacenters
            if dc.index not in member_set
        ]

        def uniform(names: list[str]) -> bool:
            """All present with one rate (or — structural — all present)."""
            if any(name not in timed_rates for name in names):
                return False
            if structural:
                return True
            return len({timed_rates[name] for name in names}) == 1

        def aligned_presence(names: list[str]) -> bool:
            present = {name in timed_rates for name in names}
            return len(present) == 1

        within_direct = [
            f"TRE_{a}{b}" for a in indices for b in indices if a != b
        ]
        if not uniform(within_direct):
            return False
        within_backup = [
            f"TBE_{a}{b}" for a in indices for b in indices if a != b
        ]
        if self.spec.has_backup_server and not uniform(within_backup):
            return False
        for fixed in others:
            for pattern in ("TRE_{a}%s" % fixed, "TRE_%s{a}" % fixed):
                names = [pattern.format(a=a) for a in indices]
                if not aligned_presence(names):
                    return False
                if names[0] in timed_rates and not uniform(names):
                    return False
            if self.spec.has_backup_server:
                for pattern in ("TBE_{a}%s" % fixed, "TBE_%s{a}" % fixed):
                    names = [pattern.format(a=a) for a in indices]
                    if not aligned_presence(names):
                        return False
                    if names[0] in timed_rates and not uniform(names):
                        return False
        if structural:
            return True
        for suffix in ("F", "R"):
            if not uniform([f"DC_{a}_{suffix}" for a in indices]):
                return False
            if not uniform([f"NAS_NET_{a}_{suffix}" for a in indices]):
                return False
        machine_lists = [self.spec.machines_of(a) for a in indices]
        for position in range(len(machine_lists[0])):
            profiles = [
                self._machine_rate_profile(machines[position].index)
                for machines in machine_lists
            ]
            for slot in range(len(profiles[0])):
                if not uniform([profile[slot] for profile in profiles]):
                    return False
        return True

    def _datacenter_orbit_group(
        self,
        members: list,
        place_index: dict[str, int],
        timed_rates: dict[str, float],
    ) -> tuple[OrbitGroup, OrbitGroup]:
        """The paired place/rate orbit groups of one exchangeable DC class."""
        member_set = {dc.index for dc in members}
        fixed = [
            dc.index
            for dc in self.spec.datacenters
            if dc.index not in member_set
        ]
        place_profiles = []
        rate_profiles = []
        for datacenter in members:
            d = datacenter.index
            places = [
                place_index[f"DC_{d}_UP"],
                place_index[f"DC_{d}_DOWN"],
                place_index[f"NAS_NET_{d}_UP"],
                place_index[f"NAS_NET_{d}_DOWN"],
                place_index[datacenter.failed_pool_place],
            ]
            rates = [f"DC_{d}_F", f"DC_{d}_R", f"NAS_NET_{d}_F", f"NAS_NET_{d}_R"]
            for machine in self.spec.machines_of(d):
                places.extend(self._machine_place_profile(place_index, machine.index))
                rates.extend(self._machine_rate_profile(machine.index))
            for f in fixed:
                for name in (f"TRF_{d}{f}", f"TRF_{f}{d}", f"TBF_{d}{f}", f"TBF_{f}{d}"):
                    if name in place_index:
                        places.append(place_index[name])
                for name in (f"TRE_{d}{f}", f"TRE_{f}{d}", f"TBE_{d}{f}", f"TBE_{f}{d}"):
                    if name in timed_rates:
                        rates.append(name)
            place_profiles.append(tuple(places))
            rate_profiles.append(tuple(rates))
        b = len(members)
        place_pairs = [[() for _ in range(b)] for _ in range(b)]
        rate_pairs = [[() for _ in range(b)] for _ in range(b)]
        for i, source in enumerate(members):
            for j, target in enumerate(members):
                if i == j:
                    continue
                pair_places = []
                pair_rates = []
                for prefix_place, prefix_rate in (("TRF", "TRE"), ("TBF", "TBE")):
                    place_name = f"{prefix_place}_{source.index}{target.index}"
                    rate_name = f"{prefix_rate}_{source.index}{target.index}"
                    if place_name in place_index:
                        pair_places.append(place_index[place_name])
                    if rate_name in timed_rates:
                        pair_rates.append(rate_name)
                place_pairs[i][j] = tuple(pair_places)
                rate_pairs[i][j] = tuple(pair_rates)
        return (
            OrbitGroup(
                profiles=tuple(place_profiles),
                pairs=tuple(tuple(row) for row in place_pairs),
            ),
            OrbitGroup(
                profiles=tuple(rate_profiles),
                pairs=tuple(tuple(row) for row in rate_pairs),
            ),
        )

    def symmetry_groups(self) -> list[list[list[int]]]:
        """Per-data-center groups of exchangeable per-PM place indices.

        The legacy PM-only view, now a derivation of :meth:`symmetry_spec`:
        one group per data center with ≥ 2 machines, each holding one
        place-index profile per machine (OSPM up/down plus the four VM
        places), as plain nested lists so they travel through pickle to
        worker processes (see :func:`pm_symmetry_canonicalizer`).
        """
        spec = self.symmetry_spec(dc_exchange=False)
        if spec is None:
            return []
        return [
            [list(profile) for profile in group.profiles]
            for group in spec.marking_groups
        ]

    def symmetry_canonicalizer(self):
        """Marking canonicalizer exploiting every detected exchangeability.

        Physical machines of one data center are stochastically identical,
        and whole data centers may be too (see :meth:`symmetry_spec`); the
        returned function maps a marking to the representative of its orbit
        — per-PM state vectors sorted within each DC, then whole DC blocks
        sorted by canonical key with the transmission places carried along —
        which lets the reachability generator build the exactly lumped (and
        up to ``|G|``-fold smaller) CTMC.  All metrics exposed by this class
        (availability, expected running VMs) are symmetric under the group
        and therefore unaffected by the lumping.
        """
        spec = self.symmetry_spec()
        if spec is None:
            return None
        return build_canonicalizer(spec)

    def solve(
        self,
        method: str = "auto",
        max_states: int = 500_000,
        symmetry_reduction: Optional[bool] = None,
    ) -> SteadyStateSolution:
        """Generate the tangible state space and solve the underlying CTMC.

        Args:
            method: stationary solver (see :func:`repro.markov.solvers.steady_state`).
            max_states: tangible state-space limit.
            symmetry_reduction: exploit the exchangeability of PMs within
                each data center — and of whole identical data centers — to
                solve the exactly lumped CTMC instead of the full one.
                ``None`` (the default) resolves to the library-wide
                :data:`repro.symmetry.DEFAULT_SYMMETRY_REDUCTION` (on), the
                same default the sweep runner and the case-study grid use.
                The lumping is exact, so every measure value is bit-for-bit
                independent of this flag; pass ``False`` to inspect the
                unlumped chain.
        """
        from repro.spn.reachability import generate_tangible_reachability_graph

        if symmetry_reduction is None:
            symmetry_reduction = DEFAULT_SYMMETRY_REDUCTION
        canonicalize = self.symmetry_canonicalizer() if symmetry_reduction else None
        graph = generate_tangible_reachability_graph(
            self.build(), max_states=max_states, canonicalize=canonicalize
        )
        return solve_steady_state(graph, method=method)

    def availability(
        self,
        method: str = "auto",
        solution: Optional[SteadyStateSolution] = None,
    ) -> AvailabilityResult:
        """Steady-state availability ``P{Σ #VM_UP_i ≥ k}`` of the deployment."""
        if solution is None:
            solution = self.solve(method=method)
        value = solution.probability(self.availability_expression())
        return AvailabilityResult(min(1.0, max(0.0, value)), label=self._model_name())

    def expected_running_vms(
        self, solution: Optional[SteadyStateSolution] = None
    ) -> float:
        """Expected number of running VMs ``E{Σ #VM_UP_i}``."""
        if solution is None:
            solution = self.solve()
        total = " + ".join(
            f"#{vm_up_place(machine.index)}" for machine in self.spec.physical_machines
        )
        return solution.expected_tokens(f"({total})")

    def simulate_availability(
        self,
        horizon: float = 1_000_000.0,
        replications: int = 5,
        seed: Optional[int] = None,
    ) -> SimulationResult:
        """Monte-Carlo estimate of the availability (cross-validation path)."""
        return simulate(
            self.build(),
            [self.availability_measure()],
            horizon=horizon,
            replications=replications,
            seed=seed,
        )


def pm_symmetry_canonicalizer(groups):
    """Build the PM-exchange canonicalizer from precomputed index groups.

    ``groups`` is the nested list produced by
    :meth:`CloudSystemModel.symmetry_groups` (one profile of place indices
    per machine, grouped per data center).  Module-level so worker processes
    can rebuild the canonicalizer from pickled groups (the closure itself
    does not pickle); the ``cache_id`` is derived from the normalised groups,
    so every construction path yields the same cache identity.
    """
    groups = [[list(profile) for profile in profiles] for profiles in groups]
    if not groups:
        return None

    def canonicalize(marking: tuple[int, ...]) -> tuple[int, ...]:
        values = list(marking)
        for profiles in groups:
            states = sorted(
                tuple(values[index] for index in profile) for profile in profiles
            )
            for profile, state in zip(profiles, states):
                for index, token in zip(profile, state):
                    values[index] = token
        return tuple(values)

    index_groups = [np.asarray(profiles, dtype=np.int64) for profiles in groups]

    def canonicalize_batch(block: np.ndarray) -> np.ndarray:
        """Vectorized companion: canonicalize a whole ``(N, P)`` block.

        Per group, the per-PM state vectors of every marking are sorted
        lexicographically with one ``np.lexsort`` (stable, ascending —
        the same order as the tuple sort above) instead of a Python
        sort per marking.
        """
        values = np.array(block, dtype=np.int64, copy=True)
        for indices in index_groups:
            sub = values[:, indices]  # (N, machines, places_per_machine)
            keys = tuple(
                sub[:, :, column]
                for column in range(indices.shape[1] - 1, -1, -1)
            )
            order = np.lexsort(keys)
            values[:, indices] = np.take_along_axis(sub, order[:, :, None], axis=1)
        return values

    canonicalize.batch = canonicalize_batch
    canonicalize.cache_id = "pm-symmetry:" + hashlib.sha256(
        repr(groups).encode()
    ).hexdigest()[:16]
    return canonicalize
