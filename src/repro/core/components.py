"""SPN block: SIMPLE_COMPONENT (Figure 2 / Table I of the paper).

A SIMPLE_COMPONENT has two places (component up / component down) and two
exponential single-server transitions (failure with mean MTTF, repair with
mean MTTR).  The paper instantiates it for physical machines (``OSPM_i``),
data-center networks (``NAS_NET_d``), disaster occurrence (``DC_d`` /
``DISASTER_d``) and the backup server (``BKP``); the guard tables reference
the "up" places as ``#OSPM_UPx``, ``#NAS_NET_UPy``, ``#DC_UPz`` and
``#BKP_UP``, so the builder uses the ``_UP`` / ``_DOWN`` suffix convention.
"""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.spn import StochasticPetriNet


def up_place(name: str) -> str:
    """Name of the "component operational" place of a SIMPLE_COMPONENT."""
    return f"{name}_UP"


def down_place(name: str) -> str:
    """Name of the "component failed" place of a SIMPLE_COMPONENT."""
    return f"{name}_DOWN"


def availability_expression(name: str) -> str:
    """The paper's availability operator ``P{#X_UP > 0}`` for one component."""
    return f"#{up_place(name)} > 0"


def build_simple_component(
    name: str,
    mttf: float,
    mttr: float,
    initially_up: bool = True,
) -> StochasticPetriNet:
    """Build a SIMPLE_COMPONENT sub-net.

    Args:
        name: component label (e.g. ``"OSPM_1"``, ``"DC_1"``, ``"BKP"``);
            places become ``{name}_UP`` / ``{name}_DOWN`` and transitions
            ``{name}_F`` / ``{name}_R``.
        mttf: mean time to failure (hours).
        mttr: mean time to repair (hours).
        initially_up: whether the component starts operational.

    Returns:
        A two-place, two-transition net ready to be merged into a larger model.
    """
    if mttf <= 0.0:
        raise ModelError(f"component {name!r}: MTTF must be positive, got {mttf!r}")
    if mttr <= 0.0:
        raise ModelError(f"component {name!r}: MTTR must be positive, got {mttr!r}")
    net = StochasticPetriNet(f"SIMPLE_COMPONENT_{name}")
    net.add_place(up_place(name), initial_tokens=1 if initially_up else 0)
    net.add_place(down_place(name), initial_tokens=0 if initially_up else 1)
    net.add_timed_transition(f"{name}_F", delay=mttf, semantics="ss")
    net.add_timed_transition(f"{name}_R", delay=mttr, semantics="ss")
    net.add_input_arc(up_place(name), f"{name}_F")
    net.add_output_arc(f"{name}_F", down_place(name))
    net.add_input_arc(down_place(name), f"{name}_R")
    net.add_output_arc(f"{name}_R", up_place(name))
    return net
