"""Dependability parameters of the case study.

``ComponentParameters`` mirrors Table VI of the paper (MTTF/MTTR per
component, in hours); ``CaseStudyParameters`` collects the remaining
constants stated in Section V: VM image size (4 GB), VM start time
(5 minutes), disaster mean times (100/200/300 years), data-center recovery
time after a disaster (1 year), the availability threshold (at least two
running VMs) and the α values (0.35, 0.40, 0.45).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ConfigurationError
from repro.metrics.units import DataSize, Duration


@dataclass(frozen=True)
class FailureRepairPair:
    """MTTF/MTTR pair of one component type (hours)."""

    mttf_hours: float
    mttr_hours: float

    def __post_init__(self) -> None:
        if self.mttf_hours <= 0.0:
            raise ConfigurationError(f"MTTF must be positive, got {self.mttf_hours!r}")
        if self.mttr_hours < 0.0:
            raise ConfigurationError(f"MTTR must be non-negative, got {self.mttr_hours!r}")


@dataclass(frozen=True)
class ComponentParameters:
    """Table VI — dependability parameters of the hardware/software components.

    All times are in hours and default to the published values.
    """

    operating_system: FailureRepairPair = FailureRepairPair(4000.0, 1.0)
    physical_machine: FailureRepairPair = FailureRepairPair(1000.0, 12.0)
    switch: FailureRepairPair = FailureRepairPair(430_000.0, 4.0)
    router: FailureRepairPair = FailureRepairPair(14_077_473.0, 4.0)
    nas: FailureRepairPair = FailureRepairPair(20_000_000.0, 2.0)
    virtual_machine: FailureRepairPair = FailureRepairPair(2880.0, 0.5)
    backup_server: FailureRepairPair = FailureRepairPair(50_000.0, 0.5)

    def with_override(self, component: str, pair: FailureRepairPair) -> "ComponentParameters":
        """Copy with a single component's parameters replaced (sensitivity analysis)."""
        if not hasattr(self, component):
            raise ConfigurationError(
                f"unknown component {component!r}; known components: "
                f"{sorted(self.__dataclass_fields__)}"
            )
        return replace(self, **{component: pair})


#: Disaster mean times (years) evaluated in the case study.
DISASTER_MEAN_TIME_YEARS = (100.0, 200.0, 300.0)

#: Network-speed coefficients evaluated in the case study.
ALPHA_VALUES = (0.35, 0.40, 0.45)


@dataclass(frozen=True)
class DisasterParameters:
    """Occurrence and recovery of catastrophic data-center failures."""

    mean_time_to_disaster: Duration = field(
        default_factory=lambda: Duration.from_years(100.0)
    )
    recovery_time: Duration = field(default_factory=lambda: Duration.from_years(1.0))

    def __post_init__(self) -> None:
        if self.mean_time_to_disaster.hours <= 0.0:
            raise ConfigurationError("mean time to disaster must be positive")
        if self.recovery_time.hours <= 0.0:
            raise ConfigurationError("disaster recovery time must be positive")

    @classmethod
    def from_years(
        cls, mean_time_years: float, recovery_years: float = 1.0
    ) -> "DisasterParameters":
        return cls(
            mean_time_to_disaster=Duration.from_years(mean_time_years),
            recovery_time=Duration.from_years(recovery_years),
        )


@dataclass(frozen=True)
class CaseStudyParameters:
    """Every constant of Section V gathered in one object."""

    components: ComponentParameters = field(default_factory=ComponentParameters)
    disaster: DisasterParameters = field(default_factory=DisasterParameters)
    vm_image_size: DataSize = field(default_factory=lambda: DataSize.from_gigabytes(4.0))
    vm_start_time: Duration = field(default_factory=lambda: Duration.from_minutes(5.0))
    required_running_vms: int = 2
    vms_per_physical_machine: int = 2

    def __post_init__(self) -> None:
        if self.required_running_vms < 1:
            raise ConfigurationError("at least one running VM must be required")
        if self.vms_per_physical_machine < 1:
            raise ConfigurationError("each physical machine must host at least one VM")
        if self.vm_start_time.hours <= 0.0:
            raise ConfigurationError("the VM start time must be positive")

    def with_disaster_mean_time(self, years: float) -> "CaseStudyParameters":
        """Copy with a different disaster mean time (Figure 7 sweep)."""
        return replace(
            self,
            disaster=DisasterParameters(
                mean_time_to_disaster=Duration.from_years(years),
                recovery_time=self.disaster.recovery_time,
            ),
        )


DEFAULT_PARAMETERS = CaseStudyParameters()
