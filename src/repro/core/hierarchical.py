"""Hierarchical modeling step: RBD lower level → SPN simple components.

Section IV-D / Figure 5 of the paper: the operating system and the physical
machine hardware form a series RBD (``OS_PM``); the switch, router and NAS
form a second series RBD (``NAS_NET``).  Their equivalent MTTF/MTTR values
are then used as the delays of the corresponding SIMPLE_COMPONENT transitions
in the SPN level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parameters import ComponentParameters
from repro.rbd import RbdResult, Series, evaluate, series


def build_os_pm_rbd(components: ComponentParameters) -> Series:
    """Series RBD of {operating system, physical machine hardware} (Figure 5a)."""
    return series(
        "OS_PM",
        [
            ("OS", components.operating_system.mttf_hours, components.operating_system.mttr_hours),
            ("PM", components.physical_machine.mttf_hours, components.physical_machine.mttr_hours),
        ],
    )


def build_nas_net_rbd(components: ComponentParameters) -> Series:
    """Series RBD of {switch, router, NAS} — the data-center network."""
    return series(
        "NAS_NET",
        [
            ("Switch", components.switch.mttf_hours, components.switch.mttr_hours),
            ("Router", components.router.mttf_hours, components.router.mttr_hours),
            ("NAS", components.nas.mttf_hours, components.nas.mttr_hours),
        ],
    )


@dataclass(frozen=True)
class HierarchicalParameters:
    """Equivalent MTTF/MTTR of the two RBD submodels, ready for the SPN level.

    Attributes:
        os_pm: evaluation of the OS + physical-machine series RBD.
        nas_net: evaluation of the switch + router + NAS series RBD.
    """

    os_pm: RbdResult
    nas_net: RbdResult

    @classmethod
    def from_components(cls, components: ComponentParameters) -> "HierarchicalParameters":
        """Evaluate both lower-level RBDs for a component parameter set."""
        return cls(
            os_pm=evaluate(build_os_pm_rbd(components)),
            nas_net=evaluate(build_nas_net_rbd(components)),
        )
