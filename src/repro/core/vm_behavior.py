"""SPN block: VM_BEHAVIOR (Figure 3 / Tables II-III of the paper).

One VM_BEHAVIOR block models the virtual machines hosted by one physical
machine.  Per PM *i* (in data center *d*) the block has the places named in
the paper —

* ``VM_UP_i``    VMs operational,
* ``VM_DOWN_i``  VMs failed (waiting for repair),
* ``VM_RDY_i``   VMs repaired / assigned, ready to be started,
* ``VM_STRTD_i`` VMs starting,

plus the per-data-center shared place ``FailedVMS_d`` holding VM images whose
hosting infrastructure failed ("VMs that are failed and can be started in
another PM").

The timed transitions carry the attributes of Table III (infinite-server
failure and repair, single-server start).  The immediate transitions carry
the guards of Table II: the ``FPM_*`` family flushes every VM state to
``FailedVMS_d`` when the PM, the data-center network or the data center
itself is down; ``VM_Subs_i`` dispatches ready VMs for starting while the
infrastructure is healthy.  ``VM_Acq_i`` — the only transition not named in
the paper's text — re-instantiates an image from the shared pool on this PM
when it is healthy and has spare capacity; it is required to close the token
flow described in Section III (see DESIGN.md §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.datacenter import DataCenterSpec, PhysicalMachineSpec
from repro.exceptions import ModelError
from repro.spn import StochasticPetriNet


@dataclass(frozen=True)
class VmBehaviorParameters:
    """Timing parameters of one VM_BEHAVIOR block (hours)."""

    vm_mttf: float
    vm_mttr: float
    vm_start_time: float

    def __post_init__(self) -> None:
        for label, value in (
            ("VM MTTF", self.vm_mttf),
            ("VM MTTR", self.vm_mttr),
            ("VM start time", self.vm_start_time),
        ):
            if value <= 0.0:
                raise ModelError(f"{label} must be positive, got {value!r}")


def vm_up_place(pm_index: int) -> str:
    """Place holding the operational VMs of PM ``pm_index``."""
    return f"VM_UP_{pm_index}"


def vm_down_place(pm_index: int) -> str:
    return f"VM_DOWN_{pm_index}"


def vm_ready_place(pm_index: int) -> str:
    return f"VM_RDY_{pm_index}"


def vm_starting_place(pm_index: int) -> str:
    return f"VM_STRTD_{pm_index}"


def failed_pool_place(datacenter_index: int) -> str:
    """Shared per-data-center pool of failed VM images."""
    return f"FailedVMS_{datacenter_index}"


def infrastructure_failed_guard(pm_index: int, datacenter_index: int) -> str:
    """Guard of the ``FPM_*`` transitions (Table II): PM or infrastructure failed.

    The referenced places are the ``_UP`` places of the ``OSPM_i``,
    ``NAS_NET_d`` and ``DC_d`` SIMPLE_COMPONENT blocks.
    """
    return (
        f"(#OSPM_{pm_index}_UP = 0) OR (#NAS_NET_{datacenter_index}_UP = 0) "
        f"OR (#DC_{datacenter_index}_UP = 0)"
    )


def infrastructure_working_guard(pm_index: int, datacenter_index: int) -> str:
    """Guard of ``VM_Subs`` / ``VM_Acq`` (Table II): PM and infrastructure working."""
    return (
        f"(#OSPM_{pm_index}_UP > 0) AND (#NAS_NET_{datacenter_index}_UP > 0) "
        f"AND (#DC_{datacenter_index}_UP > 0)"
    )


def hosted_vms_expression(pm_index: int) -> str:
    """Number of VM images currently bound to PM ``pm_index`` (any state)."""
    return (
        f"(#{vm_up_place(pm_index)} + #{vm_down_place(pm_index)} + "
        f"#{vm_ready_place(pm_index)} + #{vm_starting_place(pm_index)})"
    )


def build_vm_behavior(
    machine: PhysicalMachineSpec,
    datacenter: DataCenterSpec,
    parameters: VmBehaviorParameters,
) -> StochasticPetriNet:
    """Build the VM_BEHAVIOR block of one physical machine.

    The block references (through guards) the ``OSPM_UP_i``, ``NAS_NET_UP_d``
    and ``DC_UP_d`` places of the corresponding SIMPLE_COMPONENT blocks; those
    places are *not* created here — the blocks are fused by
    :func:`repro.spn.merge` when the full cloud model is assembled.
    """
    if machine.datacenter_index != datacenter.index:
        raise ModelError(
            f"PM {machine.index} belongs to data center {machine.datacenter_index}, "
            f"not {datacenter.index}"
        )
    i = machine.index
    d = datacenter.index
    net = StochasticPetriNet(f"VM_BEHAVIOR_{i}")

    net.add_place(vm_up_place(i), initial_tokens=machine.initial_vms)
    net.add_place(vm_down_place(i))
    net.add_place(vm_ready_place(i))
    net.add_place(vm_starting_place(i))
    net.add_place(failed_pool_place(d))

    failed_guard = infrastructure_failed_guard(i, d)
    working_guard = infrastructure_working_guard(i, d)
    capacity_guard = (
        f"({working_guard}) AND ({hosted_vms_expression(i)} < {machine.vm_capacity})"
    )

    # Timed transitions (Table III).
    net.add_timed_transition(f"VM_F_{i}", delay=parameters.vm_mttf, semantics="is")
    net.add_timed_transition(f"VM_R_{i}", delay=parameters.vm_mttr, semantics="is")
    net.add_timed_transition(f"VM_STRT_{i}", delay=parameters.vm_start_time, semantics="ss")
    net.add_input_arc(vm_up_place(i), f"VM_F_{i}")
    net.add_output_arc(f"VM_F_{i}", vm_down_place(i))
    net.add_input_arc(vm_down_place(i), f"VM_R_{i}")
    net.add_output_arc(f"VM_R_{i}", vm_ready_place(i))
    net.add_input_arc(vm_starting_place(i), f"VM_STRT_{i}")
    net.add_output_arc(f"VM_STRT_{i}", vm_up_place(i))

    # Dispatch of ready VMs while the infrastructure is healthy (Table II).
    net.add_immediate_transition(f"VM_Subs_{i}", guard=working_guard)
    net.add_input_arc(vm_ready_place(i), f"VM_Subs_{i}")
    net.add_output_arc(f"VM_Subs_{i}", vm_starting_place(i))

    # Flush every VM state to the shared pool when the infrastructure fails.
    for suffix, place in (
        ("UP", vm_up_place(i)),
        ("DW", vm_down_place(i)),
        ("ST", vm_starting_place(i)),
        ("Subs", vm_ready_place(i)),
    ):
        name = f"FPM_{suffix}_{i}"
        net.add_immediate_transition(name, guard=failed_guard)
        net.add_input_arc(place, name)
        net.add_output_arc(name, failed_pool_place(d))

    # Re-instantiation of pooled images on this PM (healthy + spare capacity).
    net.add_immediate_transition(f"VM_Acq_{i}", guard=capacity_guard)
    net.add_input_arc(failed_pool_place(d), f"VM_Acq_{i}")
    net.add_output_arc(f"VM_Acq_{i}", vm_ready_place(i))

    return net
