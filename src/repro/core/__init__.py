"""The paper's contribution: disaster-tolerant cloud dependability models."""

from repro.core.cloud_model import CloudSystemModel
from repro.core.components import (
    availability_expression,
    build_simple_component,
    down_place,
    up_place,
)
from repro.core.datacenter import (
    CloudSystemSpec,
    DataCenterSpec,
    PhysicalMachineSpec,
    multi_datacenter_spec,
    single_datacenter_spec,
    two_datacenter_spec,
)
from repro.core.hierarchical import (
    HierarchicalParameters,
    build_nas_net_rbd,
    build_os_pm_rbd,
)
from repro.core.parameters import (
    ALPHA_VALUES,
    CaseStudyParameters,
    ComponentParameters,
    DEFAULT_PARAMETERS,
    DISASTER_MEAN_TIME_YEARS,
    DisasterParameters,
    FailureRepairPair,
)
from repro.core.scenarios import (
    BACKUP_LOCATION,
    BASELINE_ALPHA,
    BASELINE_DISASTER_YEARS,
    CITY_PAIRS,
    DistributedScenario,
    MultiDataCenterScenario,
    SingleDataCenterScenario,
    baseline_distributed_scenarios,
    figure7_scenarios,
    single_datacenter_baselines,
)
from repro.core.transmission import (
    TOPOLOGIES,
    TransmissionParameters,
    build_transmission_component,
    build_transmission_network,
    topology_pairs,
)
from repro.core.vm_behavior import (
    VmBehaviorParameters,
    build_vm_behavior,
    failed_pool_place,
    vm_up_place,
)

__all__ = [
    "CloudSystemModel",
    "availability_expression",
    "build_simple_component",
    "down_place",
    "up_place",
    "CloudSystemSpec",
    "DataCenterSpec",
    "PhysicalMachineSpec",
    "multi_datacenter_spec",
    "single_datacenter_spec",
    "two_datacenter_spec",
    "HierarchicalParameters",
    "build_nas_net_rbd",
    "build_os_pm_rbd",
    "ALPHA_VALUES",
    "CaseStudyParameters",
    "ComponentParameters",
    "DEFAULT_PARAMETERS",
    "DISASTER_MEAN_TIME_YEARS",
    "DisasterParameters",
    "FailureRepairPair",
    "BACKUP_LOCATION",
    "BASELINE_ALPHA",
    "BASELINE_DISASTER_YEARS",
    "CITY_PAIRS",
    "DistributedScenario",
    "MultiDataCenterScenario",
    "SingleDataCenterScenario",
    "baseline_distributed_scenarios",
    "figure7_scenarios",
    "single_datacenter_baselines",
    "TOPOLOGIES",
    "TransmissionParameters",
    "build_transmission_component",
    "build_transmission_network",
    "topology_pairs",
    "VmBehaviorParameters",
    "build_vm_behavior",
    "failed_pool_place",
    "vm_up_place",
]
