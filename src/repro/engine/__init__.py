"""Sparse-native scenario-batch engine.

One tangible state space, many parameter points: the engine generates the
reachability graph once, re-rates it per scenario with vectorized sparse
operations, re-fills one symbolically pre-assembled linear system, reuses
ILU preconditioners / warm starts across neighbouring sweep points and can
fan a batch out over a thread pool.
"""

from repro.engine.batch import (
    ScenarioBatchEngine,
    ScenarioResult,
    ScenarioSpec,
)
from repro.engine.cache import CacheEntry, TRGCache, cache_key, default_cache_directory
from repro.engine.system import ConstrainedSystemTemplate

__all__ = [
    "ScenarioBatchEngine",
    "ScenarioResult",
    "ScenarioSpec",
    "CacheEntry",
    "TRGCache",
    "cache_key",
    "default_cache_directory",
    "ConstrainedSystemTemplate",
]
