"""Sparse-native scenario-batch engine.

One tangible state space, many parameter points: the engine generates the
reachability graph once, re-rates it per scenario with vectorized sparse
operations, re-fills one symbolically pre-assembled linear system, reuses
ILU preconditioners / warm starts across neighbouring sweep points, fans a
batch out over threads or over the zero-copy shared-memory process
scheduler (:mod:`repro.engine.parallel`), and evaluates all reward measures
of a batch with one GEMM (:mod:`repro.engine.measures`).
"""

from repro.engine.batch import (
    BACKENDS,
    DedupeStats,
    ScenarioBatchEngine,
    ScenarioResult,
    ScenarioSpec,
    TransientScenarioResult,
    rate_digest,
)
from repro.engine.cache import CacheEntry, TRGCache, cache_key, default_cache_directory
from repro.engine.faults import (
    FailureRecord,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    RetryPolicy,
)
from repro.engine.grid import (
    CanonicalizerRef,
    GridCase,
    GridCaseResult,
    GridGroupReport,
    GridOutcome,
    ScenarioGridOrchestrator,
    load_checkpoint,
)
from repro.engine.dispatch import (
    BackendPlan,
    CostObservations,
    DispatchDecision,
    PipelineBudget,
    TaskWatchdog,
    choose_backend,
    effective_cpu_count,
    estimate_generation_cost,
    memory_budget_bytes,
    parse_memory_size,
    peak_rss_bytes,
    plan_representation,
    resolve_worker_count,
)
from repro.engine.krylov import (
    KrylovConvergenceError,
    KrylovSettings,
    MatrixFreeSolver,
    ReusableSolver,
)
from repro.engine.measures import RewardMatrix, UnsupportedMeasure
from repro.engine.parallel import (
    SharedMemoryUnavailable,
    SweepScheduler,
    cleanup_shared_resources,
    contiguous_chunks,
    install_signal_cleanup,
    shared_memory_available,
    shutdown_shared_pool,
)
from repro.engine.system import ConstrainedSystemTemplate

__all__ = [
    "BACKENDS",
    "CanonicalizerRef",
    "GridCase",
    "GridCaseResult",
    "GridGroupReport",
    "GridOutcome",
    "ScenarioGridOrchestrator",
    "ScenarioBatchEngine",
    "ScenarioResult",
    "ScenarioSpec",
    "TransientScenarioResult",
    "BackendPlan",
    "CostObservations",
    "DedupeStats",
    "DispatchDecision",
    "PipelineBudget",
    "choose_backend",
    "effective_cpu_count",
    "estimate_generation_cost",
    "memory_budget_bytes",
    "parse_memory_size",
    "peak_rss_bytes",
    "plan_representation",
    "rate_digest",
    "resolve_worker_count",
    "shutdown_shared_pool",
    "CacheEntry",
    "TRGCache",
    "cache_key",
    "default_cache_directory",
    "ConstrainedSystemTemplate",
    "FailureRecord",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "RetryPolicy",
    "TaskWatchdog",
    "KrylovConvergenceError",
    "KrylovSettings",
    "MatrixFreeSolver",
    "ReusableSolver",
    "RewardMatrix",
    "UnsupportedMeasure",
    "SharedMemoryUnavailable",
    "SweepScheduler",
    "cleanup_shared_resources",
    "contiguous_chunks",
    "install_signal_cleanup",
    "load_checkpoint",
    "shared_memory_available",
]
