"""Deterministic fault-injection harness and self-healing policy types.

The execution layer (persistent worker pool, TRG cache, grid orchestrator)
recovers from worker deaths, torn cache entries and hung tasks — but those
failures are rare and timing-dependent, so without help the recovery paths
would be the least-tested code in the repo.  This module makes the failures
*reproducible*: a seeded :class:`FaultPlan` describes exactly which fault
fires at which site, the hook points consult the installed plan at
deterministic parent-side decision points, and a test or chaos benchmark can
replay the same failure schedule on every run.

Supported fault kinds (:data:`FAULT_KINDS`):

* ``worker_kill`` — the worker process SIGKILLs itself before running the
  task (the pool observes an abrupt death: ``BrokenProcessPool``);
* ``task_exception`` — the task raises :class:`InjectedFaultError` instead
  of running;
* ``slow_task`` — the task sleeps ``delay_seconds`` before running
  (exercises deadlines and the pipeline watchdog);
* ``corrupt_cache_read`` — the cache entry is physically truncated before
  the read, so the *real* corruption-handling path runs;
* ``shm_attach_failure`` — creating/attaching the shared-memory segment
  fails (exercises the thread-backend degradation of the batch engine).

Sites are matched with :func:`fnmatch.fnmatch` patterns, so a spec with
``site="generate*"`` covers both pool generation tasks (site ``generate``)
and the in-process fallback (site ``generate.inprocess``).

The plan is installed process-wide (:func:`install` / :func:`clear` /
the :func:`injected` context manager) or via the ``REPRO_FAULT_PLAN``
environment variable (a JSON document, or ``@/path/to/plan.json``), which is
how the CLI and the CI chaos smoke inject faults into a subprocess.  All
firing decisions happen in the *parent* process — the only worker-side
behaviour is the picklable :func:`faulted_call` wrapper the pool wraps a
doomed task in — so a plan never needs to pickle.

Alongside the injection harness live the two policy/record types of the
self-healing layer: :class:`RetryPolicy` (retry counts, exponential backoff,
per-kind deadlines, pool restart budget) and :class:`FailureRecord` (the
structured quarantine record a task that exhausted its retries leaves behind
instead of aborting the run).
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterator, Optional, Sequence

#: Canonical names of the injectable fault kinds.
WORKER_KILL = "worker_kill"
TASK_EXCEPTION = "task_exception"
SLOW_TASK = "slow_task"
CORRUPT_CACHE_READ = "corrupt_cache_read"
SHM_ATTACH_FAILURE = "shm_attach_failure"

FAULT_KINDS = (
    WORKER_KILL,
    TASK_EXCEPTION,
    SLOW_TASK,
    CORRUPT_CACHE_READ,
    SHM_ATTACH_FAILURE,
)

#: Environment variable carrying a JSON fault plan (or ``@/path`` to one).
FAULT_PLAN_ENVIRONMENT_VARIABLE = "REPRO_FAULT_PLAN"

#: Hook-point sites of the availability service layer (:mod:`repro.service`):
#: the journal append of the durable job store (fires before the write is
#: acknowledged), the HTTP submission handler, and the worker-side start of
#: one job run.  The chaos harness tortures the service through the same
#: plans it uses against the pool — ``task_exception`` raises at the site,
#: ``slow_task`` sleeps there first (see :func:`perturb`).
SERVICE_STORE_APPEND = "service.store.append"
SERVICE_HANDLE_SUBMIT = "service.handle.submit"
SERVICE_RUN_JOB = "service.run.job"


class InjectedFaultError(RuntimeError):
    """An artificial task failure raised by the fault-injection harness.

    Deliberately *not* an :class:`~repro.exceptions.AnalysisError`: injected
    faults must travel the same generic-exception recovery paths a real
    crash would, not any analysis-specific handling.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault of a :class:`FaultPlan`.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        site: :func:`fnmatch.fnmatch` pattern over the hook-point site names
            (``"generate"``, ``"solve"``, ``"solve.group"``, ``"cache.load"``,
            ``"sweep.plan"``, …); ``"*"`` matches every site of the kind.
        after: number of matching events to let pass before arming.
        count: how many times the spec fires once armed.
        probability: chance an armed event actually fires (drawn from the
            plan's seeded RNG, so runs stay reproducible).
        delay_seconds: sleep length of ``slow_task`` faults.
    """

    kind: str
    site: str = "*"
    after: int = 0
    count: int = 1
    probability: float = 1.0
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not isinstance(self.site, str) or not self.site.strip():
            raise ValueError(
                f"fault 'site' must be a non-empty fnmatch pattern over the "
                f"hook-point names (e.g. 'generate*', 'service.*'), got "
                f"{self.site!r}"
            )
        if not isinstance(self.count, int) or isinstance(self.count, bool):
            raise ValueError(f"fault 'count' must be an integer, got {self.count!r}")
        if not isinstance(self.after, int) or isinstance(self.after, bool):
            raise ValueError(f"fault 'after' must be an integer, got {self.after!r}")
        if self.count < 0:
            raise ValueError(f"fault 'count' must be non-negative, got {self.count}")
        if self.after < 0:
            raise ValueError(f"fault 'after' must be non-negative, got {self.after}")
        if not isinstance(self.probability, (int, float)) or not (
            0.0 <= self.probability <= 1.0
        ):
            raise ValueError(
                f"fault 'probability' must be a number within [0, 1], got "
                f"{self.probability!r}"
            )
        if not isinstance(self.delay_seconds, (int, float)) or self.delay_seconds < 0:
            raise ValueError(
                f"fault 'delay_seconds' must be a non-negative number, got "
                f"{self.delay_seconds!r}"
            )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "after": self.after,
            "count": self.count,
            "probability": self.probability,
            "delay_seconds": self.delay_seconds,
        }


class FaultPlan:
    """A seeded, thread-safe schedule of faults to inject into one run.

    Hook points report candidate events via :meth:`fire`; the plan walks its
    specs in order, counts matching events per spec, and returns the first
    armed spec that fires (consuming one of its charges) or ``None``.  Every
    fired fault is appended to :attr:`events` so tests and the chaos
    benchmark can assert the schedule actually executed.
    """

    def __init__(self, faults: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs = tuple(faults)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._seen = [0] * len(self.specs)
        self._fired = [0] * len(self.specs)
        self._lock = threading.Lock()
        #: Fired faults, in firing order: ``{"kind", "site", "spec"}`` dicts.
        self.events: list[dict] = []

    def fire(self, kind: str, site: str) -> Optional[FaultSpec]:
        """Consume one charge of the first matching armed spec, if any."""
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.kind != kind or not fnmatch(site, spec.site):
                    continue
                self._seen[index] += 1
                if self._seen[index] <= spec.after:
                    continue
                if self._fired[index] >= spec.count:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                self._fired[index] += 1
                self.events.append({"kind": kind, "site": site, "spec": index})
                return spec
            return None

    def fired(self, kind: Optional[str] = None) -> int:
        """Number of faults fired so far (optionally of one kind)."""
        with self._lock:
            if kind is None:
                return len(self.events)
            return sum(1 for event in self.events if event["kind"] == kind)

    def exhausted(self) -> bool:
        """Whether every spec has fired all of its charges."""
        with self._lock:
            return all(
                fired >= spec.count for spec, fired in zip(self.specs, self._fired)
            )

    # --- (de)serialisation --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [spec.as_dict() for spec in self.specs]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse ``{"seed": 0, "faults": [{"kind": ..., ...}, ...]}``.

        A bare JSON array is accepted as the ``faults`` list.  Every
        malformed input raises :class:`ValueError` with an actionable
        message naming the offending spec by its position.
        """
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}") from error
        if isinstance(document, list):
            document = {"faults": document}
        if not isinstance(document, dict):
            raise ValueError(
                f"a fault plan must be a JSON object or array, got "
                f"{type(document).__name__}"
            )
        entries = document.get("faults", [])
        if not isinstance(entries, list):
            raise ValueError(
                f"'faults' must be an array of fault specs, got "
                f"{type(entries).__name__}"
            )
        allowed = {
            "kind", "site", "after", "count", "probability", "delay_seconds"
        }
        specs = []
        for position, entry in enumerate(entries, start=1):
            if not isinstance(entry, dict):
                raise ValueError(
                    f"fault spec #{position} must be a JSON object, got "
                    f"{type(entry).__name__}"
                )
            unknown = sorted(set(map(str, entry)) - allowed)
            if unknown:
                raise ValueError(
                    f"fault spec #{position} has unknown field(s) {unknown}; "
                    f"allowed fields: {sorted(allowed)}"
                )
            if "kind" not in entry:
                raise ValueError(
                    f"fault spec #{position} needs a 'kind' "
                    f"(one of {FAULT_KINDS})"
                )
            try:
                specs.append(FaultSpec(**{str(k): v for k, v in entry.items()}))
            except ValueError as error:
                raise ValueError(f"fault spec #{position}: {error}") from error
        try:
            seed = int(document.get("seed", 0))
        except (TypeError, ValueError) as error:
            raise ValueError(
                f"fault plan 'seed' must be an integer, got "
                f"{document.get('seed')!r}"
            ) from error
        return cls(specs, seed=seed)


# --- process-wide installation ----------------------------------------------

_active_plan: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as this process's active fault plan (None clears)."""
    global _active_plan
    _active_plan = plan


def clear() -> None:
    install(None)


def active() -> Optional[FaultPlan]:
    """The installed plan, lazily picking up ``REPRO_FAULT_PLAN`` if set."""
    global _active_plan
    if _active_plan is None:
        _active_plan = plan_from_environment()
    return _active_plan


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scoped installation: ``with injected(plan): ...`` restores on exit."""
    global _active_plan
    previous = _active_plan
    _active_plan = plan
    try:
        yield plan
    finally:
        _active_plan = previous


def plan_from_environment() -> Optional[FaultPlan]:
    """Parse ``$REPRO_FAULT_PLAN`` (JSON text, or ``@/path`` to a file)."""
    raw = os.environ.get(FAULT_PLAN_ENVIRONMENT_VARIABLE, "").strip()
    if not raw:
        return None
    if raw.startswith("@"):
        with open(raw[1:]) as handle:
            raw = handle.read()
    return FaultPlan.from_json(raw)


def perturb(site: str) -> None:
    """Consult the active plan at one parent-side hook point.

    The in-process counterpart of :func:`faulted_call`: a matching
    ``slow_task`` spec sleeps ``delay_seconds`` here (before any exception),
    and a matching ``task_exception`` spec raises
    :class:`InjectedFaultError`.  Used by the grid orchestrator's
    parent-side sites (``generate.inprocess``, ``solve.group``) and the
    availability service's sites (:data:`SERVICE_STORE_APPEND`,
    :data:`SERVICE_HANDLE_SUBMIT`, :data:`SERVICE_RUN_JOB`); a no-op when no
    plan is installed.
    """
    plan = active()
    if plan is None:
        return
    spec = plan.fire(SLOW_TASK, site)
    if spec is not None:
        time.sleep(max(0.0, spec.delay_seconds))
    if plan.fire(TASK_EXCEPTION, site) is not None:
        raise InjectedFaultError(f"injected task exception at site {site!r}")


# --- worker-side wrapper ----------------------------------------------------


def faulted_call(kind: str, delay_seconds: float, fn, /, *args, **kwargs):
    """Run ``fn`` under one injected fault (picklable pool-task wrapper).

    The parent decides *that* a fault fires (so the schedule is
    deterministic); this wrapper makes it *happen* inside the worker, where
    a real failure of that kind would occur.
    """
    if kind == WORKER_KILL:
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == SLOW_TASK:
        time.sleep(max(0.0, delay_seconds))
    elif kind == TASK_EXCEPTION:
        raise InjectedFaultError("injected task exception")
    return fn(*args, **kwargs)


# --- self-healing policy ----------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the self-healing grid execution.

    Attributes:
        max_retries: additional attempts after the first failure of a task
            (a task runs at most ``1 + max_retries`` times before the final
            in-process fallback / quarantine).
        backoff_seconds: base sleep before the first retry.
        backoff_factor: multiplier applied per further retry.
        max_backoff_seconds: backoff ceiling.
        generate_deadline_seconds: pipeline watchdog deadline for one
            structure-graph generation task; ``None`` disables the watchdog.
        solve_deadline_seconds: deadline for one wave of process-pool solve
            chunks (see :class:`~repro.engine.parallel.SweepScheduler`);
            ``None`` disables it.
        pool_restart_budget: how many times one grid run may rebuild the
            persistent worker pool after abrupt worker deaths before it
            stops trusting the pool and degrades to in-process execution.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 2.0
    generate_deadline_seconds: Optional[float] = None
    solve_deadline_seconds: Optional[float] = None
    pool_restart_budget: int = 3

    def backoff(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return min(
            self.max_backoff_seconds,
            self.backoff_seconds * self.backoff_factor ** max(0, attempt - 1),
        )


@dataclass(frozen=True)
class FailureRecord:
    """Structured account of one quarantined grid task.

    A task (generation or solve of one structure group) that failed
    ``1 + max_retries`` times is quarantined: its cases are dropped from the
    result frame and this record — stage, affected cases, attempt count and
    the final error — lands in :attr:`GridOutcome.failures` (and in
    ``grid-failures.jsonl`` next to the checkpoint shards), so a caller gets
    every solvable result plus a machine-readable reason for the rest.
    """

    stage: str  # "plan" | "generate" | "solve"
    group: str
    cases: tuple[str, ...]
    case_indices: tuple[int, ...]
    attempts: int
    error: str
    error_type: str
    metadata: dict = field(default_factory=dict)

    def as_record(self) -> dict:
        return {
            "stage": self.stage,
            "group": self.group,
            "cases": list(self.cases),
            "case_indices": list(self.case_indices),
            "attempts": self.attempts,
            "error": self.error,
            "error_type": self.error_type,
            "metadata": dict(self.metadata),
        }
