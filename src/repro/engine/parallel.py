"""Zero-copy multiprocess sweep scheduler.

``SweepScheduler`` fans a rate-parameter sweep out over worker *processes*
without copying the shared state space: the tangible reachability graph's
edge arrays, the stacked CSR coefficient matrix, the symbolic structure of
the constrained balance system and the per-scenario rate vectors are packed
into **one** :mod:`multiprocessing.shared_memory` segment that every worker
attaches read-only (zero-copy); the stationary vectors are written straight
into a shared ``(S, n)`` output block of the same segment, so the parent can
evaluate every reward measure of the whole batch with a single
``(S, n) @ (n, m)`` GEMM (:mod:`repro.engine.measures`).

Scenarios are scheduled in **contiguous sweep-order chunks** — one chunk per
worker — so each worker chains warm starts and reuses its LU/ILU
preconditioner across neighbouring sweep points, restoring the locality the
sequential path was designed around (an interleaved assignment would hand
every worker a stride of unrelated points and forfeit the reuse).

Workers cap their BLAS pools at one thread (pinning ``OMP_NUM_THREADS=1``
and friends, and calling the ``set_num_threads`` entry points of
already-loaded BLAS libraries, which a forked child inherits pre-sized) so
``max_workers`` solver processes do not oversubscribe the machine with
nested thread pools, and rebuild their solver state lazily from the shared
arrays on first touch.

The worker pool itself is **persistent**: one module-level pool survives
across :meth:`SweepScheduler.run` calls (growing when a later batch asks for
more workers), so repeated sweeps — sensitivity studies, ablation suites,
back-to-back Figure 7 runs — amortise the fork/spawn cost instead of paying
it per batch.  Each task carries the segment manifest; the worker attaches
for exactly the duration of its chunk (holding the mapping between batches
would pin the unlinked segment's memory in idle workers).  The pool is shut
down at interpreter exit (or explicitly via :func:`shutdown_shared_pool`).

The segment is unlinked by the parent as soon as the batch completes (or
fails); a run leaves no ``/dev/shm`` entries behind.
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal as signal_module
import threading
import weakref
from concurrent.futures import Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from repro.engine import faults
from repro.engine.krylov import KrylovSettings, MatrixFreeSolver, ReusableSolver
from repro.engine.system import ConstrainedSystemTemplate
from repro.spn.reachability import TangibleReachabilityGraph
from repro.statespace.chunked import ChunkedGraph

try:  # pragma: no cover - exercised indirectly via availability checks
    from multiprocessing import get_context, shared_memory
except ImportError:  # pragma: no cover - platforms without _multiprocessing
    shared_memory = None  # type: ignore[assignment]
    get_context = None  # type: ignore[assignment]

#: Prefix of every shared-memory segment created by the scheduler; tests and
#: the benchmark use it to prove no segment outlives its batch.
SEGMENT_PREFIX = "repro_sweep_"

#: Environment variables pinned to ``1`` in every worker so that
#: ``max_workers`` solver processes do not multiply into ``max_workers × B``
#: BLAS threads.
BLAS_PIN_VARIABLES = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

#: Worker status codes recorded per scenario in the shared status block.
STATUS_PENDING = 0
STATUS_SOLVED = 1
STATUS_FALLBACK = 2

#: Live :class:`SweepPlan` instances of this process — what the
#: signal-aware cleanup destroys so an interrupt never leaks ``/dev/shm``
#: segments.  Weak: a collected plan needs no cleanup (destroy is
#: idempotent and the parent normally unlinks in its ``with`` block).
_LIVE_PLANS: "weakref.WeakSet[SweepPlan]" = weakref.WeakSet()


class SharedMemoryUnavailable(RuntimeError):
    """Shared-memory segments cannot be created on this platform/sandbox."""


def shared_memory_available() -> bool:
    """Whether a shared-memory segment can actually be created right now.

    Probes with a one-page segment: importability of the module does not
    guarantee ``shm_open`` works (locked-down sandboxes, full ``/dev/shm``).
    """
    if shared_memory is None:
        return False
    try:
        probe = shared_memory.SharedMemory(create=True, size=1)
    except OSError:
        return False
    probe.close()
    probe.unlink()
    return True


def leaked_segments() -> set[str]:
    """Names of scheduler-created segments currently present in ``/dev/shm``.

    Empty on platforms without a ``/dev/shm``.  Tests and the benchmark
    compare snapshots of this around a batch to prove the parent unlinked
    its segment.
    """
    directory = "/dev/shm"
    if not os.path.isdir(directory):
        return set()
    return {
        name for name in os.listdir(directory) if name.startswith(SEGMENT_PREFIX)
    }


def contiguous_chunks(count: int, workers: int) -> list[tuple[int, ...]]:
    """Split ``range(count)`` into at most ``workers`` contiguous runs.

    Neighbouring sweep points have nearly identical stationary vectors, so
    each worker must receive an unbroken run of them (warm starts and stale
    factorisations are only useful between neighbours).  Sizes differ by at
    most one.
    """
    if count <= 0:
        return []
    return [
        tuple(int(i) for i in chunk)
        for chunk in np.array_split(np.arange(count), max(1, min(workers, count)))
        if chunk.size
    ]


def _align(offset: int, boundary: int = 64) -> int:
    return (offset + boundary - 1) // boundary * boundary


@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside the shared segment."""

    offset: int
    dtype: str
    shape: tuple[int, ...]


class SweepPlan:
    """Parent-side owner of the one shared segment backing a sweep.

    Packs the read-only inputs (graph arrays, template structure, rate
    matrix) and the writable outputs (solution block, per-scenario times and
    status) into a single named segment, and exposes a picklable
    ``manifest`` from which workers attach views.  The parent must call
    :meth:`destroy` (or use the plan as a context manager) so the segment is
    unlinked even when the batch fails.
    """

    def __init__(
        self,
        graph: TangibleReachabilityGraph,
        template: Optional[ConstrainedSystemTemplate],
        rate_matrix: np.ndarray,
    ) -> None:
        if shared_memory is None:
            raise SharedMemoryUnavailable(
                "multiprocessing.shared_memory is not importable on this platform"
            )
        rate_matrix = np.ascontiguousarray(rate_matrix, dtype=np.float64)
        scenarios = rate_matrix.shape[0]
        n = graph.number_of_states
        chunked = isinstance(graph, ChunkedGraph)
        if chunked:
            # Out-of-core groups ship no graph arrays at all: the chunk
            # manifest on disk *is* the shared structure (workers open it
            # read-only), so the segment holds only the per-scenario rates
            # and the output blocks.
            self.chunk_directory: Optional[str] = str(graph.directory)
            inputs: dict[str, np.ndarray] = {"rates": rate_matrix}
            coefficients = None
        else:
            self.chunk_directory = None
            coefficients = graph.edge_coefficient_matrix.tocsr()
            template_arrays = template.shared_arrays()
            inputs = {
                "edge_sources": np.ascontiguousarray(graph.edge_sources),
                "edge_targets": np.ascontiguousarray(graph.edge_targets),
                "coeff_data": np.ascontiguousarray(coefficients.data, dtype=np.float64),
                "coeff_indices": np.ascontiguousarray(coefficients.indices),
                "coeff_indptr": np.ascontiguousarray(coefficients.indptr),
                "tpl_edge_sources": np.ascontiguousarray(template_arrays["edge_sources"]),
                "tpl_edge_mask": np.ascontiguousarray(template_arrays["edge_mask"]),
                "tpl_positions": np.ascontiguousarray(template_arrays["positions"]),
                "tpl_csc_indices": np.ascontiguousarray(template_arrays["csc_indices"]),
                "tpl_csc_indptr": np.ascontiguousarray(template_arrays["csc_indptr"]),
                "rates": rate_matrix,
            }
        outputs: dict[str, tuple[tuple[int, ...], np.dtype]] = {
            "solutions": ((scenarios, n), np.dtype(np.float64)),
            "times": ((scenarios,), np.dtype(np.float64)),
            "status": ((scenarios,), np.dtype(np.int8)),
        }

        specs: dict[str, _ArraySpec] = {}
        offset = 0
        for name, array in inputs.items():
            offset = _align(offset)
            specs[name] = _ArraySpec(offset, array.dtype.str, array.shape)
            offset += array.nbytes
        for name, (shape, dtype) in outputs.items():
            offset = _align(offset)
            specs[name] = _ArraySpec(offset, dtype.str, shape)
            offset += int(np.prod(shape)) * dtype.itemsize

        name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(4)}"
        try:
            self._segment = shared_memory.SharedMemory(
                create=True, size=max(1, offset), name=name
            )
        except OSError as error:
            raise SharedMemoryUnavailable(
                f"could not create a {offset}-byte shared-memory segment: {error}"
            ) from error
        self._specs = specs
        self.coefficient_shape = (
            tuple(coefficients.shape) if coefficients is not None else None
        )
        self.number_of_states = n
        self.scenarios = scenarios
        try:
            for name, array in inputs.items():
                self._view(name)[...] = array
            self.solutions = self._view("solutions")
            self.solutions.fill(0.0)
            self.times = self._view("times")
            self.times.fill(0.0)
            self.status = self._view("status")
            self.status.fill(STATUS_PENDING)
        except BaseException:
            self.destroy()
            raise
        _LIVE_PLANS.add(self)
        install_signal_cleanup()

    def _view(self, name: str) -> np.ndarray:
        spec = self._specs[name]
        return np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=self._segment.buf,
            offset=spec.offset,
        )

    @property
    def segment_name(self) -> str:
        return self._segment.name

    def manifest(self) -> dict:
        """Everything a worker needs to attach: segment name and layout."""
        return {
            "segment": self._segment.name,
            "specs": self._specs,
            "coefficient_shape": self.coefficient_shape,
            "number_of_states": self.number_of_states,
            "chunk_directory": self.chunk_directory,
        }

    def destroy(self) -> None:
        """Release and unlink the segment (idempotent).

        The writable views (``solutions``/``times``/``status``) die with the
        segment — read them (or copy what you need) beforehand, as
        :meth:`SweepScheduler.run` does inside its ``with`` block.
        """
        segment, self._segment = self._segment, None
        _LIVE_PLANS.discard(self)
        if segment is None:
            return
        # Views into the buffer must be dropped before close() or the
        # exported-pointer check in BufferWrapper raises.
        for attribute in ("solutions", "times", "status"):
            if hasattr(self, attribute):
                setattr(self, attribute, None)
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SweepPlan":
        return self

    def __exit__(self, *exc_info) -> None:
        self.destroy()


# --- worker side ----------------------------------------------------------


def _attach_untracked(name: str):
    """Attach to the parent's segment without resource-tracker registration.

    On Python ≤ 3.12 merely attaching registers the segment with a resource
    tracker, which then wrongly unlinks it (or warns about "leaks") when a
    worker exits while the parent and its siblings still use it.  Ownership
    stays with the parent, which unlinks exactly once in
    :meth:`SweepPlan.destroy`; workers therefore attach with registration
    suppressed (the standard workaround until the ``track=False`` parameter
    of Python 3.13).
    """
    try:  # pragma: no cover - tracker internals vary by version
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
    except Exception:
        return shared_memory.SharedMemory(name=name)
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class _WorkerContext:
    """Per-process solver state rebuilt lazily from the shared segment."""

    def __init__(self, manifest: dict, settings: KrylovSettings) -> None:
        self.segment = _attach_untracked(manifest["segment"])
        self.settings = settings
        self.n = int(manifest["number_of_states"])
        arrays: dict[str, np.ndarray] = {}
        for name, spec in manifest["specs"].items():
            view = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=self.segment.buf,
                offset=spec.offset,
            )
            if name not in ("solutions", "times", "status"):
                view.flags.writeable = False
            arrays[name] = view
        self.rates = arrays["rates"]
        self.solutions = arrays["solutions"]
        self.times = arrays["times"]
        self.status = arrays["status"]
        self._arrays = arrays
        chunk_directory = manifest.get("chunk_directory")
        if chunk_directory is not None:
            # Out-of-core batch: the structure lives in the chunk files, not
            # the segment; every worker streams the same read-only manifest.
            self.edge_sources = self.edge_targets = None
            self.coefficients_T = None
            self.solver = None
            self.matrix_free: Optional[MatrixFreeSolver] = MatrixFreeSolver(
                ChunkedGraph.open(chunk_directory), settings
            )
            return
        self.matrix_free = None
        self.edge_sources = arrays["edge_sources"]
        self.edge_targets = arrays["edge_targets"]
        # C.T as a CSC matrix, built once: edge_rates(θ) = Cᵀ · rate_vector(θ).
        self.coefficients_T = sparse.csr_matrix(
            (arrays["coeff_data"], arrays["coeff_indices"], arrays["coeff_indptr"]),
            shape=manifest["coefficient_shape"],
        ).T
        template = ConstrainedSystemTemplate.from_shared_arrays(
            {
                "edge_sources": arrays["tpl_edge_sources"],
                "edge_mask": arrays["tpl_edge_mask"],
                "positions": arrays["tpl_positions"],
                "csc_indices": arrays["tpl_csc_indices"],
                "csc_indptr": arrays["tpl_csc_indptr"],
            },
            self.n,
        )
        self.solver = ReusableSolver(template, settings)

    def close(self) -> None:
        """Drop every view into the segment and detach from it.

        Called when a later task arrives with a *different* segment (the
        previous batch's plan is gone; its segment was already unlinked by
        the parent, so this close releases the last mapping).
        """
        self.solver = None
        self.matrix_free = None
        self.coefficients_T = None
        self.edge_sources = self.edge_targets = self.rates = None
        self.solutions = self.times = self.status = None
        self._arrays = None
        segment, self.segment = self.segment, None
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - lingering view; freed at exit
                pass

    def _fallback_generator(self, edge_rates: np.ndarray) -> sparse.csr_matrix:
        """Fresh CTMC generator for the rare reuse-failure fallback path.

        Mirrors :func:`repro.spn.ctmc_export.generator_matrix` from the
        shared edge arrays (the worker holds no graph object).
        """
        diagonal = np.arange(self.n, dtype=np.int64)
        exit_rates = np.bincount(
            self.edge_sources, weights=edge_rates, minlength=self.n
        )
        rows = np.concatenate([self.edge_sources, diagonal])
        cols = np.concatenate([self.edge_targets, diagonal])
        data = np.concatenate([edge_rates, -exit_rates])
        return sparse.coo_matrix(
            (data, (rows, cols)), shape=(self.n, self.n)
        ).tocsr()

    def run_chunk(self, indices: Sequence[int]) -> None:
        if self.matrix_free is not None:
            for index in indices:
                started = perf_counter()
                self.solutions[index, :] = self.matrix_free.solve(
                    self.rates[index], scenario_index=index
                )
                self.times[index] = perf_counter() - started
                self.status[index] = STATUS_SOLVED
            return
        for index in indices:
            started = perf_counter()
            edge_rates = np.asarray(
                self.coefficients_T.dot(self.rates[index]), dtype=np.float64
            ).ravel()
            probabilities = self.solver.solve(
                edge_rates,
                lambda: self._fallback_generator(edge_rates),
                scenario_index=index,
            )
            self.solutions[index, :] = probabilities
            self.times[index] = perf_counter() - started
            self.status[index] = (
                STATUS_FALLBACK if self.solver.last_solve_used_fallback else STATUS_SOLVED
            )


#: ``set_num_threads``-style entry points probed on loaded BLAS libraries
#: (stock OpenBLAS, the renamed scipy/numpy wheel builds, MKL, BLIS).
_BLAS_LIMIT_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
    "MKL_Set_Num_Threads",
    "bli_thread_set_num_threads",
)


def _limit_blas_threads() -> None:
    """Cap every loaded BLAS pool at one thread in this worker.

    Environment pinning alone is not enough under the default ``fork``
    start method: the child inherits a parent whose OpenBLAS/MKL pools were
    already sized when the library loaded, and ``OMP_NUM_THREADS`` is only
    read at load time.  So, mirroring what ``threadpoolctl`` does (used
    when installed), the worker walks its memory map for loaded BLAS
    libraries and calls their ``set_num_threads`` entry points directly.
    Best-effort: an exotic BLAS without a recognised entry point merely
    keeps its inherited pool.
    """
    try:  # pragma: no cover - optional dependency
        import threadpoolctl

        threadpoolctl.threadpool_limits(1)
        return
    except Exception:
        pass
    try:
        import ctypes

        libraries = []
        with open("/proc/self/maps") as maps:
            for line in maps:
                fields = line.split(" ", 5)
                path = fields[-1].strip() if len(fields) >= 6 else ""
                basename = os.path.basename(path).lower()
                if not path.startswith("/"):
                    continue
                if any(k in basename for k in ("openblas", "mkl_rt", "blis")):
                    if path not in libraries:
                        libraries.append(path)
        for path in libraries:
            try:
                library = ctypes.CDLL(path)  # dlopen of a loaded path: same handle
            except OSError:
                continue
            for symbol in _BLAS_LIMIT_SYMBOLS:
                entry_point = getattr(library, symbol, None)
                if entry_point is not None:
                    try:
                        entry_point(1)
                    except Exception:
                        pass
    except Exception:  # pragma: no cover - /proc-less platforms
        pass


def _worker_initializer() -> None:
    # The environment pins cover libraries loaded after this point (and the
    # whole process under "spawn"); the runtime cap covers pools the worker
    # inherited from an already-initialised parent under "fork".  The worker
    # always pins to ONE BLAS thread: the scheduler never runs more workers
    # than effective cores (clamped upstream via repro.engine.dispatch), so
    # per-worker BLAS pools would only multiply into oversubscription.
    for variable in BLAS_PIN_VARIABLES:
        os.environ[variable] = "1"
    _limit_blas_threads()
    # Under "fork" the worker inherits the parent's signal-cleanup handler,
    # which must never run here: it would terminate the parent's pool from
    # inside a worker (SIGKILLing its own siblings) and stall the executor's
    # broken-pool teardown, which SIGTERMs workers and joins them.  Workers
    # die on the default dispositions; the parent owns all cleanup.
    try:
        signal_module.signal(signal_module.SIGTERM, signal_module.SIG_DFL)
        signal_module.signal(signal_module.SIGINT, signal_module.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread embed
        pass


def _worker_run_chunk(
    manifest: dict, settings: KrylovSettings, indices: tuple[int, ...]
) -> tuple[int, ...]:
    """Solve one contiguous chunk of the manifested segment.

    The manifest travels with every task (it is a few hundred bytes) so the
    worker can outlive the batch that created it.  The context — segment
    mapping, rebuilt template, solver state — lives exactly as long as the
    chunk: attaching to a segment costs microseconds, whereas holding the
    mapping after the parent unlinks the segment would pin the whole
    (S, n) block's physical memory in an idle worker indefinitely.
    """
    context = _WorkerContext(manifest, settings)
    try:
        context.run_chunk(indices)
    finally:
        context.close()
    return indices


# --- scheduler ------------------------------------------------------------


def _pool_context():
    """The multiprocessing start method used for worker pools.

    ``fork`` (when available) attaches workers in microseconds and is the
    default on Linux; set ``REPRO_MP_START=spawn`` to force the portable
    method.  Either way the state space travels through the shared segment,
    never through pickles.
    """
    import multiprocessing

    requested = os.environ.get("REPRO_MP_START")
    if requested:
        return get_context(requested)
    methods = multiprocessing.get_all_start_methods()
    return get_context("fork" if "fork" in methods else "spawn")


def start_method() -> str:
    """Name of the start method worker pools will use (``fork``/``spawn``)."""
    if get_context is None:
        return "spawn"
    return _pool_context().get_start_method()


class PersistentWorkerPool:
    """A process pool kept alive across sweep batches.

    Fork/spawn cost is paid once per session instead of once per batch:
    repeated sweeps (sensitivity, ablations, consecutive Figure 7 runs)
    reuse the same worker processes, which merely re-attach to each batch's
    fresh shared segment.  The pool grows (is replaced) when a batch asks
    for more workers than it holds and is torn down at interpreter exit.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers = 0
        self._method: Optional[str] = None
        self._inflight: dict[str, int] = {}
        self._inflight_lock = threading.Lock()
        #: How many times this pool was rebuilt after abrupt worker deaths
        #: (grid provenance reads deltas of this across a run).
        self.rebuilds = 0

    def is_warm(self, workers: int) -> bool:
        """Whether a pool with at least ``workers`` workers is already alive."""
        return self._pool is not None and self._workers >= workers

    def is_broken(self) -> bool:
        """Whether the current executor has marked itself broken."""
        return self._pool is not None and bool(getattr(self._pool, "_broken", False))

    def submit(self, kind: str, workers: int, fn, /, *args, **kwargs) -> Future:
        """Submit one tagged task, growing the pool to at least ``workers``.

        The pool runs a *mix* of task types since the grid pipeline landed —
        structure-graph ``"generate"`` tasks interleave with ``"solve"``
        chunks of the sweep scheduler on the same workers.  Tagging keeps a
        live in-flight count per kind (:meth:`inflight`), which the pipeline
        budget and the progress log read to see how much of the pool each
        stage currently occupies.

        A pool whose workers died since the last submission self-heals: the
        broken executor is replaced (counted in :attr:`rebuilds`) and the
        task lands on the fresh one.  An installed fault plan is consulted
        here — the parent-side decision point, so injection schedules stay
        deterministic — and a doomed task is wrapped in
        :func:`repro.engine.faults.faulted_call`.
        """
        plan = faults.active()
        if plan is not None:
            spec = (
                plan.fire(faults.WORKER_KILL, kind)
                or plan.fire(faults.TASK_EXCEPTION, kind)
                or plan.fire(faults.SLOW_TASK, kind)
            )
            if spec is not None:
                args = (spec.kind, spec.delay_seconds, fn) + args
                fn = faults.faulted_call
        try:
            future = self.executor(workers).submit(fn, *args, **kwargs)
        except BrokenProcessPool:
            # The pool broke between the health check and the submission
            # (a worker died mid-call): rebuild once and resubmit.
            self.rebuild()
            future = self.executor(workers).submit(fn, *args, **kwargs)
        with self._inflight_lock:
            self._inflight[kind] = self._inflight.get(kind, 0) + 1

        def _finished(_: Future) -> None:
            with self._inflight_lock:
                self._inflight[kind] = max(0, self._inflight.get(kind, 0) - 1)

        future.add_done_callback(_finished)
        return future

    def inflight(self, kind: Optional[str] = None) -> int:
        """Tasks submitted but not yet finished, for one kind or overall."""
        with self._inflight_lock:
            if kind is not None:
                return self._inflight.get(kind, 0)
            return sum(self._inflight.values())

    def executor(self, workers: int) -> ProcessPoolExecutor:
        """The shared executor, (re)built to hold at least ``workers`` workers.

        A pool that is too small (or uses a stale start method) is *retired*,
        not killed: its already-submitted chunks run to completion and its
        workers exit afterwards, so a concurrent batch on the old pool is
        never cancelled by a bigger batch arriving.

        A pool marked broken (workers died abruptly) is replaced first, so
        callers always receive a usable executor.
        """
        install_signal_cleanup()
        if self._pool is not None and getattr(self._pool, "_broken", False):
            self.rebuild()
        context = _pool_context()
        method = context.get_start_method()
        if (
            self._pool is None
            or self._workers < workers
            or self._method != method
        ):
            retired, self._pool = self._pool, None
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_initializer,
            )
            self._workers = workers
            self._method = method
            if retired is not None:
                retired.shutdown(wait=False, cancel_futures=False)
        return self._pool

    def rebuild(self) -> None:
        """Replace a (presumed) broken pool with a fresh one on next use.

        Counted in :attr:`rebuilds` — the grid orchestrator compares that
        counter against its :class:`~repro.engine.faults.RetryPolicy` restart
        budget and records the delta in the run's provenance.
        """
        self.rebuilds += 1
        self.shutdown()

    def kill_workers(self) -> int:
        """SIGKILL every live worker of the current pool; returns the count.

        The watchdog's hammer: a hung worker cannot be cancelled through the
        executor API, so the watchdog kills the processes outright, lets the
        pending futures fail with ``BrokenProcessPool`` and relies on the
        normal rebuild-and-retry path to re-run their tasks.
        """
        pool = self._pool
        if pool is None:
            return 0
        killed = 0
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.kill()
                killed += 1
            except Exception:  # pragma: no cover - process already reaped
                pass
        return killed

    def shutdown(self) -> None:
        """Terminate the pooled workers (idempotent)."""
        pool, self._pool = self._pool, None
        self._workers = 0
        self._method = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def terminate(self) -> None:
        """Hard-stop the pool without waiting (signal-handler safe).

        Unlike :meth:`shutdown` this never blocks on live tasks: workers are
        SIGKILLed first, then the executor is dismantled with
        ``wait=False``.  Used by the signal-aware cleanup so an interrupt
        cannot hang on a wedged worker.
        """
        self.kill_workers()
        pool, self._pool = self._pool, None
        self._workers = 0
        self._method = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


#: The module-level pool shared by every :class:`SweepScheduler`.
shared_pool = PersistentWorkerPool()


def shutdown_shared_pool() -> None:
    """Shut down the persistent worker pool (it restarts on next use)."""
    shared_pool.shutdown()


atexit.register(shutdown_shared_pool)


# --- signal-aware cleanup ---------------------------------------------------

_previous_handlers: dict[int, object] = {}

#: Process that installed the handlers; a forked child re-raising through an
#: inherited handler must not run the parent's cleanup (see
#: :func:`_signal_handler`).
_install_pid: Optional[int] = None


def cleanup_shared_resources() -> None:
    """Best-effort release of every shared OS resource this process holds.

    Destroys (unlinks) all live sweep segments and hard-stops the persistent
    worker pool.  Idempotent and exception-free: safe to call from a signal
    handler, atexit, or test teardown.
    """
    for plan in list(_LIVE_PLANS):
        try:
            plan.destroy()
        except Exception:  # pragma: no cover - destroy is already lenient
            pass
    try:
        shared_pool.terminate()
    except Exception:  # pragma: no cover - executor internals mid-teardown
        pass


def _signal_handler(signum: int, frame) -> None:  # pragma: no cover - exercised
    # in a subprocess test: coverage of handlers inside dying processes does
    # not report.
    if _install_pid is not None and os.getpid() != _install_pid:
        # Forked child that inherited the handler before its initializer ran:
        # the shared resources belong to the parent, so just die with the
        # default disposition.
        signal_module.signal(signum, signal_module.SIG_DFL)
        signal_module.raise_signal(signum)
        return
    cleanup_shared_resources()
    previous = _previous_handlers.get(signum)
    if callable(previous):
        previous(signum, frame)
        return
    signal_module.signal(signum, signal_module.SIG_DFL)
    signal_module.raise_signal(signum)


def install_signal_cleanup() -> None:
    """Route SIGINT/SIGTERM through :func:`cleanup_shared_resources`.

    Installed lazily the first time this process creates a sweep segment or
    touches the persistent pool, so an interrupted run never leaves
    ``/dev/shm`` segments or orphaned workers behind.  Idempotent; previous
    handlers are chained (or the default disposition re-raised, so exit
    codes still reflect the signal).  Only the main thread may install
    handlers — calls from worker threads are no-ops.
    """
    global _install_pid
    if threading.current_thread() is not threading.main_thread():
        return
    _install_pid = os.getpid()
    for signum in (signal_module.SIGINT, signal_module.SIGTERM):
        if signum in _previous_handlers:
            continue
        try:
            current = signal_module.getsignal(signum)
            if current is _signal_handler:
                continue
            _previous_handlers[signum] = current
            signal_module.signal(signum, _signal_handler)
        except (ValueError, OSError):  # pragma: no cover - exotic embeddings
            _previous_handlers.pop(signum, None)


@dataclass
class SweepOutcome:
    """Raw per-scenario outputs of one scheduled sweep."""

    solutions: np.ndarray  # (S, n) stationary vectors
    solve_seconds: np.ndarray  # (S,) per-scenario solve time
    status: np.ndarray  # (S,) STATUS_* codes


class SweepScheduler:
    """Process-based executor of one rate sweep over one shared state space.

    Args:
        graph: the shared tangible reachability graph (must carry the
            per-transition coefficient matrices).
        template: the symbolic constrained-system structure of ``graph``.
        settings: Krylov solver policy replicated in every worker.
        max_workers: number of worker processes.
        reuse_pool: run batches on the module's persistent worker pool
            (the default) instead of a throwaway per-batch pool.
        deadline_seconds: watchdog deadline for one wave of chunks on the
            persistent pool.  A wave still unfinished after the deadline has
            its workers SIGKILLed; the broken-pool retry of :meth:`run` then
            rebuilds the pool and re-runs the batch (with a doubled
            deadline), so a hung worker cannot stall the sweep forever.
            ``None`` (the default) disables the watchdog.
    """

    def __init__(
        self,
        graph: TangibleReachabilityGraph,
        template: Optional[ConstrainedSystemTemplate],
        settings: KrylovSettings,
        max_workers: int,
        reuse_pool: bool = True,
        deadline_seconds: Optional[float] = None,
    ) -> None:
        if not graph.has_coefficients:
            raise ValueError(
                "the process scheduler needs a graph with per-transition "
                "coefficient matrices"
            )
        if template is None and not isinstance(graph, ChunkedGraph):
            raise ValueError(
                "only chunked graphs may be scheduled without a system template"
            )
        if not shared_memory_available():
            raise SharedMemoryUnavailable(
                "shared-memory segments cannot be created in this environment"
            )
        plan = faults.active()
        if plan is not None and plan.fire(faults.SHM_ATTACH_FAILURE, "sweep.plan"):
            raise SharedMemoryUnavailable("injected shared-memory attach failure")
        self.graph = graph
        self.template = template
        self.settings = settings
        self.max_workers = max(1, int(max_workers))
        self.reuse_pool = reuse_pool
        self.deadline_seconds = deadline_seconds

    def _await(self, futures: Sequence[Future]) -> None:
        """Drain one wave of chunk futures, enforcing the deadline if set."""
        if self.deadline_seconds is not None:
            _, not_done = wait(futures, timeout=self.deadline_seconds)
            if not_done:
                # A wave past its deadline means at least one hung worker.
                # Kill them all: the stuck futures fail with
                # BrokenProcessPool below, and run()'s retry path rebuilds.
                shared_pool.kill_workers()
        for future in futures:
            future.result()

    def _submit_chunks(self, manifest: dict, chunks) -> None:
        """Run every chunk to completion on the (persistent or fresh) pool."""
        if self.reuse_pool:
            self._await(
                [
                    shared_pool.submit(
                        "solve",
                        len(chunks),
                        _worker_run_chunk,
                        manifest,
                        self.settings,
                        chunk,
                    )
                    for chunk in chunks
                ]
            )
            return
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            mp_context=_pool_context(),
            initializer=_worker_initializer,
        ) as pool:
            futures = [
                pool.submit(_worker_run_chunk, manifest, self.settings, chunk)
                for chunk in chunks
            ]
            for future in futures:
                future.result()

    def run(self, rate_matrix: np.ndarray) -> SweepOutcome:
        """Solve every row of the ``(S, T)`` rate matrix; returns all outputs.

        Rows are split into contiguous chunks, one per worker; the solution
        block is copied out of the shared segment before it is unlinked.
        A persistent pool whose workers died (e.g. OOM-killed) is rebuilt
        once and the batch retried before the failure propagates.
        """
        rate_matrix = np.ascontiguousarray(rate_matrix, dtype=np.float64)
        scenarios = rate_matrix.shape[0]
        chunks = contiguous_chunks(scenarios, self.max_workers)
        if not chunks:
            n = self.graph.number_of_states
            return SweepOutcome(
                solutions=np.zeros((0, n)),
                solve_seconds=np.zeros(0),
                status=np.zeros(0, dtype=np.int8),
            )
        with SweepPlan(self.graph, self.template, rate_matrix) as plan:
            manifest = plan.manifest()
            try:
                self._submit_chunks(manifest, chunks)
            except BrokenProcessPool:
                if not self.reuse_pool:
                    raise
                shared_pool.rebuild()
                if self.deadline_seconds is not None:
                    # The death may have been the watchdog's own kill of a
                    # slow-but-healthy wave; give the retry more room.
                    self.deadline_seconds *= 2
                self._submit_chunks(manifest, chunks)
            solutions = np.array(plan.solutions)
            solve_seconds = np.array(plan.times)
            status = np.array(plan.status)
        if np.any(status == STATUS_PENDING):
            unsolved = np.flatnonzero(status == STATUS_PENDING)
            raise RuntimeError(
                f"{unsolved.size} scenario(s) came back unsolved from the "
                f"worker pool (first: {int(unsolved[0])})"
            )
        return SweepOutcome(
            solutions=solutions, solve_seconds=solve_seconds, status=status
        )
