"""Persistent on-disk cache of tangible reachability graphs.

The structure of a net's tangible reachability graph depends only on the net
itself (places, arcs, guards, immediate race data), the exploration limit and
the optional symmetry canonicalizer — not on the timed rates, which the
sweep machinery re-rates per scenario anyway.  Repeat invocations of the
case-study runner, the CLI or any :class:`~repro.engine.batch.ScenarioBatchEngine`
over an unchanged net therefore never need to re-explore: :class:`TRGCache`
stores the graph's sparse-native arrays as one ``.npz`` file keyed by a
content hash of the compiled net structure, ``max_states`` and the
canonicalizer identity.

Cache location: ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro/trg``.

Canonicalizers are opaque callables, so a graph generated with one is only
cacheable when the canonicalizer declares a stable identity via a
``cache_id`` attribute (the cloud model's symmetry canonicalizer does);
otherwise the cache is bypassed rather than risking a stale hit.

Entries are *integrity-checked*: every stored ``.npz`` carries a sha256
digest over its logical payload (array names, dtypes, shapes and bytes),
recomputed and verified on load.  A corrupt or truncated entry — bad zip,
missing arrays, wrong dtype, digest mismatch — is treated as a miss: the
entry file is **deleted** so the caller regenerates and overwrites it,
instead of the corruption propagating as an exception or, worse, as wrong
numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

import numpy as np
from scipy import sparse

from repro.engine import faults
from repro.spn.enabling import CompiledNet
from repro.spn.reachability import TangibleReachabilityGraph
from repro.statespace.chunked import (
    ChunkedGraph,
    CorruptChunkError,
    MANIFEST_NAME,
    write_chunked_graph,
)
from repro.statespace.integrity import DIGEST_ARRAY, payload_digest

#: Bump when the stored array layout changes; part of every cache key.
#: Version 2 added the mandatory ``payload_sha256`` integrity digest.
CACHE_FORMAT_VERSION = 2


def default_cache_directory() -> Path:
    """Resolve the cache directory (``$REPRO_CACHE_DIR`` or the user cache)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "trg"


def structure_fingerprint(
    net: CompiledNet, include_rates: bool = True, include_name: bool = True
) -> str:
    """Canonical JSON description of everything the TRG structure depends on.

    Timed rates are included by default: the cached graph carries a rate
    vector and edge rates, so two nets differing only in rates are stored
    (cheaply) as separate entries instead of being re-rated on load.

    With ``include_rates=False`` (and typically ``include_name=False``) the
    fingerprint describes only the *rate-independent* structure — places,
    initial marking, arcs, guards, immediate race data — which is what the
    grid orchestrator (:mod:`repro.engine.grid`) groups heterogeneous
    scenarios by: two nets equal under this reduced fingerprint share one
    tangible reachability graph up to a re-rating.
    """
    description = {
        "format": CACHE_FORMAT_VERSION,
        "places": list(net.place_names),
        "initial_marking": list(net.initial_marking),
        "transitions": [
            {
                "name": t.name,
                "immediate": t.immediate,
                "infinite_server": t.infinite_server,
                "weight": t.weight,
                "priority": t.priority,
                "inputs": sorted(t.inputs),
                "outputs": sorted(t.outputs),
                "inhibitors": sorted(t.inhibitors),
                "guard": t.guard_source,
                **({"rate": t.rate} if include_rates else {}),
            }
            for t in net.transitions
        ],
    }
    if include_name:
        description["name"] = net.name
    return json.dumps(description, sort_keys=True, separators=(",", ":"))


def cache_key(
    net: CompiledNet, max_states: int, canonicalize_id: Optional[str]
) -> str:
    """SHA-256 key of one (net structure, max_states, canonicalizer) triple."""
    digest = hashlib.sha256()
    digest.update(structure_fingerprint(net).encode())
    digest.update(f"|max_states={max_states}".encode())
    digest.update(f"|canonicalize={canonicalize_id or ''}".encode())
    return digest.hexdigest()


def _truncate_entry(path: Path) -> None:
    """Physically truncate an entry (the ``corrupt_cache_read`` injection).

    Chopping the file in half — rather than short-circuiting the load —
    makes the injected fault exercise the *real* corruption path: the bad
    zip / digest failure is detected by the same code that would catch a
    torn write or disk error, and the entry is deleted and regenerated.
    """
    try:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:  # pragma: no cover - vanished or unwritable entry
        pass


def _truncate_chunk_entry(directory: Path) -> None:
    """Chunked-entry analogue of :func:`_truncate_entry`.

    Truncates the first chunk payload file of the entry directory, so the
    injected ``corrupt_cache_read`` fault exercises the same per-chunk
    digest verification that catches a real torn write.
    """
    for path in sorted(directory.glob("chunk-*.npy")):
        _truncate_entry(path)
        return


def _tree_size_bytes(directory: Path) -> int:
    """Total on-disk bytes of a chunked entry directory."""
    total = 0
    for path in directory.rglob("*"):
        try:
            if path.is_file():
                total += path.stat().st_size
        except OSError:  # pragma: no cover - concurrently removed file
            pass
    return total


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one stored graph (for ``repro cache show``).

    ``size_bytes`` is the entry's total on-disk footprint: the ``.npz``
    file size for in-RAM entries, the summed chunk/manifest file sizes for
    chunked entry directories.
    """

    path: Path
    key: str
    size_bytes: int
    modified: float
    representation: str = "in_ram"


class TRGCache:
    """File-per-graph cache of :class:`TangibleReachabilityGraph` arrays."""

    def __init__(self, directory: Optional[os.PathLike] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_directory()

    def _path(self, key: str) -> Path:
        return self.directory / f"trg-{key}.npz"

    def _chunk_path(self, key: str) -> Path:
        return self.directory / f"trg-{key}.chunks"

    # --- lookup -------------------------------------------------------------

    def load(
        self,
        net: CompiledNet,
        max_states: int,
        canonicalize_id: Optional[str] = None,
        key: Optional[str] = None,
    ) -> Optional[TangibleReachabilityGraph]:
        """The cached graph for this configuration, or ``None`` on a miss.

        A corrupt or unreadable entry — bad zip, missing arrays, wrong
        dtype, integrity-digest mismatch — counts as a miss **and is
        deleted**, so the caller regenerates and overwrites it (the cache
        self-heals instead of tripping on the same torn file forever).  An
        explicit ``key`` overrides the default rate-inclusive
        :func:`cache_key` — the grid orchestrator keys by *rateless*
        structure, because it re-rates every loaded graph with each
        scenario's full rate assignment anyway.
        """
        path = self._path(key or cache_key(net, max_states, canonicalize_id))
        if not path.exists():
            return None
        plan = faults.active()
        if plan is not None and plan.fire(faults.CORRUPT_CACHE_READ, "cache.load"):
            _truncate_entry(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in data.files}
            self._verify_digest(arrays)
            return self._graph_from_arrays(net, arrays)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile, zlib.error):
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - unwritable cache directory
                pass
            return None

    def load_chunked(
        self,
        net: CompiledNet,
        max_states: int,
        canonicalize_id: Optional[str] = None,
        key: Optional[str] = None,
    ) -> Optional[ChunkedGraph]:
        """The cached *chunked* graph for this configuration, or ``None``.

        Chunked entries share the key space with ``.npz`` entries (same
        :func:`cache_key`) but live in ``trg-<key>.chunks/`` directories.
        Every chunk's payload digest is verified against the manifest; any
        corrupt, missing or unreadable chunk — or a torn manifest — deletes
        the **whole entry directory** and reports a miss, so the caller
        regenerates exactly this entry and nothing else.
        """
        directory = self._chunk_path(
            key or cache_key(net, max_states, canonicalize_id)
        )
        if not (directory / MANIFEST_NAME).exists():
            return None
        plan = faults.active()
        if plan is not None and plan.fire(faults.CORRUPT_CACHE_READ, "cache.load"):
            _truncate_chunk_entry(directory)
        try:
            graph = ChunkedGraph.open(directory, net)
            graph.verify()
            return graph
        except (OSError, ValueError, KeyError, CorruptChunkError):
            shutil.rmtree(directory, ignore_errors=True)
            return None

    def generate_chunked(
        self,
        net: CompiledNet,
        max_states: int,
        canonicalize: Optional[Callable] = None,
        canonicalize_id: Optional[str] = None,
        key: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> ChunkedGraph:
        """Generate ``net``'s graph straight into a chunked cache entry.

        Unlike the in-RAM path (generate, then :meth:`store`), out-of-core
        generation streams each completed wave to disk as it happens — there
        is never a full graph object to persist after the fact.  The entry
        is built in a temporary sibling directory and renamed into place, so
        concurrent readers only ever see complete entries.
        """
        key = key or cache_key(net, max_states, canonicalize_id)
        path = self._chunk_path(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(dir=self.directory, prefix=f".trg-{key}.")
        )
        try:
            kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
            write_chunked_graph(
                net,
                staging,
                max_states=max_states,
                canonicalize=canonicalize,
                **kwargs,
            )
            if path.exists():
                shutil.rmtree(path, ignore_errors=True)
            os.replace(staging, path)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)
        return ChunkedGraph.open(path, compiled)

    @staticmethod
    def _verify_digest(arrays: dict) -> None:
        """Raise ``ValueError`` unless the embedded payload digest matches."""
        if DIGEST_ARRAY not in arrays:
            raise ValueError("cache entry carries no integrity digest")
        expected = np.asarray(arrays[DIGEST_ARRAY], dtype=np.uint8)
        actual = payload_digest(arrays)
        if expected.shape != actual.shape or not np.array_equal(expected, actual):
            raise ValueError("cache entry failed integrity verification")

    def store(
        self,
        graph: TangibleReachabilityGraph,
        max_states: int,
        canonicalize_id: Optional[str] = None,
        key: Optional[str] = None,
    ) -> Path:
        """Persist ``graph`` atomically; returns the entry path.

        ``key`` overrides the default rate-inclusive :func:`cache_key`
        (see :meth:`load`).
        """
        if not graph.has_coefficients:
            raise ValueError(
                "only graphs generated with coefficient tracking can be cached"
            )
        key = key or cache_key(graph.net, max_states, canonicalize_id)
        path = self._path(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        arrays = {
            "markings": np.asarray(graph.markings, dtype=np.int64).reshape(
                graph.number_of_states, -1
            ),
            "edge_sources": graph.edge_sources,
            "edge_targets": graph.edge_targets,
            "edge_rates": graph.edge_rates,
            "transition_names": np.asarray(graph.transition_names, dtype=np.str_),
            "rate_vector": graph.rate_vector,
            "initial_ids": np.asarray(
                list(graph.initial_distribution), dtype=np.int64
            ),
            "initial_probabilities": np.asarray(
                list(graph.initial_distribution.values()), dtype=np.float64
            ),
            "ecm_data": graph.edge_coefficient_matrix.data,
            "ecm_indices": graph.edge_coefficient_matrix.indices,
            "ecm_indptr": graph.edge_coefficient_matrix.indptr,
            "ecm_shape": np.asarray(graph.edge_coefficient_matrix.shape, dtype=np.int64),
            "scm_data": graph.state_coefficient_matrix.data,
            "scm_indices": graph.state_coefficient_matrix.indices,
            "scm_indptr": graph.state_coefficient_matrix.indptr,
            "scm_shape": np.asarray(graph.state_coefficient_matrix.shape, dtype=np.int64),
        }
        arrays[DIGEST_ARRAY] = payload_digest(arrays)
        # Write-to-temporary + rename so concurrent readers never see a
        # partially written entry.
        descriptor, temporary = tempfile.mkstemp(
            dir=self.directory, prefix=f".trg-{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            os.replace(temporary, path)
        except BaseException:
            if os.path.exists(temporary):
                os.unlink(temporary)
            raise
        return path

    @staticmethod
    def _graph_from_arrays(net: CompiledNet, data) -> TangibleReachabilityGraph:
        markings_array = data["markings"]
        if markings_array.shape[1] != len(net.place_names):
            raise ValueError("cached marking width does not match the net")
        markings = [tuple(row) for row in markings_array.tolist()]
        initial_distribution = {
            int(state): float(probability)
            for state, probability in zip(
                data["initial_ids"], data["initial_probabilities"]
            )
        }
        edge_coefficient_matrix = sparse.csr_matrix(
            (data["ecm_data"], data["ecm_indices"], data["ecm_indptr"]),
            shape=tuple(data["ecm_shape"]),
        )
        state_coefficient_matrix = sparse.csr_matrix(
            (data["scm_data"], data["scm_indices"], data["scm_indptr"]),
            shape=tuple(data["scm_shape"]),
        )
        return TangibleReachabilityGraph(
            net=net,
            markings=markings,
            initial_distribution=initial_distribution,
            edge_sources=data["edge_sources"],
            edge_targets=data["edge_targets"],
            edge_rates=data["edge_rates"],
            transition_names=tuple(str(name) for name in data["transition_names"]),
            rate_vector=data["rate_vector"],
            edge_coefficient_matrix=edge_coefficient_matrix,
            state_coefficient_matrix=state_coefficient_matrix,
        )

    # --- maintenance --------------------------------------------------------

    def entries(self) -> list[CacheEntry]:
        """Stored graphs (``.npz`` files and chunked dirs), newest first."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.glob("trg-*.npz"):
            stat = path.stat()
            found.append(
                CacheEntry(
                    path=path,
                    key=path.stem.removeprefix("trg-"),
                    size_bytes=stat.st_size,
                    modified=stat.st_mtime,
                )
            )
        for path in self.directory.glob("trg-*.chunks"):
            if not path.is_dir():
                continue
            stat = path.stat()
            found.append(
                CacheEntry(
                    path=path,
                    key=path.name.removeprefix("trg-").removesuffix(".chunks"),
                    size_bytes=_tree_size_bytes(path),
                    modified=stat.st_mtime,
                    representation="chunked",
                )
            )
        return sorted(found, key=lambda entry: entry.modified, reverse=True)

    def total_size_bytes(self) -> int:
        """Summed on-disk footprint of every entry."""
        return sum(entry.size_bytes for entry in self.entries())

    def clear(self, older_than_days: Optional[float] = None) -> int:
        """Delete entries; returns the number removed.

        With ``older_than_days``, only entries whose modification time is at
        least that many days old are removed — ``repro cache clear
        --older-than 30`` prunes stale graphs without evicting the working
        set.
        """
        removed = 0
        cutoff = (
            time.time() - older_than_days * 86_400.0
            if older_than_days is not None
            else None
        )
        for entry in self.entries():
            if cutoff is not None and entry.modified > cutoff:
                continue
            try:
                if entry.representation == "chunked":
                    shutil.rmtree(entry.path)
                else:
                    entry.path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
