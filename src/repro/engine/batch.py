"""Scenario-batch evaluation engine.

``ScenarioBatchEngine`` owns the full TRG → generator → solve lifecycle for a
*family* of scenarios that share one net structure and differ only in timed
transition rates (the shape of the paper's Figure 7 sweep and Table VII
baselines, and of any sensitivity or capacity sweep):

* the tangible reachability graph is generated **once**;
* each scenario re-rates the graph with one vectorized sparse mat-vec over
  the stacked coefficient matrices (:mod:`repro.spn.parametric`);
* the constrained balance system is assembled **symbolically once**
  (:class:`~repro.engine.system.ConstrainedSystemTemplate`) and only its
  numeric values are re-filled per scenario;
* for large state spaces the ILU preconditioner is reused across scenarios
  and each solve warm-starts from the previous solution — neighbouring sweep
  points have nearly identical stationary vectors;
* batches fan out over one of three interchangeable backends
  (``backend="serial"|"thread"|"process"``): the serial path chains solver
  state across the whole sweep, the thread path hands each worker thread a
  *contiguous* chunk of sweep points (scipy factorisations and mat-vecs
  release the GIL), and the process path runs the zero-copy shared-memory
  scheduler of :mod:`repro.engine.parallel`, sidestepping the GIL entirely;
* ``backend="auto"`` is **cost-aware** (:mod:`repro.engine.dispatch`): the
  requested worker count is clamped to the effective CPU cores, a one/two-
  scenario probe (or recorded history) calibrates cold/warm solve times,
  and the backend + worker count with the lowest *predicted* wall-clock is
  chosen — on a single effective core that is always the serial path, so
  ``--jobs 8`` can no longer make a sweep slower than ``--jobs 1``;
* the reward measures of a whole batch are evaluated with one
  ``(S, n) @ (n, m)`` GEMM (:mod:`repro.engine.measures`) instead of
  ``S × m`` Python-level dot products, on every backend;
* :meth:`ScenarioBatchEngine.run_transient` runs the same scenario block
  through batched uniformization (:func:`repro.markov.transient.
  transient_reward_block`), returning point and interval (mission-window)
  measure values over a time grid.
"""

from __future__ import annotations

import hashlib
import tempfile
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from repro.engine import dispatch
from repro.engine.cache import TRGCache
from repro.engine.dispatch import CostObservations, DispatchDecision
from repro.engine.krylov import KrylovSettings, MatrixFreeSolver, ReusableSolver
from repro.engine.measures import RewardMatrix, UnsupportedMeasure
from repro.engine.parallel import (
    SharedMemoryUnavailable,
    SweepScheduler,
    contiguous_chunks,
    shared_pool,
    start_method,
)
from repro.markov.transient import transient_reward_block
from repro.engine.system import ConstrainedSystemTemplate
from repro.exceptions import AnalysisError
from repro.markov import solvers
from repro.spn.analysis import SteadyStateSolution
from repro.spn.ctmc_export import generator_matrix
from repro.spn.enabling import CompiledNet
from repro.spn.model import StochasticPetriNet
from repro.spn.parametric import delays_to_rates, rate_vector_with_overrides
from repro.spn.reachability import (
    DEFAULT_MAX_TANGIBLE_MARKINGS,
    TangibleReachabilityGraph,
    generate_tangible_reachability_graph,
)
from repro.spn.rewards import Measure, validate_measures
from repro.statespace.chunked import ChunkedGraph, write_chunked_graph

NetLike = Union[
    StochasticPetriNet, CompiledNet, TangibleReachabilityGraph, ChunkedGraph
]

GraphLike = Union[TangibleReachabilityGraph, ChunkedGraph]

#: Recognised values of the ``backend`` argument of :meth:`ScenarioBatchEngine.run`.
BACKENDS = ("auto", "serial", "thread", "process")

#: Upper bound on the stacked ``(S, n)`` solution block a single dispatch may
#: allocate (2 GiB).  Larger batches are evaluated as consecutive sub-batches
#: of contiguous sweep order, so arbitrarily long sweeps run in bounded
#: memory instead of materialising one enormous block.
MAX_SOLUTION_BLOCK_BYTES = 2 << 30


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of a batch: named rate/delay overrides on the shared structure.

    ``delays`` are mean times (the paper's MTTF/MTTR/MTT convention) and are
    inverted into rates; explicit ``rates`` take precedence when both mention
    the same transition.
    """

    name: str
    rates: Mapping[str, float] = field(default_factory=dict)
    delays: Mapping[str, float] = field(default_factory=dict)
    metadata: Mapping[str, object] = field(default_factory=dict)

    def resolved_rates(self) -> dict[str, float]:
        resolved = delays_to_rates(self.delays)
        resolved.update({name: float(value) for name, value in self.rates.items()})
        return resolved


@dataclass
class ScenarioResult:
    """Measures of one evaluated scenario plus solve bookkeeping.

    ``solve_source`` records how the stationary vector was obtained:
    ``"solved"`` (a real solve ran), ``"deduped"`` (shared bitwise with an
    earlier rate-identical scenario of the same batch) or ``"injected"``
    (supplied by the caller via ``presolved``).  Measure values are computed
    per scenario on every path.
    """

    spec: ScenarioSpec
    measures: dict[str, float]
    number_of_states: int
    solve_seconds: float
    solution: Optional[SteadyStateSolution] = None
    solve_source: str = "solved"

    @property
    def name(self) -> str:
        return self.spec.name

    def value(self, measure_name: str) -> float:
        return self.measures[measure_name]


@dataclass(frozen=True)
class DedupeStats:
    """Outcome of one batch's rate-vector dedupe pass.

    ``cases`` scenarios came in, ``solved`` linear systems actually ran,
    ``deduped`` scenarios shared an earlier scenario's stationary vector
    (their resolved rate vectors were bit-identical) and ``injected``
    scenarios were supplied pre-solved by the caller.
    """

    cases: int
    solved: int
    deduped: int
    injected: int

    def as_dict(self) -> dict:
        return {
            "cases": self.cases,
            "solved": self.solved,
            "deduped": self.deduped,
            "injected": self.injected,
        }


def rate_digest(rate_vector: np.ndarray) -> bytes:
    """Canonical digest of one resolved float64 rate vector.

    Two scenarios whose full rate assignments hash equal re-rate the shared
    graph into bit-identical linear systems, so one stationary solve serves
    both.  The digest is over the raw float64 bytes — conservatively exact
    (``-0.0`` and ``0.0`` hash apart), never approximate.
    """
    return hashlib.sha256(
        np.ascontiguousarray(rate_vector, dtype=np.float64).tobytes()
    ).digest()


@dataclass
class TransientScenarioResult:
    """Transient measure curves of one scenario over a shared time grid.

    Attributes:
        spec: the evaluated scenario.
        times: the ``(T,)`` evaluation times (hours, like every rate).
        point: per measure, the ``(T,)`` instantaneous expected values
            ``E[r(X_t)]`` (point availability for a 0/1 availability
            measure).
        interval: per measure, the ``(T,)`` interval values
            ``(1/t) ∫₀ᵗ E[r(X_u)] du`` (interval availability over the
            mission window ``[0, t]``); at ``t = 0`` the point value.
    """

    spec: ScenarioSpec
    times: np.ndarray
    point: dict[str, np.ndarray]
    interval: dict[str, np.ndarray]
    number_of_states: int
    solve_seconds: float

    @property
    def name(self) -> str:
        return self.spec.name


class _WorkerState(threading.local):
    """Per-thread solver state (filled system / factors / warm start)."""

    def __init__(self) -> None:
        self.solver: Optional[ReusableSolver] = None
        self.matrix_free: Optional[MatrixFreeSolver] = None


class ScenarioBatchEngine:
    """Shared-structure batch evaluator over one tangible state space.

    Args:
        net: the net whose structure every scenario shares — a declarative
            net, a compiled net, or an already-generated reachability graph
            (reused as-is).
        method: stationary solver selection; ``"auto"`` picks GTH for tiny
            chains, the symbolically-reused direct solve up to
            ``direct_threshold`` states and preconditioner-reusing GMRES
            beyond.  Any other value bypasses the reuse machinery and
            delegates to :func:`repro.markov.solvers.steady_state`.
        max_states: tangible state-space limit for the one-off generation.
        canonicalize: optional marking canonicalizer (symmetry lumping)
            forwarded to the reachability generator.
        cache: optional :class:`~repro.engine.cache.TRGCache`; when given,
            the one-off generation is first looked up on disk and stored
            after a miss, so repeat runs over an unchanged net skip
            exploration entirely.  With a canonicalizer the cache is only
            consulted when the canonicalizer identity is known (an explicit
            ``canonicalize_id`` or a ``cache_id`` attribute on the callable).
        canonicalize_id: stable identity of ``canonicalize`` for cache
            keying; defaults to its ``cache_id`` attribute when present.
    """

    def __init__(
        self,
        net: NetLike,
        *,
        method: str = "auto",
        max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
        canonicalize=None,
        cache: Optional["TRGCache"] = None,
        canonicalize_id: Optional[str] = None,
        representation: Optional[str] = None,
        gth_threshold: int = 200,
        direct_threshold: int = 20_000,
        ilu_drop_tolerance: float = 1e-6,
        ilu_fill_factor: float = 20.0,
        # Tight enough that independently warm-started worker chains agree
        # below 1e-12 on measure values; the warm-started re-solves absorb
        # the extra iterations at no measurable cost.
        gmres_tolerance: float = 1e-13,
        lu_gmres_tolerance: float = 1e-12,
        gmres_restart: int = 60,
        gmres_max_iterations: int = 2000,
        solve_deadline_seconds: Optional[float] = None,
    ) -> None:
        self.method = method
        self.max_states = max_states
        #: Watchdog deadline for one wave of process-backend solve chunks
        #: (forwarded to :class:`~repro.engine.parallel.SweepScheduler`);
        #: ``None`` disables it.
        self.solve_deadline_seconds = solve_deadline_seconds
        self.canonicalize = canonicalize
        self.cache = cache
        self.canonicalize_id = (
            canonicalize_id
            if canonicalize_id is not None
            else getattr(canonicalize, "cache_id", None)
        )
        #: How the shared graph was obtained: None until built, then
        #: "provided", "cache" or "generated".
        self.graph_source: Optional[str] = (
            "provided"
            if isinstance(net, (TangibleReachabilityGraph, ChunkedGraph))
            else None
        )
        #: State-space representation this engine solves against:
        #: ``"in_ram"`` (default) or ``"chunked"`` (out-of-core CSR chunks
        #: + matrix-free Krylov).  Inferred from a provided graph.
        self.representation = representation or (
            "chunked" if isinstance(net, ChunkedGraph) else "in_ram"
        )
        if self.representation not in ("in_ram", "chunked"):
            raise ValueError(
                f"unknown state-space representation {self.representation!r}"
            )
        self.gth_threshold = gth_threshold
        self.krylov_settings = KrylovSettings(
            direct_threshold=direct_threshold,
            ilu_drop_tolerance=ilu_drop_tolerance,
            ilu_fill_factor=ilu_fill_factor,
            gmres_tolerance=gmres_tolerance,
            lu_gmres_tolerance=lu_gmres_tolerance,
            gmres_restart=gmres_restart,
            gmres_max_iterations=gmres_max_iterations,
        )
        self.direct_threshold = direct_threshold
        #: Backend actually used by the most recent :meth:`run` call
        #: (``None`` until the first batch).
        self.last_run_backend: Optional[str] = None
        #: Cost-model decision of the most recent ``backend="auto"``
        #: dispatch that actually consulted the model (``None`` before).
        self.last_dispatch: Optional[DispatchDecision] = None
        #: Dedupe/injection bookkeeping of the most recent :meth:`run` call
        #: (``None`` until the first batch).
        self.last_run_dedupe: Optional[DedupeStats] = None
        #: Calibrated cold/warm solve times reused across batches.
        self._cost_observations: Optional[CostObservations] = None
        self._net: Optional[NetLike] = net
        self._graph: Optional[GraphLike] = (
            net
            if isinstance(net, (TangibleReachabilityGraph, ChunkedGraph))
            else None
        )
        #: Holds the TemporaryDirectory backing an uncached chunked graph
        #: alive for the engine's lifetime.
        self._chunk_scratch = None
        self._template: Optional[ConstrainedSystemTemplate] = None
        self._worker_state = _WorkerState()
        self._setup_lock = threading.Lock()

    # --- shared structure -------------------------------------------------

    def graph(self) -> TangibleReachabilityGraph:
        """Generate (once) and return the shared tangible reachability graph.

        With a configured cache the graph is loaded from disk when an entry
        for this exact net structure / ``max_states`` / canonicalizer exists
        and stored after generation otherwise.
        """
        if self._graph is None:
            with self._setup_lock:
                if self._graph is None:
                    compiled = (
                        self._net
                        if isinstance(self._net, CompiledNet)
                        else CompiledNet(self._net)
                    )
                    if self.representation == "chunked":
                        self._graph = self._build_chunked(compiled)
                        return self._graph
                    cache = self._usable_cache()
                    graph = None
                    if cache is not None:
                        graph = cache.load(
                            compiled, self.max_states, self.canonicalize_id
                        )
                    if graph is not None:
                        self.graph_source = "cache"
                    else:
                        graph = generate_tangible_reachability_graph(
                            compiled,
                            max_states=self.max_states,
                            canonicalize=self.canonicalize,
                        )
                        self.graph_source = "generated"
                        if cache is not None:
                            try:
                                cache.store(
                                    graph, self.max_states, self.canonicalize_id
                                )
                            except (OSError, ValueError) as error:
                                # An unwritable cache must never fail a run
                                # whose generation already succeeded.
                                warnings.warn(
                                    f"could not persist the reachability graph "
                                    f"to {cache.directory}: {error}",
                                    stacklevel=2,
                                )
                    self._graph = graph
        return self._graph

    def _build_chunked(self, compiled: CompiledNet) -> ChunkedGraph:
        """Load-or-generate the on-disk chunked graph (cache-aware)."""
        cache = self._usable_cache()
        if cache is not None:
            graph = cache.load_chunked(
                compiled, self.max_states, self.canonicalize_id
            )
            if graph is not None:
                self.graph_source = "cache"
                return graph
            graph = cache.generate_chunked(
                compiled,
                self.max_states,
                canonicalize=self.canonicalize,
                canonicalize_id=self.canonicalize_id,
            )
            self.graph_source = "generated"
            return graph
        self._chunk_scratch = tempfile.TemporaryDirectory(prefix="repro-chunks-")
        directory = Path(self._chunk_scratch.name) / "graph"
        write_chunked_graph(
            compiled,
            directory,
            max_states=self.max_states,
            canonicalize=self.canonicalize,
        )
        self.graph_source = "generated"
        return ChunkedGraph.open(directory, compiled)

    def _usable_cache(self) -> Optional["TRGCache"]:
        """The cache, unless an anonymous canonicalizer makes keying unsafe."""
        if self.cache is None:
            return None
        if self.canonicalize is not None and self.canonicalize_id is None:
            return None
        return self.cache

    def template(self) -> ConstrainedSystemTemplate:
        """Build (once) the symbolic constrained-balance-system structure."""
        if self._template is None:
            graph = self.graph()
            if isinstance(graph, ChunkedGraph):
                raise AnalysisError(
                    "the chunked state-space backend is matrix-free and does "
                    "not assemble a global constrained-system template"
                )
            with self._setup_lock:
                if self._template is None:
                    self._template = ConstrainedSystemTemplate(
                        graph.edge_sources, graph.edge_targets, graph.number_of_states
                    )
        return self._template

    @property
    def number_of_states(self) -> int:
        return self.graph().number_of_states

    # --- solving ----------------------------------------------------------

    def solve(
        self,
        rates: Optional[Mapping[str, float]] = None,
        delays: Optional[Mapping[str, float]] = None,
    ) -> SteadyStateSolution:
        """Stationary solution of the shared structure under rate overrides.

        ``delays`` are mean times (inverted into rates); explicit ``rates``
        win on conflict.  With neither given, the graph is solved at the
        rates it was generated with.
        """
        graph = self.graph()
        overrides = delays_to_rates(delays or {})
        overrides.update({name: float(value) for name, value in (rates or {}).items()})
        if overrides:
            graph = graph.with_rate_vector(
                rate_vector_with_overrides(graph, overrides)
            )
        return SteadyStateSolution(graph=graph, probabilities=self._solve_vector(graph))

    def evaluate(
        self,
        spec: ScenarioSpec,
        measures: Sequence[Measure],
        keep_solution: bool = False,
    ) -> ScenarioResult:
        """Re-rate, solve and evaluate ``measures`` for one scenario.

        ``solve_seconds`` covers re-rating, solving and measure evaluation
        only — the one-off state-space generation happens outside the timer.
        """
        validate_measures(measures)
        self.graph()
        started = time.perf_counter()
        solution = self.solve(rates=spec.resolved_rates())
        values = {measure.name: solution.measure(measure) for measure in measures}
        elapsed = time.perf_counter() - started
        return ScenarioResult(
            spec=spec,
            measures=values,
            number_of_states=solution.number_of_states,
            solve_seconds=elapsed,
            solution=solution if keep_solution else None,
        )

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        measures: Sequence[Measure],
        max_workers: Optional[int] = None,
        keep_solutions: bool = False,
        backend: str = "auto",
        dedupe: bool = False,
        presolved: Optional[Mapping[int, np.ndarray]] = None,
        rate_key: Optional[Callable[[np.ndarray], bytes]] = None,
    ) -> list[ScenarioResult]:
        """Evaluate a whole batch over the selected backend.

        Results are returned in the order of ``specs``.  The serial backend
        chains warm starts from scenario to scenario; the thread and process
        backends hand every worker a *contiguous* chunk of sweep points so
        per-worker warm starts and preconditioners see neighbouring points.

        ``max_workers`` is always clamped to the effective CPU cores
        (container-aware affinity; a warning names the clamp), so more
        workers than cores can never be dispatched.  ``backend="auto"`` (the
        default) is **cost-aware**: with a single effective core — or a
        single worker/scenario — it stays serial; otherwise a two-scenario
        probe (or this engine's recorded solve-time history) calibrates a
        cost model and the backend + worker count with the lowest predicted
        wall-clock wins (see :mod:`repro.engine.dispatch`; the decision is
        kept in :attr:`last_dispatch`).  Explicit backends are honoured,
        degrading gracefully to threads when shared memory is unavailable.
        The backend actually used is recorded in :attr:`last_run_backend`.

        ``dedupe=True`` hashes every scenario's resolved rate vector
        (:func:`rate_digest`): scenarios whose vectors are bit-identical
        re-rate the graph into the same linear system, so only the first of
        each class is solved and the later ones share its stationary vector
        (``solve_source="deduped"``, ``solve_seconds=0``).  Measures are
        still evaluated per scenario, so rate-identical cases with
        *different* measures (expression-only ablations such as the
        k-threshold) stay per-case.  ``presolved`` maps spec indices to
        already-known stationary vectors (e.g. from an earlier batch over
        the same graph); those indices skip solving outright.  Both are
        reported in :attr:`last_run_dedupe`.

        ``rate_key`` (used with ``dedupe``) replaces :func:`rate_digest`
        as the per-scenario rate-vector digest — e.g. a symmetry-aware key
        that canonicalizes exchangeable transition blocks before hashing,
        so rate vectors that differ only by a block permutation dedupe to
        one solve.  The caller owns its exactness: two vectors may share a
        key only if they re-rate the graph into chains with identical
        values for **every** measure of this batch.
        """
        specs = list(specs)
        validate_measures(measures)
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if not specs:
            self.last_run_backend = "serial"
            self.last_run_dedupe = DedupeStats(0, 0, 0, 0)
            return []
        requested = int(max_workers) if max_workers is not None else 1
        workers = (
            dispatch.resolve_worker_count(requested, stacklevel=3)
            if requested > 1
            else max(1, requested)
        )
        self.graph()
        block_rows = self._max_block_rows(workers)
        if len(specs) > block_rows and not keep_solutions:
            # Bounded-memory dispatch: consecutive contiguous sub-batches
            # (order preserved, so per-worker warm-start locality survives).
            # Dedupe applies within each sub-batch: a representative's
            # solution block must still be alive when its duplicates are
            # filled, and sub-batches are exactly the windows whose blocks
            # coexist in memory.
            results: list[ScenarioResult] = []
            totals = [0, 0, 0, 0]
            for start in range(0, len(specs), block_rows):
                stop = start + block_rows
                sub_presolved = {
                    index - start: vector
                    for index, vector in (presolved or {}).items()
                    if start <= int(index) < stop
                }
                results.extend(
                    self.run(
                        specs[start:stop],
                        measures,
                        max_workers=max_workers,
                        keep_solutions=False,
                        backend=backend,
                        dedupe=dedupe,
                        presolved=sub_presolved or None,
                        rate_key=rate_key,
                    )
                )
                if self.last_run_dedupe is not None:
                    for position, value in enumerate(
                        (
                            self.last_run_dedupe.cases,
                            self.last_run_dedupe.solved,
                            self.last_run_dedupe.deduped,
                            self.last_run_dedupe.injected,
                        )
                    ):
                        totals[position] += value
            self.last_run_dedupe = DedupeStats(*totals)
            return results

        n = self.number_of_states
        injected: dict[int, np.ndarray] = {}
        for index, vector in (presolved or {}).items():
            vector = np.ascontiguousarray(vector, dtype=np.float64)
            if vector.shape != (n,):
                raise ValueError(
                    f"presolved vector for spec {index} has shape "
                    f"{vector.shape}; expected ({n},)"
                )
            if not 0 <= int(index) < len(specs):
                raise ValueError(
                    f"presolved index {index} outside the batch of {len(specs)}"
                )
            injected[int(index)] = vector
        duplicate_of = (
            self._duplicate_map(specs, injected, rate_key)
            if dedupe and len(specs) > 1
            else {}
        )
        solve_indices = [
            index
            for index in range(len(specs))
            if index not in injected and index not in duplicate_of
        ]
        self.last_run_dedupe = DedupeStats(
            cases=len(specs),
            solved=len(solve_indices),
            deduped=len(duplicate_of),
            injected=len(injected),
        )
        sources = ["solved"] * len(specs)

        if len(solve_indices) == len(specs):
            solutions = np.empty((len(specs), n))
            seconds = np.empty(len(specs))
            choice = self._dispatch_solves(specs, workers, backend, solutions, seconds)
        else:
            solutions = np.empty((len(specs), n))
            seconds = np.zeros(len(specs))
            to_solve = [specs[index] for index in solve_indices]
            if to_solve:
                sub_solutions = np.empty((len(to_solve), n))
                sub_seconds = np.empty(len(to_solve))
                choice = self._dispatch_solves(
                    to_solve, workers, backend, sub_solutions, sub_seconds
                )
                solutions[solve_indices] = sub_solutions
                seconds[solve_indices] = sub_seconds
            else:
                choice = "serial"
            for index, vector in injected.items():
                solutions[index] = vector
                sources[index] = "injected"
            # Representatives (first occurrence of each digest) are always
            # filled by now — either solved or injected — so the copy below
            # never reads an empty row.
            for index, representative in duplicate_of.items():
                solutions[index] = solutions[representative]
                sources[index] = "deduped"
        self.last_run_backend = choice
        results = self._assemble_results(
            specs, measures, solutions, seconds, keep_solutions
        )
        for result, source in zip(results, sources):
            result.solve_source = source
        return results

    def _duplicate_map(
        self,
        specs: Sequence[ScenarioSpec],
        injected: Mapping[int, np.ndarray],
        rate_key: Optional[Callable[[np.ndarray], bytes]] = None,
    ) -> dict[int, int]:
        """Map each rate-equivalent later scenario to its first occurrence.

        Equivalence is :func:`rate_digest` (bit-identical vectors) unless
        the caller supplied a coarser ``rate_key``.  Injected indices are
        never remapped (their vectors are authoritative) but do serve as
        representatives for later duplicates.
        """
        digest = rate_key if rate_key is not None else rate_digest
        first: dict[bytes, int] = {}
        duplicate_of: dict[int, int] = {}
        for index, row in enumerate(self.rate_matrix(specs)):
            representative = first.setdefault(digest(row), index)
            if representative != index and index not in injected:
                duplicate_of[index] = representative
        return duplicate_of

    def _dispatch_solves(
        self,
        specs: Sequence[ScenarioSpec],
        workers: int,
        backend: str,
        solutions: np.ndarray,
        seconds: np.ndarray,
    ) -> str:
        """Solve every spec into the given blocks; returns the backend used."""
        specs = list(specs)
        choice, workers, solved = self._choose_backend(
            backend, workers, specs, solutions, seconds
        )
        remaining = specs[solved:]
        if remaining and choice == "process":
            rate_matrix = self.rate_matrix(specs)
            try:
                block, block_seconds = self._solve_process(
                    rate_matrix[solved:], workers
                )
                solutions[solved:] = block
                seconds[solved:] = block_seconds
            except SharedMemoryUnavailable as error:
                if backend == "process":
                    warnings.warn(
                        f"process backend unavailable ({error}); falling back "
                        f"to the thread backend",
                        stacklevel=2,
                    )
                choice = "thread"
                self._solve_threads(
                    remaining, workers, solutions[solved:], seconds[solved:]
                )
        elif remaining and choice == "thread":
            self._solve_threads(
                remaining, workers, solutions[solved:], seconds[solved:]
            )
        elif remaining:
            self._solve_serial(remaining, solutions[solved:], seconds[solved:])
        self._record_history(choice, solved, seconds)
        return choice

    def _choose_backend(
        self,
        backend: str,
        workers: int,
        specs: Sequence[ScenarioSpec],
        solutions: np.ndarray,
        seconds: np.ndarray,
    ) -> tuple[str, int, int]:
        """Resolve the backend, probing for the cost model when needed.

        Returns ``(choice, workers, solved)`` where ``solved`` is the number
        of leading scenarios already solved serially by the calibration
        probe (their rows of ``solutions``/``seconds`` are filled in).
        """
        scenarios = len(specs)
        if backend == "serial":
            return "serial", 1, 0
        if backend == "thread":
            return "thread", workers, 0
        if backend == "process":
            if not self._process_backend_supported():
                warnings.warn(
                    "the process backend needs method='auto', a "
                    "coefficient-carrying graph and a state space above the "
                    "GTH cutoff; using the thread backend instead",
                    stacklevel=4,
                )
                return "thread", workers, 0
            return "process", workers, 0
        # backend == "auto"
        if workers <= 1 or scenarios <= 1:
            return "serial", 1, 0
        observations = self._cost_observations
        solved = 0
        if observations is None:
            # Calibration probe: solve the first two sweep points serially
            # (they are real results, nothing is thrown away) — the first is
            # a cold solve including the factorisation, the second a warm
            # re-solve.
            solved = min(2, scenarios)
            for index in range(solved):
                solutions[index], seconds[index] = self._timed_solve(specs[index])
            cold = float(seconds[0])
            warm = float(min(seconds[:solved]))
            observations = CostObservations(cold, warm, source="probe")
            self._cost_observations = observations
        remaining = scenarios - solved
        if remaining <= 1:
            return "serial", 1, solved
        decision = dispatch.choose_backend(
            observations,
            remaining,
            workers,
            process_supported=self._process_backend_supported(),
            pool_is_warm=shared_pool.is_warm(workers),
            segment_bytes=self._estimated_segment_bytes(remaining),
            start_method=start_method(),
        )
        self.last_dispatch = decision
        return decision.backend, decision.workers, solved

    def _record_history(
        self, choice: str, solved: int, seconds: np.ndarray
    ) -> None:
        """Keep cold/warm solve times from a first serial batch for later
        ``auto`` dispatches (the probe is skipped when history exists)."""
        if (
            self._cost_observations is None
            and choice == "serial"
            and solved == 0
            and seconds.size
        ):
            cold = float(seconds[0])
            warm = (
                float(np.median(seconds[1:])) if seconds.size > 1 else cold
            )
            self._cost_observations = CostObservations(
                cold, min(cold, warm), source="history"
            )

    def _estimated_segment_bytes(self, scenarios: int) -> int:
        """Rough size of the shared segment a process dispatch would pack."""
        graph = self.graph()
        if isinstance(graph, ChunkedGraph):
            # Chunked sweeps ship only rates + outputs through the segment;
            # the graph itself stays on disk and is opened by path.
            return int(
                8 * scenarios * max(1, graph.rate_vector.size)
                + 8 * scenarios * self.number_of_states
                + 32 * self.number_of_states
            )
        coefficients = graph.edge_coefficient_matrix
        nnz = int(coefficients.nnz) if coefficients is not None else 0
        return int(
            2 * graph.edge_sources.nbytes
            + 12 * nnz
            + 8 * scenarios * max(1, graph.rate_vector.size)
            + 8 * scenarios * self.number_of_states
            + 32 * self.number_of_states
        )

    def run_transient(
        self,
        specs: Sequence[ScenarioSpec],
        measures: Sequence[Measure],
        times: Sequence[float],
        max_workers: Optional[int] = None,
        backend: str = "auto",
        tolerance: float = 1e-12,
    ) -> list[TransientScenarioResult]:
        """Batched transient (uniformization) evaluation of the scenario block.

        For every scenario the instantaneous expected value ``E[r(X_t)]``
        and the interval value ``(1/t) ∫₀ᵗ E[r(X_u)] du`` of every measure
        are computed on the grid ``times``, starting from the net's initial
        marking distribution.  The whole batch shares one state space; the
        uniformization power iteration is vectorized over scenario groups of
        similar rate regime (one block-diagonal sparse mat-vec per Poisson
        term, measure projection through the :class:`RewardMatrix` GEMM —
        see :func:`repro.markov.transient.transient_reward_block`).

        ``backend`` accepts the same names as :meth:`run`; the transient
        kernel runs in-process (its sparse mat-vecs release the GIL), so
        ``"process"`` is mapped to the thread backend with a warning and
        ``"auto"`` picks threads over contiguous scenario chunks whenever
        more than one effective core and scenario are available.
        """
        specs = list(specs)
        validate_measures(measures)
        times = np.asarray(times, dtype=np.float64).ravel()
        if not specs:
            self.last_run_backend = "serial"
            return []
        graph = self.graph()
        if isinstance(graph, ChunkedGraph):
            raise AnalysisError(
                "transient batches need the in-RAM backend (the chunked "
                "backend never assembles the global edge arrays the "
                "uniformization kernel iterates over); rerun with "
                "representation='in_ram' or a higher memory budget"
            )
        if not graph.has_coefficients:
            raise AnalysisError(
                "transient batches need a graph carrying per-transition "
                "coefficient matrices (generated graphs always do)"
            )
        reward = RewardMatrix.from_measures(graph, measures)
        rate_matrix = self.rate_matrix(specs)
        edge_block = np.asarray(
            graph.edge_coefficient_matrix.T.dot(rate_matrix.T)
        ).T
        pi0 = self.initial_vector()
        requested = int(max_workers) if max_workers is not None else 1
        workers = (
            dispatch.resolve_worker_count(requested, stacklevel=3)
            if requested > 1
            else max(1, requested)
        )
        choice = self._resolve_transient_backend(backend, workers, len(specs))

        n = self.number_of_states
        point = np.zeros((len(specs), times.size, reward.number_of_measures))
        interval = np.zeros_like(point)
        seconds = np.zeros(len(specs))

        def run_block(indices: np.ndarray) -> None:
            def evaluate(block: np.ndarray, local: np.ndarray) -> np.ndarray:
                return reward.evaluate(block, rate_matrix[indices[local]])

            point[indices], interval[indices], seconds[indices] = (
                transient_reward_block(
                    graph.edge_sources,
                    graph.edge_targets,
                    n,
                    edge_block[indices],
                    pi0,
                    times,
                    evaluate,
                    reward.number_of_measures,
                    tolerance=tolerance,
                )
            )

        if choice == "thread" and workers > 1 and len(specs) > 1:
            chunks = contiguous_chunks(len(specs), workers)
            with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                for _ in pool.map(
                    run_block,
                    [np.asarray(chunk, dtype=np.int64) for chunk in chunks],
                ):
                    pass
        else:
            run_block(np.arange(len(specs), dtype=np.int64))
        self.last_run_backend = choice
        return [
            TransientScenarioResult(
                spec=spec,
                times=times.copy(),
                point={
                    name: point[index, :, column].copy()
                    for column, name in enumerate(reward.names)
                },
                interval={
                    name: interval[index, :, column].copy()
                    for column, name in enumerate(reward.names)
                },
                number_of_states=n,
                solve_seconds=float(seconds[index]),
            )
            for index, spec in enumerate(specs)
        ]

    def _resolve_transient_backend(
        self, backend: str, workers: int, scenarios: int
    ) -> str:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if backend == "process":
            warnings.warn(
                "the transient workload runs in-process (its sparse mat-vecs "
                "release the GIL and there is no per-scenario factorisation "
                "to replicate); using the thread backend instead",
                stacklevel=3,
            )
            backend = "thread"
        if backend == "auto":
            return "thread" if workers > 1 and scenarios > 1 else "serial"
        return backend

    def initial_vector(self) -> np.ndarray:
        """Dense initial tangible-marking distribution of the shared graph."""
        graph = self.graph()
        vector = np.zeros(self.number_of_states)
        for state, probability in graph.initial_distribution.items():
            vector[int(state)] = float(probability)
        return vector

    def _max_block_rows(self, workers: int) -> int:
        """Scenarios per dispatch under the solution-block memory bound."""
        bytes_per_row = max(1, self.number_of_states * 8)
        return max(workers, MAX_SOLUTION_BLOCK_BYTES // bytes_per_row)

    def _process_backend_supported(self) -> bool:
        """Whether the multiprocess scheduler can reproduce this batch.

        The process workers run the Krylov reuse path exclusively, so the
        batch must be in the regime the serial path would also solve that
        way: ``method="auto"``, above the GTH cutoff, and a graph carrying
        the coefficient matrices needed for zero-copy re-rating.
        """
        graph = self.graph()
        return (
            self.method == "auto"
            and graph.has_coefficients
            and graph.number_of_states > self.gth_threshold
        )

    # --- backend drivers --------------------------------------------------

    def _timed_solve(self, spec: ScenarioSpec) -> tuple[np.ndarray, float]:
        """Solve one scenario on the calling thread's solver state."""
        started = time.perf_counter()
        solution = self.solve(rates=spec.resolved_rates())
        return solution.probabilities, time.perf_counter() - started

    def _solve_serial(
        self,
        specs: Sequence[ScenarioSpec],
        solutions: np.ndarray,
        seconds: np.ndarray,
    ) -> None:
        for index, spec in enumerate(specs):
            solutions[index], seconds[index] = self._timed_solve(spec)

    def _solve_threads(
        self,
        specs: Sequence[ScenarioSpec],
        workers: int,
        solutions: np.ndarray,
        seconds: np.ndarray,
    ) -> None:
        """Thread fan-out over contiguous sweep-order chunks.

        Each chunk runs on one pool thread whose thread-local solver state
        chains warm starts across the chunk's neighbouring sweep points — an
        interleaved per-scenario submission would scatter unrelated points
        across the workers and forfeit that locality.
        """

        def run_chunk(chunk: Sequence[int]) -> None:
            for index in chunk:
                solutions[index], seconds[index] = self._timed_solve(specs[index])

        chunks = contiguous_chunks(len(specs), workers)
        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            for _ in pool.map(run_chunk, chunks):
                pass

    def _solve_process(
        self, rate_matrix: np.ndarray, workers: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy multiprocess fan-out (see :mod:`repro.engine.parallel`)."""
        graph = self.graph()
        scheduler = SweepScheduler(
            graph,
            None if isinstance(graph, ChunkedGraph) else self.template(),
            self.krylov_settings,
            max_workers=workers,
            deadline_seconds=self.solve_deadline_seconds,
        )
        outcome = scheduler.run(rate_matrix)
        return outcome.solutions, outcome.solve_seconds

    # --- shared post-processing -------------------------------------------

    def rate_matrix(self, specs: Sequence[ScenarioSpec]) -> np.ndarray:
        """Stacked ``(S, T)`` rate vectors of the batch (validated)."""
        graph = self.graph()
        matrix = np.empty((len(specs), graph.rate_vector.size))
        for index, spec in enumerate(specs):
            overrides = spec.resolved_rates()
            matrix[index] = (
                rate_vector_with_overrides(graph, overrides)
                if overrides
                else graph.rate_vector
            )
        return matrix

    def _assemble_results(
        self,
        specs: Sequence[ScenarioSpec],
        measures: Sequence[Measure],
        solutions: np.ndarray,
        solve_seconds: np.ndarray,
        keep_solutions: bool,
        rate_matrix: Optional[np.ndarray] = None,
    ) -> list[ScenarioResult]:
        """Batched (GEMM) measure evaluation and result packaging.

        All backends meet here, so a batch's measure values are computed by
        identical floating-point operations regardless of how its stationary
        vectors were produced.
        """
        graph = self.graph()
        if rate_matrix is None and graph.has_coefficients:
            rate_matrix = self.rate_matrix(specs)
        kept: list[Optional[SteadyStateSolution]] = [None] * len(specs)
        if keep_solutions:
            for index, spec in enumerate(specs):
                scenario_graph = (
                    graph.with_rate_vector(rate_matrix[index])
                    if rate_matrix is not None and spec.resolved_rates()
                    else graph
                )
                kept[index] = SteadyStateSolution(
                    graph=scenario_graph, probabilities=solutions[index]
                )
        try:
            reward_matrix = RewardMatrix.from_measures(graph, measures)
            values = reward_matrix.evaluate(solutions, rate_matrix)
            measure_rows = reward_matrix.as_dicts(values)
        except UnsupportedMeasure:
            # Rare non-parametric graphs (e.g. explicit throughput dicts):
            # evaluate scalar measures on per-scenario solution objects.
            measure_rows = []
            for index, spec in enumerate(specs):
                solution = kept[index] or SteadyStateSolution(
                    graph=graph, probabilities=solutions[index]
                )
                measure_rows.append(
                    {measure.name: solution.measure(measure) for measure in measures}
                )
        return [
            ScenarioResult(
                spec=spec,
                measures=measure_rows[index],
                number_of_states=graph.number_of_states,
                solve_seconds=float(solve_seconds[index]),
                solution=kept[index],
            )
            for index, spec in enumerate(specs)
        ]

    # --- internal solver --------------------------------------------------

    def _solve_vector(self, graph: GraphLike) -> np.ndarray:
        n = graph.number_of_states
        if n == 1:
            return np.array([1.0])
        if isinstance(graph, ChunkedGraph):
            if self.method != "auto":
                raise AnalysisError(
                    f"explicit solver method {self.method!r} needs the in-RAM "
                    "backend; the chunked backend solves matrix-free only "
                    "(method='auto')"
                )
            state = self._worker_state
            if state.matrix_free is None:
                state.matrix_free = MatrixFreeSolver(
                    self.graph(), self.krylov_settings
                )
            return state.matrix_free.solve(graph.rate_vector)
        if self.method != "auto":
            return solvers.steady_state(generator_matrix(graph), method=self.method)
        if n <= self.gth_threshold:
            return solvers.steady_state(generator_matrix(graph), method="gth")

        template = self.template()
        state = self._worker_state
        if state.solver is None:
            state.solver = ReusableSolver(template, self.krylov_settings)
        return state.solver.solve(
            graph.edge_rates, lambda: generator_matrix(graph)
        )
