"""Scenario-batch evaluation engine.

``ScenarioBatchEngine`` owns the full TRG → generator → solve lifecycle for a
*family* of scenarios that share one net structure and differ only in timed
transition rates (the shape of the paper's Figure 7 sweep and Table VII
baselines, and of any sensitivity or capacity sweep):

* the tangible reachability graph is generated **once**;
* each scenario re-rates the graph with one vectorized sparse mat-vec over
  the stacked coefficient matrices (:mod:`repro.spn.parametric`);
* the constrained balance system is assembled **symbolically once**
  (:class:`~repro.engine.system.ConstrainedSystemTemplate`) and only its
  numeric values are re-filled per scenario;
* for large state spaces the ILU preconditioner is reused across scenarios
  and each solve warm-starts from the previous solution — neighbouring sweep
  points have nearly identical stationary vectors;
* batches can optionally fan out over a thread pool (``max_workers``); the
  underlying scipy factorisations and mat-vecs release the GIL, and every
  worker thread keeps its own filled system / preconditioner / warm start.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Union

import numpy as np
from scipy.sparse import linalg as sparse_linalg

from repro.engine.cache import TRGCache
from repro.engine.system import ConstrainedSystemTemplate
from repro.exceptions import AnalysisError
from repro.markov import solvers
from repro.spn.analysis import SteadyStateSolution
from repro.spn.ctmc_export import generator_matrix
from repro.spn.enabling import CompiledNet
from repro.spn.model import StochasticPetriNet
from repro.spn.parametric import delays_to_rates, rate_vector_with_overrides
from repro.spn.reachability import (
    DEFAULT_MAX_TANGIBLE_MARKINGS,
    TangibleReachabilityGraph,
    generate_tangible_reachability_graph,
)
from repro.spn.rewards import Measure, validate_measures

NetLike = Union[StochasticPetriNet, CompiledNet, TangibleReachabilityGraph]


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of a batch: named rate/delay overrides on the shared structure.

    ``delays`` are mean times (the paper's MTTF/MTTR/MTT convention) and are
    inverted into rates; explicit ``rates`` take precedence when both mention
    the same transition.
    """

    name: str
    rates: Mapping[str, float] = field(default_factory=dict)
    delays: Mapping[str, float] = field(default_factory=dict)
    metadata: Mapping[str, object] = field(default_factory=dict)

    def resolved_rates(self) -> dict[str, float]:
        resolved = delays_to_rates(self.delays)
        resolved.update({name: float(value) for name, value in self.rates.items()})
        return resolved


@dataclass
class ScenarioResult:
    """Measures of one evaluated scenario plus solve bookkeeping."""

    spec: ScenarioSpec
    measures: dict[str, float]
    number_of_states: int
    solve_seconds: float
    solution: Optional[SteadyStateSolution] = None

    @property
    def name(self) -> str:
        return self.spec.name

    def value(self, measure_name: str) -> float:
        return self.measures[measure_name]


class _WorkerState(threading.local):
    """Per-thread numeric solver state (filled system, ILU, warm start)."""

    def __init__(self) -> None:
        self.system = None
        self.preconditioner = None
        self.warm_start: Optional[np.ndarray] = None


class ScenarioBatchEngine:
    """Shared-structure batch evaluator over one tangible state space.

    Args:
        net: the net whose structure every scenario shares — a declarative
            net, a compiled net, or an already-generated reachability graph
            (reused as-is).
        method: stationary solver selection; ``"auto"`` picks GTH for tiny
            chains, the symbolically-reused direct solve up to
            ``direct_threshold`` states and preconditioner-reusing GMRES
            beyond.  Any other value bypasses the reuse machinery and
            delegates to :func:`repro.markov.solvers.steady_state`.
        max_states: tangible state-space limit for the one-off generation.
        canonicalize: optional marking canonicalizer (symmetry lumping)
            forwarded to the reachability generator.
        cache: optional :class:`~repro.engine.cache.TRGCache`; when given,
            the one-off generation is first looked up on disk and stored
            after a miss, so repeat runs over an unchanged net skip
            exploration entirely.  With a canonicalizer the cache is only
            consulted when the canonicalizer identity is known (an explicit
            ``canonicalize_id`` or a ``cache_id`` attribute on the callable).
        canonicalize_id: stable identity of ``canonicalize`` for cache
            keying; defaults to its ``cache_id`` attribute when present.
    """

    def __init__(
        self,
        net: NetLike,
        *,
        method: str = "auto",
        max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
        canonicalize=None,
        cache: Optional["TRGCache"] = None,
        canonicalize_id: Optional[str] = None,
        gth_threshold: int = 200,
        direct_threshold: int = 20_000,
        ilu_drop_tolerance: float = 1e-6,
        ilu_fill_factor: float = 20.0,
        gmres_tolerance: float = 1e-10,
        lu_gmres_tolerance: float = 1e-12,
        gmres_restart: int = 60,
        gmres_max_iterations: int = 2000,
    ) -> None:
        self.method = method
        self.max_states = max_states
        self.canonicalize = canonicalize
        self.cache = cache
        self.canonicalize_id = (
            canonicalize_id
            if canonicalize_id is not None
            else getattr(canonicalize, "cache_id", None)
        )
        #: How the shared graph was obtained: None until built, then
        #: "provided", "cache" or "generated".
        self.graph_source: Optional[str] = (
            "provided" if isinstance(net, TangibleReachabilityGraph) else None
        )
        self.gth_threshold = gth_threshold
        self.direct_threshold = direct_threshold
        self.ilu_drop_tolerance = ilu_drop_tolerance
        self.ilu_fill_factor = ilu_fill_factor
        self.gmres_tolerance = gmres_tolerance
        self.lu_gmres_tolerance = lu_gmres_tolerance
        self.gmres_restart = gmres_restart
        self.gmres_max_iterations = gmres_max_iterations
        self._net: Optional[NetLike] = net
        self._graph: Optional[TangibleReachabilityGraph] = (
            net if isinstance(net, TangibleReachabilityGraph) else None
        )
        self._template: Optional[ConstrainedSystemTemplate] = None
        self._worker_state = _WorkerState()
        self._setup_lock = threading.Lock()

    # --- shared structure -------------------------------------------------

    def graph(self) -> TangibleReachabilityGraph:
        """Generate (once) and return the shared tangible reachability graph.

        With a configured cache the graph is loaded from disk when an entry
        for this exact net structure / ``max_states`` / canonicalizer exists
        and stored after generation otherwise.
        """
        if self._graph is None:
            with self._setup_lock:
                if self._graph is None:
                    compiled = (
                        self._net
                        if isinstance(self._net, CompiledNet)
                        else CompiledNet(self._net)
                    )
                    cache = self._usable_cache()
                    graph = None
                    if cache is not None:
                        graph = cache.load(
                            compiled, self.max_states, self.canonicalize_id
                        )
                    if graph is not None:
                        self.graph_source = "cache"
                    else:
                        graph = generate_tangible_reachability_graph(
                            compiled,
                            max_states=self.max_states,
                            canonicalize=self.canonicalize,
                        )
                        self.graph_source = "generated"
                        if cache is not None:
                            try:
                                cache.store(
                                    graph, self.max_states, self.canonicalize_id
                                )
                            except (OSError, ValueError) as error:
                                # An unwritable cache must never fail a run
                                # whose generation already succeeded.
                                warnings.warn(
                                    f"could not persist the reachability graph "
                                    f"to {cache.directory}: {error}",
                                    stacklevel=2,
                                )
                    self._graph = graph
        return self._graph

    def _usable_cache(self) -> Optional["TRGCache"]:
        """The cache, unless an anonymous canonicalizer makes keying unsafe."""
        if self.cache is None:
            return None
        if self.canonicalize is not None and self.canonicalize_id is None:
            return None
        return self.cache

    def template(self) -> ConstrainedSystemTemplate:
        """Build (once) the symbolic constrained-balance-system structure."""
        if self._template is None:
            graph = self.graph()
            with self._setup_lock:
                if self._template is None:
                    self._template = ConstrainedSystemTemplate(
                        graph.edge_sources, graph.edge_targets, graph.number_of_states
                    )
        return self._template

    @property
    def number_of_states(self) -> int:
        return self.graph().number_of_states

    # --- solving ----------------------------------------------------------

    def solve(
        self,
        rates: Optional[Mapping[str, float]] = None,
        delays: Optional[Mapping[str, float]] = None,
    ) -> SteadyStateSolution:
        """Stationary solution of the shared structure under rate overrides.

        ``delays`` are mean times (inverted into rates); explicit ``rates``
        win on conflict.  With neither given, the graph is solved at the
        rates it was generated with.
        """
        graph = self.graph()
        overrides = delays_to_rates(delays or {})
        overrides.update({name: float(value) for name, value in (rates or {}).items()})
        if overrides:
            graph = graph.with_rate_vector(
                rate_vector_with_overrides(graph, overrides)
            )
        return SteadyStateSolution(graph=graph, probabilities=self._solve_vector(graph))

    def evaluate(
        self,
        spec: ScenarioSpec,
        measures: Sequence[Measure],
        keep_solution: bool = False,
    ) -> ScenarioResult:
        """Re-rate, solve and evaluate ``measures`` for one scenario.

        ``solve_seconds`` covers re-rating, solving and measure evaluation
        only — the one-off state-space generation happens outside the timer.
        """
        validate_measures(measures)
        self.graph()
        started = time.perf_counter()
        solution = self.solve(rates=spec.resolved_rates())
        values = {measure.name: solution.measure(measure) for measure in measures}
        elapsed = time.perf_counter() - started
        return ScenarioResult(
            spec=spec,
            measures=values,
            number_of_states=solution.number_of_states,
            solve_seconds=elapsed,
            solution=solution if keep_solution else None,
        )

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        measures: Sequence[Measure],
        max_workers: Optional[int] = None,
        keep_solutions: bool = False,
    ) -> list[ScenarioResult]:
        """Evaluate a whole batch, optionally fanning out over a thread pool.

        Results are returned in the order of ``specs``.  Sequential runs
        chain warm starts from scenario to scenario (neighbouring sweep
        points converge in a handful of GMRES iterations); parallel runs
        give every worker thread its own solver state.
        """
        specs = list(specs)
        if max_workers is not None and max_workers > 1 and len(specs) > 1:
            # Generate the shared structure before fanning out so the
            # expensive one-off work is not raced (it is lock-protected
            # anyway, but this keeps worker timings meaningful).
            self.graph()
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(
                    pool.map(
                        lambda spec: self.evaluate(spec, measures, keep_solutions),
                        specs,
                    )
                )
        return [self.evaluate(spec, measures, keep_solutions) for spec in specs]

    # --- internal solver --------------------------------------------------

    def _solve_vector(self, graph: TangibleReachabilityGraph) -> np.ndarray:
        n = graph.number_of_states
        if n == 1:
            return np.array([1.0])
        if self.method != "auto":
            return solvers.steady_state(generator_matrix(graph), method=self.method)
        if n <= self.gth_threshold:
            return solvers.steady_state(generator_matrix(graph), method="gth")

        template = self.template()
        state = self._worker_state
        if state.system is None:
            state.system = template.fresh_system(graph.edge_rates)
        else:
            template.refill(state.system, graph.edge_rates)
        return self._solve_factorized(graph, state, template)

    def _factorize(self, system) -> object:
        """Factor the current system into a preconditioner.

        Up to ``direct_threshold`` states a *complete* sparse LU is cheap
        (with the AMD-style ``MMD_AT_PLUS_A`` ordering, which produces far
        less fill than the default on these nearly-structurally-symmetric
        CTMC systems) and makes the first GMRES iteration exact; beyond that
        an incomplete LU keeps memory bounded.
        """
        try:
            if system.shape[0] <= self.direct_threshold:
                return sparse_linalg.splu(system, permc_spec="MMD_AT_PLUS_A")
            return sparse_linalg.spilu(
                system,
                drop_tol=self.ilu_drop_tolerance,
                fill_factor=self.ilu_fill_factor,
            )
        except Exception as error:
            raise AnalysisError(
                f"sparse factorisation of the balance system failed: {error}"
            ) from error

    def _solve_factorized(
        self,
        graph: TangibleReachabilityGraph,
        state: _WorkerState,
        template: ConstrainedSystemTemplate,
    ) -> np.ndarray:
        """Factorisation-reusing, warm-started GMRES on the re-filled system.

        The LU (or ILU) factors of a neighbouring scenario remain an
        excellent preconditioner because only a handful of rates change
        between sweep points, so each subsequent solve converges in a few
        Krylov iterations instead of paying a fresh factorisation.  If reuse
        ever stalls, the factorisation is rebuilt from the current values and
        the solve retried once before falling back to the generic solver
        stack.
        """
        rhs = template.rhs
        rtol = (
            self.lu_gmres_tolerance
            if state.system.shape[0] <= self.direct_threshold
            else self.gmres_tolerance
        )
        for attempt in ("reuse", "rebuild"):
            if state.preconditioner is None or attempt == "rebuild":
                state.preconditioner = self._factorize(state.system)
            operator = sparse_linalg.LinearOperator(
                state.system.shape, state.preconditioner.solve
            )
            x0 = None
            if state.warm_start is not None and state.warm_start.shape == rhs.shape:
                x0 = state.warm_start
            solution, info = sparse_linalg.gmres(
                state.system,
                rhs,
                M=operator,
                x0=x0,
                rtol=rtol,
                atol=0.0,
                restart=self.gmres_restart,
                maxiter=self.gmres_max_iterations,
            )
            if info == 0 and np.all(np.isfinite(solution)):
                probabilities = solvers.normalize_distribution(
                    np.asarray(solution).ravel()
                )
                state.warm_start = probabilities
                return probabilities
        # Preconditioned GMRES failed twice: fall back to the generic solver
        # stack on a freshly assembled generator (no state reuse).
        state.preconditioner = None
        state.warm_start = None
        return solvers.steady_state(generator_matrix(graph), method="auto")
