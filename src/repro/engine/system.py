"""Reusable symbolic structure of the constrained balance equations.

Every scenario of a batch shares the tangible reachability graph's *sparsity
structure*: the edge list never changes, only the numeric rates do.  The
linear system solved for the stationary vector — ``A x = b`` with
``A = Qᵀ`` whose last balance equation is replaced by the normalisation
constraint ``Σ x = 1`` — therefore also has a fixed sparsity pattern across
the whole batch.

:class:`ConstrainedSystemTemplate` performs the symbolic assembly exactly
once: it lays out the CSC index structure of ``A`` and records, for every
stored nonzero, which entry of the per-scenario value vector it takes its
value from.  Re-rating a scenario then only *re-fills the numeric values* of
an existing CSC matrix (two ``np.concatenate`` calls and one fancy-indexed
assignment) instead of re-running transpose/`tolil` row surgery per scenario.

The value vector of a scenario is laid out as::

    [ masked edge rates | negated exit rates of states 0..n-2 | ones row ]

where the mask drops edges whose *target* is the last state (their balance
row is the one replaced by the normalisation constraint).  All three groups
address disjoint matrix positions — edges are never self-loops — so the
COO→CSC conversion used to discover the layout is a pure permutation.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse


class ConstrainedSystemTemplate:
    """Symbolic (structure-only) form of the constrained balance system.

    The template itself is immutable and safely shared between worker
    threads; each worker materialises its own CSC matrix with
    :meth:`fresh_system` and then re-fills it in place with :meth:`refill`.
    """

    def __init__(self, edge_sources: np.ndarray, edge_targets: np.ndarray, n: int):
        if n < 2:
            raise ValueError("the constrained system needs at least two states")
        self.n = n
        last = n - 1
        self.edge_sources = np.asarray(edge_sources, dtype=np.int64)
        edge_targets = np.asarray(edge_targets, dtype=np.int64)
        #: Edges whose balance row survives (target != last state).
        self.edge_mask = edge_targets != last
        interior = np.arange(last, dtype=np.int64)
        rows = np.concatenate(
            [edge_targets[self.edge_mask], interior, np.full(n, last, dtype=np.int64)]
        )
        cols = np.concatenate(
            [self.edge_sources[self.edge_mask], interior, np.arange(n, dtype=np.int64)]
        )
        slots = rows.size
        # Build the CSC structure with 1-based slot ids as data: after the
        # conversion, each stored value tells which entry of the value
        # vector lands at that CSC position.  (1-based so that no slot id is
        # a zero that sparse construction could silently drop.)
        indexed = sparse.coo_matrix(
            (np.arange(1, slots + 1, dtype=np.float64), (rows, cols)), shape=(n, n)
        ).tocsc()
        if indexed.nnz != slots:
            raise AssertionError(
                "constrained-system template has colliding entries; the edge "
                "list must be unique and self-loop free"
            )
        self._pattern = indexed
        self._positions = indexed.data.astype(np.int64) - 1
        self.rhs = np.zeros(n)
        self.rhs[last] = 1.0

    def _values(self, edge_rates: np.ndarray) -> np.ndarray:
        exit_rates = np.bincount(self.edge_sources, weights=edge_rates, minlength=self.n)
        return np.concatenate(
            [edge_rates[self.edge_mask], -exit_rates[: self.n - 1], np.ones(self.n)]
        )

    def fresh_system(self, edge_rates: np.ndarray) -> sparse.csc_matrix:
        """A new CSC matrix with this structure, filled for ``edge_rates``."""
        system = self._pattern.copy()
        self.refill(system, edge_rates)
        return system

    def refill(self, system: sparse.csc_matrix, edge_rates: np.ndarray) -> None:
        """Overwrite the numeric values of ``system`` in place for a new scenario."""
        system.data[:] = self._values(edge_rates)[self._positions]
