"""Reusable symbolic structure of the constrained balance equations.

Every scenario of a batch shares the tangible reachability graph's *sparsity
structure*: the edge list never changes, only the numeric rates do.  The
linear system solved for the stationary vector — ``A x = b`` with
``A = Qᵀ`` whose last balance equation is replaced by the normalisation
constraint ``Σ x = 1`` — therefore also has a fixed sparsity pattern across
the whole batch.

:class:`ConstrainedSystemTemplate` performs the symbolic assembly exactly
once: it lays out the CSC index structure of ``A`` and records, for every
stored nonzero, which entry of the per-scenario value vector it takes its
value from.  Re-rating a scenario then only *re-fills the numeric values* of
an existing CSC matrix (two ``np.concatenate`` calls and one fancy-indexed
assignment) instead of re-running transpose/`tolil` row surgery per scenario.

The value vector of a scenario is laid out as::

    [ masked edge rates | negated exit rates of states 0..n-2 | ones row ]

where the mask drops edges whose *target* is the last state (their balance
row is the one replaced by the normalisation constraint).  All three groups
address disjoint matrix positions — edges are never self-loops — so the
COO→CSC conversion used to discover the layout is a pure permutation.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy import sparse


class ConstrainedSystemTemplate:
    """Symbolic (structure-only) form of the constrained balance system.

    The template itself is immutable and safely shared between worker
    threads; each worker materialises its own CSC matrix with
    :meth:`fresh_system` and then re-fills it in place with :meth:`refill`.

    For *process* workers the symbolic assembly does not have to be redone
    either: :meth:`shared_arrays` exports the five structure arrays (edge
    sources, surviving-edge mask, CSC index structure and the value-vector
    permutation) and :meth:`from_shared_arrays` reconstitutes a fully
    functional template around read-only views of them — e.g. zero-copy
    attachments of a :mod:`multiprocessing.shared_memory` block.
    """

    def __init__(self, edge_sources: np.ndarray, edge_targets: np.ndarray, n: int):
        if n < 2:
            raise ValueError("the constrained system needs at least two states")
        self.n = n
        last = n - 1
        self.edge_sources = np.asarray(edge_sources, dtype=np.int64)
        edge_targets = np.asarray(edge_targets, dtype=np.int64)
        #: Edges whose balance row survives (target != last state).
        self.edge_mask = edge_targets != last
        interior = np.arange(last, dtype=np.int64)
        rows = np.concatenate(
            [edge_targets[self.edge_mask], interior, np.full(n, last, dtype=np.int64)]
        )
        cols = np.concatenate(
            [self.edge_sources[self.edge_mask], interior, np.arange(n, dtype=np.int64)]
        )
        slots = rows.size
        # Build the CSC structure with 1-based slot ids as data: after the
        # conversion, each stored value tells which entry of the value
        # vector lands at that CSC position.  (1-based so that no slot id is
        # a zero that sparse construction could silently drop.)
        indexed = sparse.coo_matrix(
            (np.arange(1, slots + 1, dtype=np.float64), (rows, cols)), shape=(n, n)
        ).tocsc()
        if indexed.nnz != slots:
            raise AssertionError(
                "constrained-system template has colliding entries; the edge "
                "list must be unique and self-loop free"
            )
        self._pattern = indexed
        self._positions = indexed.data.astype(np.int64) - 1
        self.rhs = np.zeros(n)
        self.rhs[last] = 1.0

    def _values(self, edge_rates: np.ndarray) -> np.ndarray:
        exit_rates = np.bincount(self.edge_sources, weights=edge_rates, minlength=self.n)
        return np.concatenate(
            [edge_rates[self.edge_mask], -exit_rates[: self.n - 1], np.ones(self.n)]
        )

    def fresh_system(self, edge_rates: np.ndarray) -> sparse.csc_matrix:
        """A new CSC matrix with this structure, filled for ``edge_rates``.

        Only the value array is freshly allocated; the index structure is
        the template's own (it is identical for every scenario and must not
        be mutated by callers).
        """
        data = np.empty(self._positions.size, dtype=np.float64)
        system = sparse.csc_matrix(
            (data, self._pattern.indices, self._pattern.indptr),
            shape=(self.n, self.n),
        )
        # The structure came out of a COO→CSC conversion, so it is already
        # canonical; declaring it keeps scipy from ever re-verifying (or,
        # on non-canonical input, mutating) the shared index arrays.
        system.has_sorted_indices = True
        system.has_canonical_format = True
        self.refill(system, edge_rates)
        return system

    def refill(self, system: sparse.csc_matrix, edge_rates: np.ndarray) -> None:
        """Overwrite the numeric values of ``system`` in place for a new scenario."""
        system.data[:] = self._values(edge_rates)[self._positions]

    # --- zero-copy transport ----------------------------------------------

    def shared_arrays(self) -> dict[str, np.ndarray]:
        """The structure arrays a worker needs to rebuild this template.

        All five arrays are scenario-independent; placing them in shared
        memory lets every worker process attach read-only views instead of
        re-running (or re-pickling) the symbolic assembly.
        """
        return {
            "edge_sources": self.edge_sources,
            "edge_mask": self.edge_mask,
            "positions": self._positions,
            "csc_indices": self._pattern.indices,
            "csc_indptr": self._pattern.indptr,
        }

    @classmethod
    def from_shared_arrays(
        cls, arrays: Mapping[str, np.ndarray], n: int
    ) -> "ConstrainedSystemTemplate":
        """Reconstitute a template around pre-assembled structure arrays.

        ``arrays`` must hold the keys produced by :meth:`shared_arrays`.
        The arrays are adopted as-is (typically read-only shared-memory
        views); no symbolic assembly is performed.
        """
        template = cls.__new__(cls)
        template.n = int(n)
        template.edge_sources = arrays["edge_sources"]
        template.edge_mask = arrays["edge_mask"]
        template._positions = arrays["positions"]
        template._pattern = sparse.csc_matrix(
            (
                np.zeros(template._positions.size, dtype=np.float64),
                arrays["csc_indices"],
                arrays["csc_indptr"],
            ),
            shape=(template.n, template.n),
        )
        template.rhs = np.zeros(template.n)
        template.rhs[template.n - 1] = 1.0
        return template
