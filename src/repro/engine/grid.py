"""Structure-grouped scenario-grid orchestrator.

:class:`ScenarioBatchEngine` (PRs 1–4) evaluates many scenarios that share
**one** tangible reachability graph.  Real workloads — the paper's Table VII
mixes single-site baselines with 1/2/4 machines, two-data-center deployments
and backup ablations — are *grids* of scenarios with heterogeneous net
structures.  ``ScenarioGridOrchestrator`` turns such a grid into one
workload:

* every case's net is compiled and fingerprinted by its **rate-independent
  structure** (:func:`repro.engine.cache.structure_fingerprint` without
  rates or the net name, plus the exploration limit and the canonicalizer
  identity); cases with equal fingerprints share one tangible reachability
  graph up to a re-rating and form one *structure group*;
* the distinct graphs are obtained concurrently: :class:`~repro.engine.
  cache.TRGCache` hits skip generation outright, and the misses are
  generated in parallel on the persistent process pool of
  :mod:`repro.engine.parallel` (each worker writes its graph into the cache,
  which doubles as the zero-pickle transport back to the parent);
* each group is then dispatched through a cost-aware
  :class:`~repro.engine.batch.ScenarioBatchEngine` (re-rate + warm-started
  re-solves, measures in one GEMM, ``backend="auto"`` picking
  serial/thread/process per group);
* everything merges into one unified result frame — input order preserved,
  with per-group provenance (states, backend chosen, cache hit, generate and
  solve seconds) — optionally streamed to JSONL shards while later groups
  are still solving, so arbitrarily large grids never hold all rows in one
  report consumer.

Canonicalizers do not pickle (they are closures), so a grid case carries an
optional :class:`CanonicalizerRef` — a module-level factory named by
``"module:qualname"`` plus picklable arguments — from which both the parent
and the generation workers rebuild the callable.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import tempfile
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from pickle import PicklingError
from typing import Callable, Mapping, Optional, Sequence

from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.engine import dispatch, faults
from repro.engine.atomicio import fsync_file, replace_durably, write_text_durably
from repro.engine.batch import ScenarioBatchEngine, ScenarioSpec
from repro.engine.cache import TRGCache, structure_fingerprint
from repro.engine.dispatch import BackendPlan, plan_representation
from repro.engine.faults import FailureRecord, RetryPolicy
from repro.engine.parallel import shared_pool
from repro.spn.enabling import CompiledNet
from repro.spn.model import StochasticPetriNet
from repro.spn.reachability import (
    DEFAULT_MAX_TANGIBLE_MARKINGS,
    generate_tangible_reachability_graph,
)
from repro.spn.rewards import Measure, validate_measures
from repro.symmetry.canonicalize import rate_vector_key
from repro.symmetry.spec import SymmetrySpec
from repro.symmetry.validate import (
    measure_is_symmetric,
    validate_measure_symmetry,
    validate_rate_symmetry,
)

#: Rows per streamed JSONL shard (see ``shard_directory``).
DEFAULT_SHARD_SIZE = 256


@dataclass(frozen=True)
class CanonicalizerRef:
    """Picklable reference to a module-level canonicalizer factory.

    ``factory`` is ``"package.module:qualname"``; calling :meth:`build`
    imports the module and calls the factory with ``args``.  The factory
    must return a marking canonicalizer (or ``None``), e.g.
    :func:`repro.core.cloud_model.pm_symmetry_canonicalizer` with the
    model's :meth:`~repro.core.cloud_model.CloudSystemModel.symmetry_groups`
    as the single argument.
    """

    factory: str
    args: tuple = ()

    def build(self):
        module_name, _, qualname = self.factory.partition(":")
        if not qualname:
            raise ValueError(
                f"canonicalizer factory {self.factory!r} must be 'module:qualname'"
            )
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
        return target(*self.args)


@dataclass(frozen=True)
class GridCase:
    """One cell of a scenario grid.

    Attributes:
        name: unique row label of the case in the result frame.
        net: the declarative net of this scenario (each case may have its
            own structure; equal rate-independent structures are grouped).
        measures: reward measures to evaluate for this case (cases of one
            group may differ; the orchestrator evaluates the union).
        rates: optional rate overrides by transition name.  The orchestrator
            always re-rates a group's shared graph with the case's **full**
            rate assignment (the case net's own rates overlaid with these),
            so grouping never changes a case's numbers.
        metadata: free-form, JSON-able annotations carried into the result
            frame and the streamed shards.
        canonicalizer: optional symmetry canonicalizer reference (see
            :class:`CanonicalizerRef`); part of the structure fingerprint.
        rate_symmetry: optional *structural* :class:`~repro.symmetry.spec.
            SymmetrySpec` declaring which timed-transition blocks of this
            case's structure are exchangeable **up to a rate permutation**.
            Unlike ``canonicalizer`` (which requires the case's own rates to
            be symmetric), this spec only claims structural exchangeability:
            the orchestrator uses it to give the batch engine's dedupe a
            symmetry-aware rate digest, so cases of one group whose rate
            vectors differ only by a permutation of exchangeable blocks
            share one stationary solve.  It never changes the graph and is
            only honoured when every measure of the group is invariant
            under the spec's group (checked per run, silent fallback to the
            bit-exact digest otherwise).
    """

    name: str
    net: StochasticPetriNet
    measures: tuple[Measure, ...]
    rates: Mapping[str, float] = field(default_factory=dict)
    metadata: Mapping[str, object] = field(default_factory=dict)
    canonicalizer: Optional[CanonicalizerRef] = None
    rate_symmetry: Optional[SymmetrySpec] = None

    def full_rates(self) -> dict[str, float]:
        """The complete timed-rate assignment of this case."""
        rates = {
            transition.name: float(transition.rate)
            for transition in self.net.transitions
            if not transition.immediate
        }
        rates.update({name: float(value) for name, value in self.rates.items()})
        return rates


@dataclass
class GridCaseResult:
    """One row of the unified grid result frame.

    ``solve_source`` tells how the row's stationary vector was obtained:
    ``"solved"``, ``"deduped"`` (shared with an earlier rate-identical case
    of the same group; see :meth:`ScenarioBatchEngine.run`) or
    ``"checkpoint"`` (restored from a previous run's shards by a resumed
    run instead of being re-solved).  ``grid_index`` is the case's position
    in the input grid (``-1`` on rows built outside a grid run).
    """

    name: str
    measures: dict[str, float]
    number_of_states: int
    group: str
    backend: str
    graph_source: str
    solve_seconds: float
    metadata: Mapping[str, object] = field(default_factory=dict)
    solve_source: str = "solved"
    grid_index: int = -1

    def value(self, measure_name: str) -> float:
        return self.measures[measure_name]

    def as_record(self, index: int) -> dict:
        """JSON-able representation (used by the streamed shards)."""
        return {
            "index": index,
            "name": self.name,
            "group": self.group,
            "measures": dict(self.measures),
            "number_of_states": self.number_of_states,
            "backend": self.backend,
            "graph_source": self.graph_source,
            "solve_seconds": self.solve_seconds,
            "solve_source": self.solve_source,
            "metadata": dict(self.metadata),
        }


@dataclass
class GridGroupReport:
    """Provenance of one structure group of a grid run.

    The ``*_at`` fields are offsets in seconds from the start of the
    orchestrated run, so a consumer (``bench_pipeline.py``, the benchmark
    JSON) can reconstruct the per-group timeline and *verify* that the
    pipeline overlapped stages — group A's ``solve_started_at`` falling
    before group B's ``generate_finished_at`` is overlap, not assertion.
    ``queue_wait_seconds`` is how long the group sat ready-to-solve before
    a solve slot picked it up (the work-stealing queue's latency).

    The ``symmetry*`` fields are the group's **lumping provenance**: with a
    canonicalizer built from a :class:`~repro.symmetry.spec.SymmetrySpec`,
    ``symmetry`` names the lumping kind (``"pm"``, ``"dc+pm"``),
    ``symmetry_group_order`` is the declared group's order ``|G|``, each of
    the ``number_of_states`` tangible states is one orbit, and
    ``states_before_estimate`` is the ``number_of_states × |G|`` upper
    bound on the unlumped tangible count (exact only when every orbit is
    free; boundary orbits — e.g. markings with identical machine blocks —
    are smaller, so the true unlumped count is ≤ the estimate).
    """

    key: str
    cases: int
    number_of_states: int
    graph_source: str  # "cache" | "generated" | "generated:pool"
    backend: str
    generate_seconds: float
    solve_seconds: float
    generate_finished_at: float = 0.0
    solve_started_at: float = 0.0
    queue_wait_seconds: float = 0.0
    deduped_cases: int = 0
    #: How many times the group's graph generation ran (1 on the happy
    #: path; more after injected or real worker failures and retries).
    generate_attempts: int = 1
    #: How many times the group's batch solve ran (1 on the happy path).
    solve_attempts: int = 1
    #: Lumping provenance (``None``/1/``None`` when the group ran unlumped).
    symmetry: Optional[str] = None
    symmetry_group_order: int = 1
    states_before_estimate: Optional[int] = None
    #: State-space representation the memory planner routed this group to
    #: (``"in_ram"`` or ``"chunked"``) and why.
    representation: str = "in_ram"
    planner_reason: Optional[str] = None
    #: Planner inputs: estimated peak bytes of the chosen representation
    #: and the budget it was compared against (``None`` = unbounded).
    estimated_peak_bytes: Optional[int] = None
    memory_budget_bytes: Optional[int] = None
    #: Process-wide peak RSS (self + reaped children) sampled when the
    #: group's solve finished — monotone within a process, so this is an
    #: upper bound attributable to work up to and including this group.
    peak_rss_bytes: Optional[int] = None

    @property
    def cache_hit(self) -> bool:
        return self.graph_source == "cache"

    @property
    def lumped(self) -> bool:
        """Whether this group's graph was built under a symmetry spec."""
        return self.symmetry is not None

    def lumping(self) -> dict:
        """JSON-able lumping provenance (recorded by the benchmarks)."""
        return {
            "symmetry": self.symmetry,
            "group_order": self.symmetry_group_order,
            "orbits": self.number_of_states,
            "states_before_estimate": self.states_before_estimate,
        }

    def timeline(self) -> dict:
        """JSON-able per-group timeline (recorded by the benchmarks)."""
        return {
            "generate_finished_at": round(self.generate_finished_at, 4),
            "solve_started_at": round(self.solve_started_at, 4),
            "queue_wait_seconds": round(self.queue_wait_seconds, 4),
            "generate_seconds": round(self.generate_seconds, 4),
            "solve_seconds": round(self.solve_seconds, 4),
        }


@dataclass
class GridOutcome:
    """Unified result frame of one orchestrated grid.

    ``results`` preserves the input case order; ``groups`` report the
    distinct structures in first-appearance order.  ``deduped_cases`` counts
    the grid rows that shared an earlier rate-identical row's stationary
    vector instead of solving; ``pipelined`` records whether the
    work-stealing generate→solve pipeline ran (``False`` on the barrier
    path — ``pipeline=False``, a single group, or a single-worker budget).

    A run that quarantined tasks is **partial**: the unsolvable cases are
    missing from ``results`` and accounted for — stage, attempt count,
    final error — in ``failures``.  ``pool_rebuilds``/``watchdog_kills``
    record the self-healing activity of the run (worker-pool replacements
    after abrupt deaths, hung workers killed past their deadline), and
    ``restored_cases`` how many rows a resumed run recovered from a
    previous run's checkpoint shards instead of re-solving.

    ``interrupted`` marks a run stopped early through the orchestrator's
    ``cancel_event``: in-flight group solves were allowed to finish (and
    were checkpointed), but no new work was dispatched, so some cases are
    missing from ``results`` without being failures — a later resumed run
    against the same shard directory picks up exactly where this one
    stopped.
    """

    results: list[GridCaseResult]
    groups: list[GridGroupReport]
    total_seconds: float
    shard_paths: list[Path] = field(default_factory=list)
    deduped_cases: int = 0
    pipelined: bool = False
    failures: list[FailureRecord] = field(default_factory=list)
    pool_rebuilds: int = 0
    watchdog_kills: int = 0
    restored_cases: int = 0
    interrupted: bool = False

    @property
    def partial(self) -> bool:
        """Whether any case was quarantined instead of solved."""
        return bool(self.failures)

    def failed_cases(self) -> list[str]:
        """Names of every quarantined case, in failure order."""
        return [name for record in self.failures for name in record.cases]

    def result(self, name: str) -> GridCaseResult:
        for row in self.results:
            if row.name == name:
                return row
        raise KeyError(f"no grid case named {name!r}")

    def as_records(self) -> list[dict]:
        return [
            row.as_record(row.grid_index if row.grid_index >= 0 else position)
            for position, row in enumerate(self.results)
        ]


@dataclass
class _Group:
    """Internal bookkeeping of one structure group during a run."""

    key: str
    #: Full rateless digest used as the TRGCache entry key — rate-only
    #: variants of one structure share the entry across runs (the
    #: orchestrator re-rates every loaded graph with each case's full rate
    #: assignment, so the stored rates are irrelevant).
    cache_key: str
    representative: GridCase
    compiled: CompiledNet
    canonicalize: object
    canonical_id: Optional[str]
    case_indices: list[int] = field(default_factory=list)
    graph: object = None
    graph_source: str = ""
    generate_seconds: float = 0.0
    #: Offset (seconds from run start) at which the graph became available.
    generate_finished_at: float = 0.0
    #: Workers granted to this group's solve by the pipeline budget.
    solve_grant: int = 1
    #: Generation / solve attempts so far (retries increment these).
    generate_attempts: int = 0
    solve_attempts: int = 0
    #: Earliest ``perf_counter`` time a requeued generation may redispatch
    #: (exponential backoff between retries).
    not_before: float = 0.0
    #: Memory-planner routing of this group (filled before generation).
    plan: Optional[BackendPlan] = None

    @property
    def representation(self) -> str:
        return self.plan.representation if self.plan is not None else "in_ram"


def _generate_into_cache(
    net: StochasticPetriNet,
    max_states: int,
    cache_directory: str,
    canonicalizer: Optional[CanonicalizerRef],
    cache_key: str,
    representation: str = "in_ram",
) -> float:
    """Worker-side TRG generation; the cache entry is the transport back.

    Module-level (and argument-picklable) so the persistent process pool of
    :mod:`repro.engine.parallel` can run it; returns the generation seconds.
    ``representation="chunked"`` streams the graph to an on-disk chunk entry
    instead of materialising it (the worker's own footprint stays bounded).
    """
    started = time.perf_counter()
    compiled = CompiledNet(net)
    canonicalize = canonicalizer.build() if canonicalizer is not None else None
    if representation == "chunked":
        TRGCache(cache_directory).generate_chunked(
            compiled, max_states, canonicalize=canonicalize, key=cache_key
        )
    else:
        graph = generate_tangible_reachability_graph(
            compiled, max_states=max_states, canonicalize=canonicalize
        )
        TRGCache(cache_directory).store(graph, max_states, key=cache_key)
    return time.perf_counter() - started


def load_checkpoint(directory: Path) -> dict[str, dict]:
    """Completed case records of a directory's checkpoint shards, by name.

    Reads every ``grid-shard-*.jsonl`` of ``directory`` leniently: an
    unreadable shard, a torn trailing line (a writer killed mid-``write``
    before the atomic-rename writer landed) or a non-record document is
    skipped, never fatal — a resumed run simply re-solves whatever it cannot
    restore.  Later shards win on duplicate names.
    """
    records: dict[str, dict] = {}
    for path in sorted(Path(directory).glob("grid-shard-*.jsonl")):
        try:
            text = path.read_text()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and isinstance(record.get("name"), str):
                if isinstance(record.get("measures"), dict):
                    records[record["name"]] = record
    return records


def read_manifest(directory: Path) -> Optional[dict]:
    """The ``grid-manifest.json`` of a checkpoint directory, or ``None``.

    Lenient like :func:`load_checkpoint`: a missing, unreadable or
    non-object manifest answers ``None`` (a resumed run then matches cases
    purely by name).
    """
    try:
        payload = json.loads((Path(directory) / "grid-manifest.json").read_text())
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class _ShardWriter:
    """Streams result records to fixed-size JSONL shards as groups finish.

    Thread-safe: the pipelined orchestrator appends from concurrent group
    solves (records always carry their original grid ``index``, so shard
    order is group-completion order on every path).

    The shard files double as the run's **checkpoint**: each shard is
    written to a temporary file and atomically renamed into place, so a
    killed run leaves only whole shards behind and
    :func:`load_checkpoint` can trust every line it parses.  In ``resume``
    mode existing shards are kept (they hold the completed cases a resumed
    run restores) and new shards continue the numbering after them.
    """

    def __init__(self, directory: Path, shard_size: int, resume: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = sorted(self.directory.glob("grid-shard-*.jsonl"))
        if resume:
            numbers = []
            for path in existing:
                try:
                    numbers.append(int(path.stem.rsplit("-", 1)[-1]))
                except ValueError:
                    continue
            self._next_shard = max(numbers) + 1 if numbers else 0
        else:
            # Shards are numbered from zero each fresh run; stale shards
            # from a previous (larger) run must not survive next to the
            # fresh ones, or a consumer globbing grid-shard-*.jsonl would
            # mix the two grids.
            for stale in existing:
                stale.unlink()
            self._next_shard = 0
        self.shard_size = max(1, int(shard_size))
        #: Shards written by *this* run (a resumed run's outcome does not
        #: re-claim the previous run's files).
        self.paths: list[Path] = []
        self._pending: list[dict] = []
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        with self._lock:
            self._pending.append(record)
            if len(self._pending) >= self.shard_size:
                self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._pending:
            return
        path = self.directory / f"grid-shard-{self._next_shard:04d}.jsonl"
        descriptor, temporary = tempfile.mkstemp(
            dir=self.directory, prefix=".shard-", suffix=".tmp"
        )
        try:
            with open(descriptor, "w") as handle:
                for record in self._pending:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                # fsync before the rename: the atomic replace alone only
                # survives process death — after a power loss an unflushed
                # shard (or the rename itself) may simply be gone, and a
                # "checkpoint" that evaporates is no checkpoint.
                handle.flush()
                fsync_file(handle.fileno())
            replace_durably(temporary, path)
        except BaseException:
            Path(temporary).unlink(missing_ok=True)
            raise
        self._next_shard += 1
        self.paths.append(path)
        self._pending = []


class ScenarioGridOrchestrator:
    """Evaluates a grid of heterogeneous scenarios as one workload.

    Args:
        cache: optional persistent :class:`TRGCache`; hits skip generation
            and generated graphs are stored for the next run.  Without a
            cache a throwaway directory is still used as the transport
            between generation workers and the parent.
        method: stationary solver selection per group engine.
        max_states: tangible state-space limit of every generation (part of
            the grouping fingerprint).
        jobs: worker budget of each group's batch dispatch (forwarded to
            :meth:`ScenarioBatchEngine.run`).
        backend: batch backend per group (``"auto"`` is cost-aware).
        generation_workers: process-pool width of the concurrent generation
            phase; defaults to the effective CPU cores, clamped to the
            number of distinct structures that actually need generating.
        shard_directory: when set, result rows are streamed to JSONL shards
            (``grid-shard-0000.jsonl``…) in group-completion order while the
            remaining groups are still solving; each record carries its
            original grid ``index`` for reassembly.  The directory holds
            exactly one grid's shards: any ``grid-shard-*.jsonl`` files from
            a previous run are removed when the run starts.
        shard_size: rows per shard file.
        pipeline: run the work-stealing generate→solve pipeline (the
            default): each structure group's solve is enqueued the moment
            its graph lands, so small groups solve while big structures are
            still in BFS.  The pipeline needs more than one structure group
            and more than one worker in the budget (``jobs``, defaulting to
            the effective cores) — otherwise, and with ``pipeline=False``,
            the two-phase barrier path runs (generate everything, then solve
            group by group in first-appearance order).
        dedupe: share stationary vectors across rate-identical cases of one
            group (one solve per distinct resolved rate vector; measures
            stay per-case).  Surfaced per group in
            :attr:`GridGroupReport.deduped_cases` and grid-wide in
            :attr:`GridOutcome.deduped_cases`.
        memory_budget: peak-memory budget in bytes for the per-group
            representation planner (:func:`~repro.engine.dispatch.
            plan_representation`).  ``None`` resolves the default chain —
            the ``REPRO_MEMORY_BUDGET`` environment variable, else half the
            machine's available RAM.  Each structure group's estimated
            in-RAM footprint is compared against the budget before any
            generation: groups that fit run on the in-RAM backend, groups
            that do not are routed to the out-of-core chunked backend
            (on-disk CSR chunks + matrix-free Krylov), and groups too large
            even for chunked are **refused** — quarantined with a sizing
            message instead of thrashing the machine.
        retry: self-healing policy (:class:`~repro.engine.faults.
            RetryPolicy`): per-task retries with exponential backoff,
            per-kind deadlines, the pool restart budget.  A task still
            failing after its retries is **quarantined** — its cases land in
            :attr:`GridOutcome.failures` as a structured
            :class:`~repro.engine.faults.FailureRecord` instead of aborting
            the run.  Defaults to ``RetryPolicy()``.
        resume: restore completed cases from the checkpoint shards already
            present in ``shard_directory`` (matched by case name, marked
            ``solve_source="checkpoint"``) and dispatch only the missing
            ones.  Requires ``shard_directory``.
        cancel_event: optional :class:`threading.Event`; once set, the run
            stops dispatching new work at the next group boundary, lets the
            in-flight group solves finish (checkpointing them), flushes the
            shards and returns with :attr:`GridOutcome.interrupted` set.
            The cooperative cancellation hook of the availability service —
            a cancelled or drained job leaves a clean checkpoint a resumed
            run completes bit-identically.
        log_callback: optional one-string-argument callable receiving live
            progress lines (groups generated/solving/done, dedupe hits);
            ``None`` keeps the run silent.
    """

    def __init__(
        self,
        *,
        cache: Optional[TRGCache] = None,
        method: str = "auto",
        max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
        jobs: Optional[int] = None,
        backend: str = "auto",
        generation_workers: Optional[int] = None,
        shard_directory: Optional[Path] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        pipeline: bool = True,
        dedupe: bool = True,
        memory_budget: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        resume: bool = False,
        cancel_event: Optional[threading.Event] = None,
        log_callback: Optional[Callable[[str], None]] = None,
    ) -> None:
        if resume and shard_directory is None:
            raise ValueError("resume=True needs a shard_directory to resume from")
        self.cache = cache
        self.method = method
        self.max_states = max_states
        self.jobs = jobs
        self.backend = backend
        self.generation_workers = generation_workers
        self.shard_directory = shard_directory
        self.shard_size = shard_size
        self.pipeline = pipeline
        self.dedupe = dedupe
        self.memory_budget = memory_budget
        self.retry = retry if retry is not None else RetryPolicy()
        self.resume = resume
        self.cancel_event = cancel_event
        self.log_callback = log_callback

    @classmethod
    def attach(cls, directory: Path, **kwargs) -> "ScenarioGridOrchestrator":
        """Resume-by-directory entry point.

        Builds an orchestrator that checkpoints into ``directory`` and
        restores whatever completed cases its shards already hold — the
        one-liner a crash-recovering caller (the availability service, a
        ``repro grid --resume`` equivalent) uses to re-attach to a run that
        was killed mid-grid.  Any other constructor keyword passes through.
        """
        kwargs.pop("shard_directory", None)
        kwargs.pop("resume", None)
        return cls(shard_directory=Path(directory), resume=True, **kwargs)

    def _cancelled(self) -> bool:
        return self.cancel_event is not None and self.cancel_event.is_set()

    def _log(self, message: str) -> None:
        if self.log_callback is not None:
            try:
                self.log_callback(message)
            except Exception:  # noqa: BLE001 - progress must never fail a run
                pass

    def _worker_budget(self) -> int:
        """Total worker budget the pipeline splits between its stages.

        An explicit ``jobs`` is honoured as given (even above the effective
        cores — useful for exercising the pipeline on small machines; the
        per-batch engine still clamps its own workers); without it the
        budget is the effective core count.
        """
        if self.jobs is not None:
            return max(1, int(self.jobs))
        return dispatch.effective_cpu_count()

    # --- grouping ---------------------------------------------------------

    def group_key(self, compiled: CompiledNet, canonical_id: Optional[str]) -> str:
        """Structure-group fingerprint of one compiled net.

        Rates and the net name are excluded — scenarios differing only in
        timed rates (different α, disaster mean times, city distances…)
        share a group; anything structural (places, arcs, guards, immediate
        race data, the exploration limit, the canonicalizer) splits them.
        """
        return self._group_digest(
            structure_fingerprint(compiled, include_rates=False, include_name=False),
            canonical_id,
        )[:16]

    def _group_digest(
        self, structure_key: str, canonical_id: Optional[str]
    ) -> str:
        """Full rateless digest: prefix = group key, whole = cache key."""
        digest = hashlib.sha256()
        digest.update(structure_key.encode())
        digest.update(f"|max_states={self.max_states}".encode())
        digest.update(f"|canonicalize={canonical_id or ''}".encode())
        return digest.hexdigest()

    def _grouped(
        self, cases: Sequence[GridCase], skip: frozenset[int] = frozenset()
    ) -> dict[str, _Group]:
        """Group cases by structure; ``skip`` holds restored case indices."""
        groups: dict[str, _Group] = {}
        # Rate-only grids pass the same net / canonicalizer objects many
        # times (e.g. an ablation's reference structure); memoize the
        # compilation + fingerprint per net object and the canonicalizer
        # build per ref object so grouping is O(distinct structures).
        compiled_by_net: dict[int, tuple[CompiledNet, str]] = {}
        canonicalizer_by_ref: dict[int, object] = {}
        measures_validated: set[tuple[int, str]] = set()
        for index, case in enumerate(cases):
            if index in skip:
                continue
            validate_measures(case.measures)
            if case.canonicalizer is None:
                canonicalize = None
            elif id(case.canonicalizer) in canonicalizer_by_ref:
                canonicalize = canonicalizer_by_ref[id(case.canonicalizer)]
            else:
                canonicalize = case.canonicalizer.build()
                canonicalizer_by_ref[id(case.canonicalizer)] = canonicalize
            canonical_id = getattr(canonicalize, "cache_id", None)
            if canonicalize is not None and canonical_id is None:
                raise ValueError(
                    f"case {case.name!r}: the canonicalizer factory must return a "
                    f"callable with a stable 'cache_id' (grouping and caching "
                    f"would be unsafe otherwise)"
                )
            if id(case.net) in compiled_by_net:
                compiled, structure_key = compiled_by_net[id(case.net)]
            else:
                compiled = CompiledNet(case.net)
                structure_key = structure_fingerprint(
                    compiled, include_rates=False, include_name=False
                )
                compiled_by_net[id(case.net)] = (compiled, structure_key)
            spec = getattr(canonicalize, "spec", None)
            if isinstance(spec, SymmetrySpec):
                # Fail fast, before any graph is generated: a lumped chain
                # is exact only if the case's rates are constant on the
                # declared orbits and every requested measure is invariant
                # under the group.  (The measure probe is memoized per
                # measure tuple × spec — rate-only grids reuse both.)
                validate_rate_symmetry(
                    case.full_rates(), spec, context=case.name
                )
                probe_key = (id(case.measures), spec.cache_id)
                if probe_key not in measures_validated:
                    validate_measure_symmetry(
                        case.measures,
                        spec,
                        compiled.place_names,
                        context=case.name,
                    )
                    measures_validated.add(probe_key)
            digest = self._group_digest(structure_key, canonical_id)
            key = digest[:16]
            group = groups.get(key)
            if group is None:
                group = _Group(
                    key=key,
                    cache_key=digest,
                    representative=case,
                    compiled=compiled,
                    canonicalize=canonicalize,
                    canonical_id=canonical_id,
                )
                groups[key] = group
            group.case_indices.append(index)
        return groups

    # --- memory planning ---------------------------------------------------

    def _plan_groups(
        self,
        groups: dict[str, _Group],
        cases: Sequence[GridCase],
        failures: list[FailureRecord],
    ) -> None:
        """Route every group to a representation before anything generates.

        Groups the planner refuses (too large even for the chunked backend
        under the resolved budget) are quarantined into ``failures`` with
        the planner's sizing message and removed from ``groups`` — a refusal
        is a structured partial result, never an OOM kill mid-run.
        """
        budget = dispatch.memory_budget_bytes(self.memory_budget)
        self._budget_bytes = budget
        refused: list[str] = []
        for key, group in groups.items():
            group.plan = plan_representation(
                group.compiled, self.max_states, budget_bytes=budget
            )
            if group.plan.representation == "refused":
                refused.append(key)
                failures.append(
                    FailureRecord(
                        stage="plan",
                        group=group.key,
                        cases=tuple(
                            cases[index].name for index in group.case_indices
                        ),
                        case_indices=tuple(group.case_indices),
                        attempts=1,
                        error=group.plan.reason,
                        error_type="MemoryBudgetExceeded",
                        metadata=group.plan.as_dict(),
                    )
                )
                self._log(
                    f"[grid] group {group.key} refused by the memory "
                    f"planner: {group.plan.reason}"
                )
            elif group.plan.representation == "chunked":
                self._log(
                    f"[grid] group {group.key} routed to the chunked "
                    f"backend ({group.plan.reason})"
                )
        for key in refused:
            del groups[key]

    def _load_graph(self, group: _Group, transport: TRGCache):
        """Representation-aware cache probe for one group's graph."""
        if group.representation == "chunked":
            return transport.load_chunked(
                group.compiled, self.max_states, key=group.cache_key
            )
        return transport.load(
            group.compiled, self.max_states, key=group.cache_key
        )

    # --- generation -------------------------------------------------------

    def _generation_failure(
        self, group: _Group, cases: Sequence[GridCase], error: BaseException
    ) -> FailureRecord:
        return FailureRecord(
            stage="generate",
            group=group.key,
            cases=tuple(cases[index].name for index in group.case_indices),
            case_indices=tuple(group.case_indices),
            attempts=max(1, group.generate_attempts),
            error=str(error),
            error_type=type(error).__name__,
            metadata={"max_states": self.max_states},
        )

    def _generate_in_process_final(
        self,
        group: _Group,
        cases: Sequence[GridCase],
        transport: TRGCache,
        started: float,
        failures: list[FailureRecord],
    ) -> bool:
        """In-process generation with the policy's remaining retries.

        The last line of defence of both execution paths: runs the BFS in
        the parent, retrying with backoff while the policy allows (but at
        least once, even when pool attempts already consumed the retry
        budget), and quarantines the group into ``failures`` when every
        attempt failed.  Returns whether the group now holds a graph.
        """
        total = max(
            group.generate_attempts + 1, 1 + max(0, self.retry.max_retries)
        )
        error: Optional[BaseException] = None
        while group.generate_attempts < total:
            group.generate_attempts += 1
            try:
                # Persist only into a real cache: with cache=None the
                # transport is a throwaway scratch directory that exists
                # purely to carry graphs back from pool workers, and the
                # in-process path already holds the graph in memory.
                self._generate_in_process(
                    group, transport, persist=self.cache is not None
                )
            except Exception as raised:  # noqa: BLE001 - quarantine, not abort
                error = raised
                if group.generate_attempts < total:
                    time.sleep(self.retry.backoff(group.generate_attempts))
                continue
            group.generate_finished_at = time.perf_counter() - started
            return True
        if error is None:
            error = RuntimeError("generation retries exhausted on the worker pool")
        failures.append(self._generation_failure(group, cases, error))
        self._log(
            f"[grid] group {group.key} quarantined after "
            f"{group.generate_attempts} generation attempt(s): {error}"
        )
        return False

    def _ensure_graphs(
        self,
        groups: dict[str, _Group],
        transport: TRGCache,
        started: float,
        cases: Sequence[GridCase],
        failures: list[FailureRecord],
    ) -> None:
        """Load every group's graph from cache or generate it (concurrently).

        ``started`` is the run's ``perf_counter`` origin; every group's
        ``generate_finished_at`` offset is stamped against it so the barrier
        path reports the same timeline fields as the pipeline.  Groups whose
        generation keeps failing past the retry policy are quarantined into
        ``failures`` (their ``graph`` stays ``None``) instead of failing the
        run.
        """
        misses: list[_Group] = []
        for group in groups.values():
            probe_started = time.perf_counter()
            graph = self._load_graph(group, transport)
            if graph is not None:
                group.graph = graph
                group.graph_source = "cache"
                group.generate_seconds = time.perf_counter() - probe_started
                group.generate_finished_at = time.perf_counter() - started
            else:
                misses.append(group)
        if not misses:
            return
        requested = (
            self.generation_workers
            if self.generation_workers is not None
            else dispatch.effective_cpu_count()
        )
        workers = max(1, min(int(requested), len(misses)))
        if workers > 1:
            self._generate_on_pool(misses, transport, workers)
            finished_at = time.perf_counter() - started
            for group in misses:
                if group.graph is not None:
                    group.generate_finished_at = finished_at
        for group in misses:  # pool failures (or workers == 1) fall through
            if group.graph is None:
                self._generate_in_process_final(
                    group, cases, transport, started, failures
                )

    def _generate_on_pool(
        self, misses: list[_Group], transport: TRGCache, workers: int
    ) -> None:
        """Concurrent generation of all cache misses on the persistent pool.

        Each worker stores its graph in ``transport`` (the configured cache
        or the run's throwaway transport directory) and the parent loads it
        back — graphs never travel through pickles.  Any failure —
        unpicklable nets, a broken pool, a worker error — degrades to the
        in-process path for the affected groups.
        """
        directory = str(transport.directory)
        futures = {}
        try:
            width = min(workers, len(misses))
            for group in misses:
                group.generate_attempts += 1
                futures[group.key] = shared_pool.submit(
                    "generate",
                    width,
                    _generate_into_cache,
                    group.representative.net,
                    self.max_states,
                    directory,
                    group.representative.canonicalizer,
                    group.cache_key,
                    group.representation,
                )
        except (PicklingError, TypeError, AttributeError, OSError) as error:
            # A mid-loop failure (fork exhaustion, an unpicklable net) must
            # not leave already-queued generations running concurrently with
            # the serial fallback — cancel what can be cancelled and drain
            # the rest so nothing is generated twice.
            for future in futures.values():
                future.cancel()
            for group in misses:
                future = futures.get(group.key)
                if future is None or future.cancelled():
                    continue
                try:
                    seconds = future.result()
                except Exception:  # noqa: BLE001 - best-effort drain
                    continue
                graph = self._load_graph(group, transport)
                if graph is not None:
                    group.graph = graph
                    group.graph_source = "generated:pool"
                    group.generate_seconds = seconds
            warnings.warn(
                f"concurrent grid generation unavailable ({error}); generating "
                f"serially",
                stacklevel=4,
            )
            return
        broken = False
        for group in misses:
            try:
                seconds = futures[group.key].result()
            except BrokenProcessPool:
                broken = True
                continue
            except Exception as error:  # noqa: BLE001 - isolate per group
                warnings.warn(
                    f"grid generation worker failed for group {group.key} "
                    f"({error}); regenerating in-process",
                    stacklevel=4,
                )
                continue
            graph = self._load_graph(group, transport)
            if graph is not None:
                group.graph = graph
                group.graph_source = "generated:pool"
                group.generate_seconds = seconds
        if broken and shared_pool.is_broken():
            # Replace the dead pool now (and count the rebuild in the run's
            # provenance); the affected groups regenerate in-process.
            shared_pool.rebuild()

    def _generate_in_process(
        self, group: _Group, transport: TRGCache, persist: bool = True
    ) -> None:
        started = time.perf_counter()
        faults.perturb("generate.inprocess")
        if group.representation == "chunked":
            # The chunk entry *is* the graph's storage, so it always lands
            # in the transport directory (a scratch transport keeps it
            # alive exactly as long as the run needs it).
            group.graph = transport.generate_chunked(
                group.compiled,
                self.max_states,
                canonicalize=group.canonicalize,
                key=group.cache_key,
            )
            group.graph_source = "generated"
            group.generate_seconds = time.perf_counter() - started
            return
        graph = generate_tangible_reachability_graph(
            group.compiled,
            max_states=self.max_states,
            canonicalize=group.canonicalize,
        )
        if persist:
            try:
                transport.store(graph, self.max_states, key=group.cache_key)
            except (OSError, ValueError) as error:
                warnings.warn(
                    f"could not persist the reachability graph of group "
                    f"{group.key} to {transport.directory}: {error}",
                    stacklevel=3,
                )
        group.graph = graph
        group.graph_source = "generated"
        group.generate_seconds = time.perf_counter() - started

    # --- measures ---------------------------------------------------------

    @staticmethod
    def _merged_measures(
        group_cases: Sequence[GridCase],
    ) -> tuple[list[Measure], list[dict[str, str]]]:
        """Union of the group's measures under collision-free internal names.

        Cases of one group may define different measures — or worse, the
        *same* name with different expressions (e.g. two availability
        thresholds).  Every distinct measure gets an internal name and is
        evaluated once for the whole batch (extra GEMM columns are nearly
        free); the per-case mapping restores the original names.
        """
        merged: list[Measure] = []
        identities: dict[tuple, str] = {}
        mappings: list[dict[str, str]] = []
        for case in group_cases:
            mapping: dict[str, str] = {}
            for measure in case.measures:
                identity = (type(measure).__name__,) + tuple(
                    (field_name, repr(value))
                    for field_name, value in sorted(vars(measure).items())
                    if field_name != "name"
                )
                internal = identities.get(identity)
                if internal is None:
                    internal = f"m{len(merged)}"
                    identities[identity] = internal
                    merged.append(replace(measure, name=internal))
                mapping[measure.name] = internal
            mappings.append(mapping)
        return merged, mappings

    # --- run --------------------------------------------------------------

    # --- checkpoint/resume --------------------------------------------------

    def _restore_checkpoint(
        self, cases: Sequence[GridCase]
    ) -> dict[int, GridCaseResult]:
        """Rows restored from a previous run's shards, by grid index."""
        checkpoint = load_checkpoint(self.shard_directory)
        if not checkpoint:
            return {}
        self._check_manifest(cases)
        restored: dict[int, GridCaseResult] = {}
        for index, case in enumerate(cases):
            record = checkpoint.get(case.name)
            if record is None:
                continue
            try:
                restored[index] = GridCaseResult(
                    name=case.name,
                    measures={
                        str(name): float(value)
                        for name, value in record["measures"].items()
                    },
                    number_of_states=int(record.get("number_of_states", 0)),
                    group=str(record.get("group", "")),
                    backend=str(record.get("backend", "")),
                    graph_source=str(record.get("graph_source", "")),
                    solve_seconds=float(record.get("solve_seconds", 0.0)),
                    metadata=dict(record.get("metadata", {})),
                    solve_source="checkpoint",
                    grid_index=index,
                )
            except (TypeError, ValueError, KeyError):
                continue  # malformed record: re-solve the case instead
        if restored:
            self._log(
                f"[grid] resumed: {len(restored)}/{len(cases)} case(s) "
                f"restored from checkpoint shards"
            )
        return restored

    def _manifest_path(self) -> Path:
        return Path(self.shard_directory) / "grid-manifest.json"

    def _names_digest(self, cases: Sequence[GridCase]) -> str:
        return hashlib.sha256(
            "\n".join(case.name for case in cases).encode()
        ).hexdigest()

    def _write_manifest(self, cases: Sequence[GridCase]) -> None:
        payload = {
            "format": 1,
            "cases": len(cases),
            "names_sha256": self._names_digest(cases),
        }
        # Durable (fsync-before-rename) like the shards: the manifest is
        # what lets a resumed run detect a different grid, so it must not
        # vanish in a power loss either.
        write_text_durably(
            self._manifest_path(), json.dumps(payload, sort_keys=True) + "\n"
        )

    def _check_manifest(self, cases: Sequence[GridCase]) -> None:
        path = self._manifest_path()
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, ValueError):
            return  # no/unreadable manifest: name matching carries resume
        if payload.get("names_sha256") != self._names_digest(cases):
            warnings.warn(
                f"the checkpoint in {self.shard_directory} was written by a "
                f"different grid ({payload.get('cases')} case(s)); resuming "
                f"by case name — only identically-named cases are restored",
                stacklevel=4,
            )

    # --- execution ----------------------------------------------------------

    def run(self, cases: Sequence[GridCase]) -> GridOutcome:
        """Evaluate the whole grid; results come back in input order."""
        cases = list(cases)
        started = time.perf_counter()
        if not cases:
            if self.shard_directory is not None and not self.resume:
                # Honour the one-grid-per-directory contract even for an
                # empty grid: stale shards from a previous run must go.
                _ShardWriter(self.shard_directory, self.shard_size)
            return GridOutcome(results=[], groups=[], total_seconds=0.0)
        names = [case.name for case in cases]
        if len(set(names)) != len(names):
            raise ValueError("grid case names must be unique")
        restored: dict[int, GridCaseResult] = {}
        if self.resume:
            restored = self._restore_checkpoint(cases)
        groups = self._grouped(cases, skip=frozenset(restored))
        # The transport must outlive *solving*, not just generation: the
        # pipeline overlaps the two, so a scratch transport is only torn
        # down once the whole grid is done.
        if self.cache is not None:
            return self._execute(cases, groups, started, self.cache, restored)
        with tempfile.TemporaryDirectory(prefix="repro-grid-") as scratch:
            return self._execute(cases, groups, started, TRGCache(scratch), restored)

    def _execute(
        self,
        cases: list[GridCase],
        groups: dict[str, _Group],
        started: float,
        transport: TRGCache,
        restored: dict[int, GridCaseResult],
    ) -> GridOutcome:
        """Run all non-restored groups and assemble the outcome.

        Dispatches to the pipeline or the two-phase barrier path.  The
        pipeline only pays off when stages can actually overlap: it needs at
        least two structure groups (one group has nothing to overlap with)
        and a worker budget above one (a single worker would serialise the
        stages anyway — that *is* the barrier, so degrading to it keeps
        single-core runs deadlock-free by construction).
        """
        results: list[Optional[GridCaseResult]] = [None] * len(cases)
        for index, row in restored.items():
            results[index] = row
        shards: Optional[_ShardWriter] = (
            _ShardWriter(self.shard_directory, self.shard_size, resume=self.resume)
            if self.shard_directory is not None
            else None
        )
        if shards is not None and self.resume:
            self._rotate_failures()
        failures: list[FailureRecord] = []
        self._interrupted = False
        self._plan_groups(groups, cases, failures)
        rebuilds_before = shared_pool.rebuilds
        watchdog_kills = 0
        if self.pipeline and len(groups) > 1 and self._worker_budget() > 1:
            reports, watchdog_kills = self._run_pipeline(
                cases, groups, started, transport, results, shards, failures
            )
            pipelined = True
        else:
            self._ensure_graphs(groups, transport, started, cases, failures)
            reports = self._solve_groups(
                cases, groups, started, results, shards, failures
            )
            pipelined = False
        if shards is not None:
            shards.flush()
            self._write_manifest(cases)
            self._write_failures(failures)
        return GridOutcome(
            results=[row for row in results if row is not None],
            groups=reports,
            total_seconds=time.perf_counter() - started,
            shard_paths=shards.paths if shards is not None else [],
            deduped_cases=sum(report.deduped_cases for report in reports),
            pipelined=pipelined,
            failures=failures,
            pool_rebuilds=shared_pool.rebuilds - rebuilds_before,
            watchdog_kills=watchdog_kills,
            restored_cases=len(restored),
            interrupted=self._interrupted,
        )

    def _rotate_failures(self) -> None:
        """Move a previous run's ``grid-failures.jsonl`` aside on resume.

        A resumed run re-dispatches the previously failed cases, so the old
        quarantine records are stale the moment the run starts: leaving them
        in place would double-count cases that fail again (and report cases
        that now succeed).  The old file is kept for post-mortems as
        ``grid-failures.<n>.jsonl`` with ``n`` growing per resume.
        """
        path = Path(self.shard_directory) / "grid-failures.jsonl"
        if not path.exists():
            return
        rotation = 1
        while (Path(self.shard_directory) / f"grid-failures.{rotation}.jsonl").exists():
            rotation += 1
        try:
            path.replace(
                Path(self.shard_directory) / f"grid-failures.{rotation}.jsonl"
            )
        except OSError:  # pragma: no cover - unwritable checkpoint directory
            path.unlink(missing_ok=True)

    def _write_failures(self, failures: list[FailureRecord]) -> None:
        """Persist quarantine records next to the checkpoint shards.

        Failed cases are *not* checkpointed (their shard rows do not
        exist), so a later ``--resume`` automatically re-dispatches exactly
        them; the JSONL file is for post-mortem inspection.  The active file
        only ever describes *this* run (a resumed run rotates its
        predecessor's file aside first), and one case never appears twice.
        """
        path = Path(self.shard_directory) / "grid-failures.jsonl"
        if not failures:
            path.unlink(missing_ok=True)
            return
        seen: set[str] = set()
        lines: list[str] = []
        for record in failures:
            if any(name in seen for name in record.cases):
                continue  # defensive: a case is quarantined at most once
            seen.update(record.cases)
            lines.append(json.dumps(record.as_record(), sort_keys=True) + "\n")
        write_text_durably(path, "".join(lines))

    def _solve_group(
        self,
        group: _Group,
        cases: list[GridCase],
        started: float,
        max_workers: Optional[int],
    ) -> tuple[list[tuple[int, GridCaseResult]], GridGroupReport]:
        """Solve one structure group; shared by the barrier and the pipeline.

        Returns the group's result rows tagged with their original grid
        indices plus the filled-in :class:`GridGroupReport` (timeline
        offsets are stamped against the run's ``started`` origin).
        """
        faults.perturb("solve.group")
        group_cases = [cases[index] for index in group.case_indices]
        measures, mappings = self._merged_measures(group_cases)
        engine = ScenarioBatchEngine(
            group.graph,
            method=self.method,
            solve_deadline_seconds=self.retry.solve_deadline_seconds,
        )
        specs = [
            ScenarioSpec(name=case.name, rates=case.full_rates())
            for case in group_cases
        ]
        rate_key = (
            self._group_rate_key(group, group_cases, measures)
            if self.dedupe
            else None
        )
        solve_started = time.perf_counter()
        solve_started_at = solve_started - started
        batch = engine.run(
            specs,
            measures,
            max_workers=max_workers,
            backend=self.backend,
            dedupe=self.dedupe,
            rate_key=rate_key,
        )
        solve_seconds = time.perf_counter() - solve_started
        backend = engine.last_run_backend or "serial"
        stats = engine.last_run_dedupe
        rows: list[tuple[int, GridCaseResult]] = []
        for case_index, case, mapping, result in zip(
            group.case_indices, group_cases, mappings, batch
        ):
            rows.append(
                (
                    case_index,
                    GridCaseResult(
                        name=case.name,
                        measures={
                            original: result.measures[internal]
                            for original, internal in mapping.items()
                        },
                        number_of_states=result.number_of_states,
                        group=group.key,
                        backend=backend,
                        graph_source=group.graph_source,
                        solve_seconds=result.solve_seconds,
                        metadata=dict(case.metadata),
                        solve_source=result.solve_source,
                        grid_index=case_index,
                    ),
                )
            )
        lumping_spec = getattr(group.canonicalize, "spec", None)
        group_order = (
            lumping_spec.group_order
            if isinstance(lumping_spec, SymmetrySpec)
            else 1
        )
        plan = group.plan
        estimated_peak = None
        if plan is not None:
            estimated_peak = (
                plan.chunked_estimated_bytes
                if plan.representation == "chunked"
                else plan.estimated_bytes
            )
        report = GridGroupReport(
            key=group.key,
            cases=len(group.case_indices),
            number_of_states=group.graph.number_of_states,
            graph_source=group.graph_source,
            backend=backend,
            generate_seconds=group.generate_seconds,
            solve_seconds=solve_seconds,
            generate_finished_at=group.generate_finished_at,
            solve_started_at=solve_started_at,
            queue_wait_seconds=max(
                0.0, solve_started_at - group.generate_finished_at
            ),
            deduped_cases=stats.deduped if stats is not None else 0,
            generate_attempts=max(1, group.generate_attempts),
            solve_attempts=max(1, group.solve_attempts),
            symmetry=(
                lumping_spec.kind
                if isinstance(lumping_spec, SymmetrySpec)
                else None
            ),
            symmetry_group_order=group_order,
            states_before_estimate=(
                group.graph.number_of_states * group_order
                if isinstance(lumping_spec, SymmetrySpec)
                else None
            ),
            representation=group.representation,
            planner_reason=plan.reason if plan is not None else None,
            estimated_peak_bytes=estimated_peak,
            memory_budget_bytes=plan.budget_bytes if plan is not None else None,
            peak_rss_bytes=dispatch.peak_rss_bytes(),
        )
        return rows, report

    def _group_rate_key(
        self,
        group: _Group,
        group_cases: list[GridCase],
        measures: Sequence[Measure],
    ):
        """Symmetry-aware rate digest for the group's dedupe, if safe.

        Cases of one group that declare the same structural
        :attr:`GridCase.rate_symmetry` spec get their rate vectors
        canonicalized along the spec's exchangeable blocks before hashing,
        so two cases differing only by a permutation of those blocks share
        one stationary solve.  The permuted chain is the relabelled
        original, so this is exact **only if** every measure evaluated for
        the group is invariant under the spec's group — any non-invariant
        (or unrecognised) measure, a spec mismatch between cases, or a spec
        that does not fit the graph silently falls back to the bit-exact
        :func:`~repro.engine.batch.rate_digest` (returns ``None``).
        """
        from repro.spn.rewards import (
            ExpectedTokensMeasure,
            ProbabilityMeasure,
            ThroughputMeasure,
        )

        spec = group_cases[0].rate_symmetry
        if spec is None or not spec.rate_groups:
            return None
        if any(case.rate_symmetry != spec for case in group_cases[1:]):
            return None
        if spec.place_count != len(group.compiled.place_names):
            return None
        orbit_transitions = {
            name
            for rate_group in spec.rate_groups
            for name in rate_group.labels()
        }
        place_index = {
            name: position
            for position, name in enumerate(group.compiled.place_names)
        }
        for measure in measures:
            if isinstance(measure, ThroughputMeasure):
                if measure.transition in orbit_transitions:
                    return None
                continue
            if not isinstance(
                measure, (ProbabilityMeasure, ExpectedTokensMeasure)
            ):
                return None
            if not measure_is_symmetric(measure.compiled(place_index), spec):
                return None
        return rate_vector_key(spec, group.graph.transition_names)

    def _solve_group_with_retry(
        self,
        group: _Group,
        cases: list[GridCase],
        started: float,
        max_workers: Optional[int],
    ) -> tuple:
        """Run :meth:`_solve_group` under the retry policy.

        Returns ``("ok", rows, report)`` or — after ``1 + max_retries``
        failed attempts — ``("failed", record, None)`` with the structured
        :class:`~repro.engine.faults.FailureRecord` of the quarantined
        group.  Backoff sleeps happen in the calling thread, which on the
        pipeline path is a solver-pool thread, not the coordinator.
        """
        total = 1 + max(0, self.retry.max_retries)
        last_error: Optional[BaseException] = None
        for attempt in range(1, total + 1):
            group.solve_attempts = attempt
            try:
                rows, report = self._solve_group(group, cases, started, max_workers)
            except Exception as error:  # noqa: BLE001 - quarantine, not abort
                last_error = error
                if attempt < total:
                    time.sleep(self.retry.backoff(attempt))
                continue
            return ("ok", rows, report)
        record = FailureRecord(
            stage="solve",
            group=group.key,
            cases=tuple(cases[index].name for index in group.case_indices),
            case_indices=tuple(group.case_indices),
            attempts=group.solve_attempts,
            error=str(last_error),
            error_type=type(last_error).__name__,
            metadata={"backend": self.backend},
        )
        self._log(
            f"[grid] group {group.key} quarantined after "
            f"{group.solve_attempts} solve attempt(s): {last_error}"
        )
        return ("failed", record, None)

    def _solve_groups(
        self,
        cases: list[GridCase],
        groups: dict[str, _Group],
        started: float,
        results: list[Optional[GridCaseResult]],
        shards: Optional[_ShardWriter],
        failures: list[FailureRecord],
    ) -> list[GridGroupReport]:
        """Two-phase barrier path: graphs exist (or were quarantined); solve
        group by group, quarantining groups that out-fail the retry policy.
        """
        reports: list[GridGroupReport] = []
        done = 0
        solvable = [group for group in groups.values() if group.graph is not None]
        for group in solvable:
            if self._cancelled():
                self._interrupted = True
                self._log(
                    f"[grid] cancelled: {len(solvable) - done} group(s) "
                    f"left undispatched"
                )
                break
            status, payload, report = self._solve_group_with_retry(
                group, cases, started, self.jobs
            )
            if status == "ok":
                for case_index, row in payload:
                    results[case_index] = row
                    if shards is not None:
                        shards.append(row.as_record(case_index))
                reports.append(report)
            else:
                failures.append(payload)
            done += 1
            self._log(
                f"[grid] {done}/{len(solvable)} groups done · 0 generating · "
                f"0 solving · "
                f"{sum(r.deduped_cases for r in reports)} dedupe hit(s)"
            )
        return reports

    # --- work-stealing generate→solve pipeline -----------------------------

    def _run_pipeline(
        self,
        cases: list[GridCase],
        groups: dict[str, _Group],
        started: float,
        transport: TRGCache,
        results: list[Optional[GridCaseResult]],
        shards: Optional[_ShardWriter],
        failures: list[FailureRecord],
    ) -> tuple[list[GridGroupReport], int]:
        """Overlap structure-graph generation with per-group solving.

        One coordinator loop owns two future sets over one worker budget
        (:class:`~repro.engine.dispatch.PipelineBudget`):

        * *generation* tasks run on the persistent process pool
          (:data:`~repro.engine.parallel.shared_pool`, tagged
          ``"generate"``), big structures first
          (:func:`~repro.engine.dispatch.estimate_generation_cost`) so the
          longest BFS — the critical path — starts earliest;
        * *solve* tasks run on a parent thread pool (the batch engine
          underneath picks its own serial/thread/process backend for the
          granted workers) and are submitted the moment a group's graph
          lands — solves preempt idle workers instead of waiting for a
          generation barrier.

        Failures self-heal, never deadlock: a failed generation requeues
        with exponential backoff while the retry policy allows, then runs
        in-process, then quarantines; a broken pool is rebuilt (within the
        policy's restart budget — beyond it the remaining misses generate
        in-process) while queued solves keep draining; a
        :class:`~repro.engine.dispatch.TaskWatchdog` kills workers whose
        generation exceeds ``generate_deadline_seconds``, so one hung
        worker cannot stall the coordinator.  Returns the group reports and
        the number of watchdog kills.
        """
        policy = self.retry
        order = list(groups.values())
        reports_by_key: dict[str, GridGroupReport] = {}
        watchdog = dispatch.TaskWatchdog(
            {"generate": policy.generate_deadline_seconds}
        )
        watchdog_kills = 0
        rebuilds_origin = shared_pool.rebuilds
        budget = dispatch.PipelineBudget(self._worker_budget())
        # Never hand a group solve more workers than the machine has, even
        # when an explicit oversized ``jobs`` inflates the budget (the
        # budget then only governs stage interleaving).
        solve_cap = max(1, dispatch.effective_cpu_count())

        ready: deque[_Group] = deque()
        pending: deque[_Group] = deque()
        for group in order:
            probe_started = time.perf_counter()
            graph = self._load_graph(group, transport)
            if graph is not None:
                group.graph = graph
                group.graph_source = "cache"
                group.generate_seconds = time.perf_counter() - probe_started
                group.generate_finished_at = time.perf_counter() - started
                ready.append(group)
            else:
                pending.append(group)
        pending = deque(
            sorted(
                pending,
                key=lambda g: dispatch.estimate_generation_cost(g.compiled),
                reverse=True,
            )
        )
        requested_width = (
            self.generation_workers
            if self.generation_workers is not None
            else budget.total
        )
        pool_width = max(1, min(int(requested_width), max(1, len(pending))))
        directory = str(transport.directory)
        generate_futures: dict[object, _Group] = {}
        solve_futures: dict[object, _Group] = {}
        pool_broken = len(pending) == 0  # nothing to generate: skip the pool
        done_groups = 0
        dedupe_hits = 0

        def progress() -> None:
            self._log(
                f"[grid] {done_groups}/{len(order)} groups done · "
                f"{len(generate_futures)} generating · "
                f"{len(solve_futures)} solving · {dedupe_hits} dedupe hit(s)"
            )

        cancelled = False
        with ThreadPoolExecutor(
            max_workers=budget.total, thread_name_prefix="grid-solve"
        ) as solver:
            while pending or ready or generate_futures or solve_futures:
                if not cancelled and self._cancelled():
                    # Cooperative cancellation: stop dispatching, let the
                    # in-flight futures drain (finished solves are still
                    # checkpointed below), drop everything not yet started.
                    cancelled = True
                    self._interrupted = True
                    pending.clear()
                    ready.clear()
                    for future in list(generate_futures):
                        if future.cancel():
                            watchdog.forget(future)
                            budget.release_generation()
                            del generate_futures[future]
                    self._log(
                        f"[grid] cancelled: waiting for "
                        f"{len(generate_futures)} generation(s) and "
                        f"{len(solve_futures)} solve(s) in flight"
                    )
                    if not generate_futures and not solve_futures:
                        break
                # Solves first: a ready group preempts idle workers before
                # any new generation claims them.
                while ready and not cancelled:
                    group = ready.popleft()
                    granted = budget.acquire_solve()
                    group.solve_grant = granted
                    solve_futures[
                        solver.submit(
                            self._solve_group_with_retry,
                            group,
                            cases,
                            started,
                            min(granted, solve_cap),
                        )
                    ] = group
                while pending and not pool_broken:
                    now = time.perf_counter()
                    slot = next(
                        (
                            position
                            for position, candidate in enumerate(pending)
                            if candidate.not_before <= now
                        ),
                        None,
                    )
                    if slot is None:
                        break  # every miss is backing off; wait below
                    solve_pending = bool(solve_futures)
                    if not budget.acquire_generation(solve_pending=solve_pending):
                        break
                    group = pending[slot]
                    del pending[slot]
                    group.generate_attempts += 1
                    try:
                        future = shared_pool.submit(
                            "generate",
                            pool_width,
                            _generate_into_cache,
                            group.representative.net,
                            self.max_states,
                            directory,
                            group.representative.canonicalizer,
                            group.cache_key,
                            group.representation,
                        )
                    except (PicklingError, TypeError, AttributeError, OSError) as error:
                        budget.release_generation()
                        pending.appendleft(group)
                        pool_broken = True
                        warnings.warn(
                            f"concurrent grid generation unavailable ({error}); "
                            f"generating in-process",
                            stacklevel=3,
                        )
                        break
                    watchdog.watch(future, "generate")
                    generate_futures[future] = group
                if pool_broken and pending and not generate_futures:
                    # In-process fallback generation, one group per loop
                    # iteration so finished solves are still harvested (and
                    # new solves launched) between generations.
                    group = pending.popleft()
                    if self._generate_in_process_final(
                        group, cases, transport, started, failures
                    ):
                        ready.append(group)
                    else:
                        done_groups += 1
                        progress()
                    continue
                if not generate_futures and not solve_futures:
                    if pending:
                        # Nothing in flight and every miss is in backoff:
                        # sleep out the shortest backoff instead of spinning.
                        now = time.perf_counter()
                        delay = min(
                            max(0.0, candidate.not_before - now)
                            for candidate in pending
                        )
                        if delay > 0:
                            time.sleep(min(delay, 1.0))
                    continue  # ready groups launch on the next iteration
                timeout = watchdog.next_poll_seconds() if generate_futures else None
                if pending and not pool_broken:
                    now = time.perf_counter()
                    backoffs = [
                        candidate.not_before - now
                        for candidate in pending
                        if candidate.not_before > now
                    ]
                    if backoffs:
                        soonest = max(0.0, min(backoffs))
                        timeout = (
                            soonest if timeout is None else min(timeout, soonest)
                        )
                done, _ = wait(
                    set(generate_futures) | set(solve_futures),
                    timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                for token, kind, elapsed in watchdog.overdue():
                    if token in generate_futures and not token.done():
                        hung = generate_futures[token]
                        watchdog_kills += 1
                        self._log(
                            f"[grid] watchdog: generation of group {hung.key} "
                            f"ran {elapsed:.1f}s (deadline "
                            f"{policy.generate_deadline_seconds}s); killing "
                            f"pool workers"
                        )
                        # The futures of the killed workers fail with
                        # BrokenProcessPool and take the rebuild/requeue
                        # path below.
                        shared_pool.kill_workers()
                for future in done:
                    if future in solve_futures:
                        group = solve_futures.pop(future)
                        budget.release_solve(group.solve_grant)
                        status, payload, report = future.result()
                        if status == "ok":
                            for case_index, row in payload:
                                results[case_index] = row
                                if shards is not None:
                                    shards.append(row.as_record(case_index))
                            reports_by_key[group.key] = report
                            dedupe_hits += report.deduped_cases
                        else:
                            failures.append(payload)
                        done_groups += 1
                        progress()
                        continue
                    group = generate_futures.pop(future)
                    watchdog.forget(future)
                    budget.release_generation()
                    if cancelled:
                        # The graph may have landed in the transport, but a
                        # cancelled run solves nothing new; a resumed run
                        # will find it in the cache.
                        continue
                    try:
                        seconds = future.result()
                    except BrokenProcessPool:
                        if shared_pool.is_broken():
                            shared_pool.rebuild()
                        if (
                            shared_pool.rebuilds - rebuilds_origin
                            >= policy.pool_restart_budget
                        ):
                            pool_broken = True
                            warnings.warn(
                                f"the worker pool died "
                                f"{shared_pool.rebuilds - rebuilds_origin} "
                                f"time(s) this run (restart budget "
                                f"{policy.pool_restart_budget}); generating "
                                f"the remaining groups in-process",
                                stacklevel=2,
                            )
                        group.not_before = time.perf_counter() + policy.backoff(
                            max(1, group.generate_attempts)
                        )
                        pending.appendleft(group)
                        continue
                    except Exception as error:  # noqa: BLE001 - isolate per group
                        if group.generate_attempts < 1 + max(0, policy.max_retries):
                            warnings.warn(
                                f"grid generation worker failed for group "
                                f"{group.key} ({error}); retrying",
                                stacklevel=2,
                            )
                            group.not_before = (
                                time.perf_counter()
                                + policy.backoff(group.generate_attempts)
                            )
                            pending.appendleft(group)
                            continue
                        warnings.warn(
                            f"grid generation worker failed for group "
                            f"{group.key} ({error}); regenerating in-process",
                            stacklevel=2,
                        )
                        if self._generate_in_process_final(
                            group, cases, transport, started, failures
                        ):
                            ready.append(group)
                        else:
                            done_groups += 1
                            progress()
                        continue
                    graph = self._load_graph(group, transport)
                    if graph is None:
                        # The worker reported success but the entry is not
                        # loadable (e.g. evicted) — regenerate in-process.
                        self._generate_in_process(
                            group, transport, persist=self.cache is not None
                        )
                    else:
                        group.graph = graph
                        group.graph_source = "generated:pool"
                        group.generate_seconds = seconds
                    group.generate_finished_at = time.perf_counter() - started
                    ready.append(group)
        reports = [
            reports_by_key[group.key]
            for group in order
            if group.key in reports_by_key
        ]
        return reports, watchdog_kills
