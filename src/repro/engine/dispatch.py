"""Cost-aware backend dispatch for scenario batches.

PR 3's scheduler made the *mechanics* of fanning a sweep out over threads or
worker processes cheap (zero-copy shared memory, contiguous warm-start
chunks) but left the *decision* to a naive heuristic: ``backend="auto"``
always picked the process scheduler whenever ``max_workers > 1``.  On a
machine whose effective core count is smaller than the requested worker
count that is a severe pessimisation — ``BENCH_sweep.json`` measured the
full Figure 7 sweep at 0.06–0.08× of serial with 8 workers time-sharing a
single core, because every worker pays its own ILU/LU factorisation and the
fork/segment setup buys no parallelism at all.

This module makes the choice *cost-aware*:

* :func:`effective_cpu_count` reports the cores this process may actually
  use (`os.sched_getaffinity`, which honours container/cgroup CPU masks,
  falling back to ``os.cpu_count()``);
* :func:`resolve_worker_count` clamps a requested worker count to the
  effective cores, warning when it does;
* :func:`choose_backend` predicts the wall-clock of the serial path and of
  every thread/process worker count up to the clamp from a tiny calibrated
  cost model — measured cold (first, factorising) and warm (re-solve) times
  from a one/two-scenario probe or the engine's recorded history, plus
  per-worker spin-up and shared-segment packing estimates — and picks the
  cheapest plan.

The constants below are deliberately coarse (they only need to separate
regimes that differ by integer factors, not to forecast seconds); the
measured per-scenario solve times dominate every prediction.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Optional

#: Fraction of ideal speedup the thread backend typically achieves on this
#: workload (scipy factorisations release the GIL, the Python-level refill
#: and bookkeeping between solves do not).
THREAD_EFFICIENCY = 0.55

#: Fraction of ideal speedup the process backend typically achieves (workers
#: share nothing at runtime; the loss is scheduling jitter and memory
#: bandwidth, not the GIL).
PROCESS_EFFICIENCY = 0.85

#: Estimated seconds to start one worker process under each multiprocessing
#: start method.  ``fork`` attaches in tens of milliseconds; ``spawn`` pays
#: a fresh interpreter plus imports.
WORKER_SPINUP_SECONDS = {"fork": 0.05, "forkserver": 0.1, "spawn": 0.6}

#: Estimated shared-segment packing throughput (bytes copied per second)
#: used to price the zero-copy scheduler's one-off segment construction.
SEGMENT_PACK_BYTES_PER_SECOND = 1.5e9

#: Estimated seconds to start one worker thread (pool construction only).
THREAD_SPINUP_SECONDS = 0.002


def effective_cpu_count() -> int:
    """Number of CPU cores this process may actually run on.

    ``os.sched_getaffinity`` honours container / cgroup CPU masks and
    ``taskset`` restrictions; ``os.cpu_count()`` (the fallback on platforms
    without affinity support) reports the *host* core count, which inside a
    CPU-limited container can be wildly optimistic.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)


def resolve_worker_count(requested: int, stacklevel: int = 2) -> int:
    """Clamp a requested worker count to the effective cores (warning once).

    More solver workers than cores is never a win on this workload: each
    extra worker adds a full ILU/LU factorisation and the workers merely
    time-share the cores (measured at 0.06–0.08x of serial with 8 workers on
    one core).  The clamp is announced so ``--jobs 8`` on a small machine is
    not silently ignored.
    """
    requested = max(1, int(requested))
    cores = effective_cpu_count()
    if requested > cores:
        warnings.warn(
            f"requested {requested} workers but only {cores} effective CPU "
            f"core(s) are available (os.sched_getaffinity); clamping "
            f"max_workers to {cores}",
            stacklevel=stacklevel,
        )
        return cores
    return requested


@dataclass(frozen=True)
class CostObservations:
    """Measured solve times that calibrate the dispatch cost model.

    Attributes:
        cold_solve_seconds: first solve on fresh solver state — includes the
            LU/ILU factorisation every new worker must pay per batch.
        warm_solve_seconds: warm-started re-solve on existing state — the
            steady-state cost of one additional sweep point.
        source: where the numbers came from (``"probe"`` for the in-batch
            calibration solves, ``"history"`` for a previous batch).
    """

    cold_solve_seconds: float
    warm_solve_seconds: float
    source: str = "probe"

    @property
    def setup_seconds(self) -> float:
        """Per-worker one-off cost (factorisation) implied by cold - warm."""
        return max(0.0, self.cold_solve_seconds - self.warm_solve_seconds)


@dataclass(frozen=True)
class DispatchDecision:
    """Outcome of one cost-aware backend choice (kept for introspection)."""

    backend: str
    workers: int
    reason: str
    predictions: dict = field(default_factory=dict)
    observations: Optional[CostObservations] = None

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the benchmarks to record choices)."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "reason": self.reason,
            "predictions": {
                label: round(seconds, 6)
                for label, seconds in self.predictions.items()
            },
            "observations": (
                None
                if self.observations is None
                else {
                    "cold_solve_seconds": self.observations.cold_solve_seconds,
                    "warm_solve_seconds": self.observations.warm_solve_seconds,
                    "source": self.observations.source,
                }
            ),
        }


def predict_serial(observations: CostObservations, scenarios: int) -> float:
    """Predicted wall-clock of solving ``scenarios`` points serially."""
    return scenarios * observations.warm_solve_seconds


def predict_thread(
    observations: CostObservations, scenarios: int, workers: int
) -> float:
    """Predicted wall-clock of the thread backend at ``workers`` workers.

    Each worker thread pays its own factorisation (the chunks run
    independent solver chains) and the chunk solves overlap imperfectly
    (:data:`THREAD_EFFICIENCY`).
    """
    chunk = -(-scenarios // workers)  # ceil
    return (
        workers * THREAD_SPINUP_SECONDS
        + observations.setup_seconds
        + chunk * observations.warm_solve_seconds / THREAD_EFFICIENCY
    )


def predict_process(
    observations: CostObservations,
    scenarios: int,
    workers: int,
    *,
    pool_is_warm: bool = False,
    segment_bytes: int = 0,
    start_method: str = "fork",
) -> float:
    """Predicted wall-clock of the zero-copy process scheduler.

    The pool spin-up is priced at zero when a persistent pool with enough
    workers is already running (:class:`repro.engine.parallel.SweepScheduler`
    keeps one alive across batches precisely so repeated sweeps stop paying
    it); the shared-segment packing is priced per byte.
    """
    spinup = (
        0.0
        if pool_is_warm
        else workers * WORKER_SPINUP_SECONDS.get(start_method, 0.6)
    )
    pack = segment_bytes / SEGMENT_PACK_BYTES_PER_SECOND
    chunk = -(-scenarios // workers)  # ceil
    return (
        spinup
        + pack
        + observations.setup_seconds
        + chunk * observations.warm_solve_seconds / PROCESS_EFFICIENCY
    )


def choose_backend(
    observations: CostObservations,
    scenarios: int,
    max_workers: int,
    *,
    process_supported: bool = True,
    pool_is_warm: bool = False,
    segment_bytes: int = 0,
    start_method: str = "fork",
) -> DispatchDecision:
    """Pick the backend and worker count with the lowest predicted wall-clock.

    Every worker count from 2 up to ``max_workers`` (already clamped to the
    effective cores by the caller) is priced for both parallel backends;
    the serial path is always a candidate, so a batch too small to amortise
    worker spin-up and per-worker factorisation stays serial.
    """
    predictions: dict[str, float] = {
        "serial": predict_serial(observations, scenarios)
    }
    best = ("serial", 1)
    if scenarios > 1:
        for workers in range(2, max(2, max_workers) + 1):
            if workers > max_workers:
                break
            thread_label = f"thread x{workers}"
            predictions[thread_label] = predict_thread(
                observations, scenarios, workers
            )
            if predictions[thread_label] < predictions[_label(best)]:
                best = ("thread", workers)
            if process_supported:
                process_label = f"process x{workers}"
                predictions[process_label] = predict_process(
                    observations,
                    scenarios,
                    workers,
                    pool_is_warm=pool_is_warm,
                    segment_bytes=segment_bytes,
                    start_method=start_method,
                )
                if predictions[process_label] < predictions[_label(best)]:
                    best = ("process", workers)
    backend, workers = best
    reason = (
        f"predicted {predictions[_label(best)]:.3g}s for {_label(best)} vs "
        f"{predictions['serial']:.3g}s serial over {scenarios} scenario(s) "
        f"(warm solve {observations.warm_solve_seconds * 1e3:.3g} ms, "
        f"setup {observations.setup_seconds * 1e3:.3g} ms, "
        f"{observations.source})"
    )
    return DispatchDecision(
        backend=backend,
        workers=workers,
        reason=reason,
        predictions=predictions,
        observations=observations,
    )


def _label(best: tuple[str, int]) -> str:
    backend, workers = best
    return "serial" if backend == "serial" else f"{backend} x{workers}"


# --- pipelined grid execution ----------------------------------------------


def estimate_generation_cost(net) -> float:
    """Relative cost proxy of generating one net's tangible state space.

    The true state count is unknown before exploration, so the pipeline
    orders generation tasks by a structural proxy that is monotone in the
    quantities that blow the state space up in this model family: tokens in
    the initial marking (machines, VMs, spare servers) and the number of
    transitions racing over them.  The score is only ever *compared* —
    big-structures-first ordering starts the longest generation earliest so
    its solve (the grid's critical path) begins as soon as possible — and is
    never interpreted as seconds.

    ``net`` is anything exposing ``initial_marking`` and ``transitions``
    sequences (a :class:`repro.spn.enabling.CompiledNet` does).
    """
    tokens = float(sum(net.initial_marking))
    places = float(len(net.initial_marking))
    transitions = float(len(net.transitions))
    return (1.0 + tokens) * (1.0 + transitions) * (1.0 + places)


class TaskWatchdog:
    """Per-kind deadline tracking of in-flight pipeline tasks.

    The pipeline coordinator :meth:`watch`\\ es every pool future it
    submits; :meth:`overdue` reports the tokens whose kind-specific deadline
    has elapsed (so the coordinator can kill the hung workers and requeue),
    and :meth:`next_poll_seconds` bounds the coordinator's wait timeout so a
    hung worker can never stall the loop past the nearest deadline.

    Kinds without a configured deadline are simply never tracked; with no
    deadlines at all the watchdog is inert (:attr:`enabled` is ``False``).
    """

    def __init__(self, deadlines: Optional[dict] = None) -> None:
        self.deadlines: dict[str, float] = {
            kind: float(limit)
            for kind, limit in (deadlines or {}).items()
            if limit is not None and limit > 0
        }
        self._lock = threading.Lock()
        self._tasks: dict[object, tuple[str, float]] = {}

    @property
    def enabled(self) -> bool:
        return bool(self.deadlines)

    def watch(self, token: object, kind: str, now: Optional[float] = None) -> None:
        """Start the clock on one task (no-op for kinds without deadlines)."""
        if kind not in self.deadlines:
            return
        with self._lock:
            self._tasks[token] = (kind, now if now is not None else time.perf_counter())

    def forget(self, token: object) -> None:
        with self._lock:
            self._tasks.pop(token, None)

    def overdue(self, now: Optional[float] = None) -> list[tuple[object, str, float]]:
        """Tracked tasks past their deadline, as ``(token, kind, elapsed)``.

        Overdue tasks are dropped from tracking — the caller owns the
        recovery (kill + requeue) and must not be re-notified every poll.
        """
        now = now if now is not None else time.perf_counter()
        expired = []
        with self._lock:
            for token, (kind, started) in list(self._tasks.items()):
                elapsed = now - started
                if elapsed >= self.deadlines[kind]:
                    expired.append((token, kind, elapsed))
                    del self._tasks[token]
        return expired

    def next_poll_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the nearest tracked deadline (``None`` when idle)."""
        now = now if now is not None else time.perf_counter()
        with self._lock:
            if not self._tasks:
                return None
            return max(
                0.0,
                min(
                    self.deadlines[kind] - (now - started)
                    for kind, started in self._tasks.values()
                ),
            )


class PipelineBudget:
    """Splits one worker budget between overlapping generate and solve stages.

    The pipelined grid orchestrator runs structure-graph *generation* tasks
    (one process-pool worker each) concurrently with per-group *solve*
    batches.  Handing every worker to whichever stage asks first starves the
    other: generation of a huge structure would pin all cores while an
    already-generated group's solve — often the critical path — waits.  The
    budget therefore enforces two coarse rules:

    * a generation slot is one worker; while solve work is pending or
      running, at least one worker is held back from generation so a ready
      group can always start solving immediately;
    * a solve acquires every worker not currently generating (never less
      than one), so solves soak up idle capacity as generations drain —
      the "work-stealing" half of the pipeline.

    Thread-safe; ``acquire``/``release`` pairs are the caller's contract.
    """

    def __init__(self, total: int) -> None:
        self.total = max(1, int(total))
        self._lock = threading.Lock()
        self._generating = 0
        self._solving = 0

    def acquire_generation(self, solve_pending: bool = False) -> bool:
        """Try to claim one generation worker; ``False`` when the stage is full.

        With ``solve_pending`` (ready-to-solve groups exist, or solves are in
        flight) generation is capped at ``total - 1`` workers so the solve
        stage always has a core to land on.
        """
        with self._lock:
            cap = self.total - 1 if solve_pending else self.total
            cap = max(1, cap)
            if self._generating >= cap:
                return False
            self._generating += 1
            return True

    def release_generation(self) -> None:
        with self._lock:
            self._generating = max(0, self._generating - 1)

    def acquire_solve(self) -> int:
        """Claim workers for one group solve: everything not generating, >= 1."""
        with self._lock:
            granted = max(1, self.total - self._generating - self._solving)
            self._solving += granted
            return granted

    def release_solve(self, granted: int) -> None:
        with self._lock:
            self._solving = max(0, self._solving - max(0, int(granted)))

    def snapshot(self) -> dict[str, int]:
        """Current allocation (for logs and tests)."""
        with self._lock:
            return {
                "total": self.total,
                "generating": self._generating,
                "solving": self._solving,
            }


# --- memory-aware representation planning -----------------------------------

#: Environment variable carrying the memory budget (e.g. ``512M``, ``2G``).
MEMORY_BUDGET_ENVIRONMENT_VARIABLE = "REPRO_MEMORY_BUDGET"

#: Fraction of the currently *available* system memory the planner may
#: commit to one state space when no explicit budget is configured.
DEFAULT_MEMORY_FRACTION = 0.5

_SIZE_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": 1024,
    "kb": 1024,
    "kib": 1024,
    "m": 1024**2,
    "mb": 1024**2,
    "mib": 1024**2,
    "g": 1024**3,
    "gb": 1024**3,
    "gib": 1024**3,
    "t": 1024**4,
    "tb": 1024**4,
    "tib": 1024**4,
}


def parse_memory_size(text) -> int:
    """Parse ``"512M"`` / ``"2GiB"`` / ``"1048576"`` into bytes.

    Accepts ints/floats (taken as bytes) and the usual binary suffixes,
    case-insensitively.  Raises ``ValueError`` on garbage or non-positive
    sizes so a typo'd ``--memory-budget`` fails loudly instead of silently
    planning against zero bytes.
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        value = float(text)
        suffix = ""
    else:
        cleaned = str(text).strip().lower().replace(" ", "")
        digits = cleaned.rstrip("kmgtib")
        suffix = cleaned[len(digits):]
        if suffix not in _SIZE_SUFFIXES:
            raise ValueError(f"unrecognised memory size {text!r}")
        try:
            value = float(digits)
        except ValueError:
            raise ValueError(f"unrecognised memory size {text!r}") from None
        value *= _SIZE_SUFFIXES[suffix]
    if value <= 0:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return int(value)


def available_memory_bytes() -> Optional[int]:
    """Bytes of memory currently available (``/proc/meminfo`` MemAvailable).

    Returns ``None`` where the file is missing (non-Linux platforms) —
    callers fall back to an unconstrained plan rather than guessing.
    """
    try:
        with open("/proc/meminfo") as handle:
            fields = {}
            for line in handle:
                name, _, rest = line.partition(":")
                fields[name.strip()] = rest
        for name in ("MemAvailable", "MemFree", "MemTotal"):
            if name in fields:
                return int(fields[name].split()[0]) * 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - no procfs
        pass
    return None  # pragma: no cover - no usable meminfo line


def memory_budget_bytes(explicit=None) -> Optional[int]:
    """Resolve the memory budget: explicit > environment > RAM fraction.

    Precedence: an explicit value (``--memory-budget``), then the
    :data:`MEMORY_BUDGET_ENVIRONMENT_VARIABLE` variable, then
    :data:`DEFAULT_MEMORY_FRACTION` of the available system memory.
    Returns ``None`` only when nothing is configured *and* the platform
    exposes no memory information.
    """
    if explicit is not None:
        return parse_memory_size(explicit)
    configured = os.environ.get(MEMORY_BUDGET_ENVIRONMENT_VARIABLE)
    if configured:
        return parse_memory_size(configured)
    available = available_memory_bytes()
    if available is None:  # pragma: no cover - non-Linux platforms
        return None
    return int(available * DEFAULT_MEMORY_FRACTION)


def peak_rss_bytes() -> int:
    """Peak resident set size of this process and its waited-for children.

    ``ru_maxrss`` is kibibytes on Linux.  Children are included so a parent
    that farmed generation out to pool workers still reports the true
    high-water mark of the run.
    """
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (usage + children) * 1024


@dataclass(frozen=True)
class BackendPlan:
    """Outcome of one memory-aware representation choice.

    ``representation`` is ``"in_ram"``, ``"chunked"`` or ``"refused"``
    (the state space does not fit the budget under *any* representation;
    the plan's reason carries the sizing so the caller can surface it).
    """

    representation: str
    estimated_bytes: int
    chunked_estimated_bytes: int
    budget_bytes: Optional[int]
    estimated_states: int
    reason: str

    def as_dict(self) -> dict:
        return {
            "representation": self.representation,
            "estimated_bytes": self.estimated_bytes,
            "chunked_estimated_bytes": self.chunked_estimated_bytes,
            "budget_bytes": self.budget_bytes,
            "estimated_states": self.estimated_states,
            "reason": self.reason,
        }


def estimate_tangible_states(net, max_states: int) -> int:
    """Structural upper-bound proxy of the tangible state count.

    A conservative multiset bound — distributing the initial tokens over
    the places — capped at the caller's exploration limit.  Exact counts
    need generation (or the symbolic sizer); the planner only needs a
    figure that is large for nets that *can* blow up and small for nets
    that provably cannot.
    """
    import math

    tokens = int(sum(net.initial_marking))
    places = max(1, len(net.initial_marking))
    try:
        bound = math.comb(tokens + places - 1, places - 1)
    except (OverflowError, ValueError):  # pragma: no cover - astronomic nets
        return int(max_states)
    return int(min(int(max_states), bound))


def plan_representation(
    net,
    max_states: int,
    *,
    budget_bytes=None,
    expected_states: Optional[int] = None,
    forced: Optional[str] = None,
) -> BackendPlan:
    """Route one state space to ``in_ram``, ``chunked`` or ``refused``.

    Peak bytes are estimated from the structural proxies
    (:func:`estimate_tangible_states` ×
    :func:`repro.spn.kernel.estimate_state_bytes`) and compared against the
    resolved budget (:func:`memory_budget_bytes`).  ``expected_states``
    overrides the structural state-count proxy when the caller knows better
    (a cached entry, a symbolic count).  ``forced`` bypasses the comparison
    but still records the sizing in the plan.
    """
    from repro.spn.enabling import CompiledNet
    from repro.spn.kernel import estimate_state_bytes

    compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)
    states = (
        int(expected_states)
        if expected_states is not None
        else estimate_tangible_states(compiled, max_states)
    )
    per_in_ram, per_chunked = estimate_state_bytes(compiled)
    in_ram_bytes = states * per_in_ram
    chunked_bytes = states * per_chunked
    budget = memory_budget_bytes(budget_bytes)

    def plan(representation: str, reason: str) -> BackendPlan:
        return BackendPlan(
            representation=representation,
            estimated_bytes=in_ram_bytes,
            chunked_estimated_bytes=chunked_bytes,
            budget_bytes=budget,
            estimated_states=states,
            reason=reason,
        )

    if forced is not None:
        return plan(forced, f"representation forced to {forced!r} by caller")
    if budget is None:  # pragma: no cover - non-Linux platforms
        return plan("in_ram", "no memory budget resolvable; defaulting to in-RAM")
    if in_ram_bytes <= budget:
        return plan(
            "in_ram",
            f"estimated {in_ram_bytes / 1e6:.1f} MB in-RAM for ~{states} "
            f"states fits the {budget / 1e6:.1f} MB budget",
        )
    if chunked_bytes <= budget:
        return plan(
            "chunked",
            f"estimated {in_ram_bytes / 1e6:.1f} MB in-RAM exceeds the "
            f"{budget / 1e6:.1f} MB budget; chunked working set "
            f"~{chunked_bytes / 1e6:.1f} MB fits",
        )
    return plan(
        "refused",
        f"~{states} states need an estimated {chunked_bytes / 1e6:.1f} MB "
        f"even chunked, over the {budget / 1e6:.1f} MB budget; raise "
        f"--memory-budget/{MEMORY_BUDGET_ENVIRONMENT_VARIABLE}, lower "
        f"max_states, enable symmetry reduction, or size the space first "
        f"with the symbolic counter",
    )
