"""Factorisation-reusing, warm-started Krylov solver for sweep batches.

The numeric heart of the batch engine, extracted so the thread path of
:class:`~repro.engine.batch.ScenarioBatchEngine` and the process workers of
:mod:`repro.engine.parallel` run *exactly* the same floating-point
operations: filling one symbolically pre-assembled constrained balance
system (:class:`~repro.engine.system.ConstrainedSystemTemplate`), reusing
its LU/ILU factors as a preconditioner across neighbouring sweep points and
warm-starting each GMRES solve from the previous stationary vector.

Given identical scenario chains (same contiguous chunk of sweep points, in
the same order), two :class:`ReusableSolver` instances produce bitwise
identical solutions regardless of which thread or process hosts them —
which is what makes the cross-backend determinism guarantees of the sweep
scheduler testable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.engine.system import ConstrainedSystemTemplate
from repro.exceptions import AnalysisError
from repro.markov import solvers
from repro.statespace.chunked import ChunkedGraph


class KrylovConvergenceError(AnalysisError):
    """Preconditioned GMRES failed to converge on one scenario's system.

    Carries enough numeric context to diagnose the failure — which sweep
    scenario hit it and how far from the solution the final iterate was —
    instead of leaving a silently degraded vector behind.
    """

    def __init__(
        self,
        message: str,
        *,
        scenario_index: Optional[int] = None,
        residual_norm: float = float("nan"),
        iterations: int = 0,
    ) -> None:
        super().__init__(message)
        self.scenario_index = scenario_index
        self.residual_norm = residual_norm
        self.iterations = iterations


@dataclass(frozen=True)
class KrylovSettings:
    """Numeric policy shared by every worker of one sweep.

    The values mirror the constructor arguments of
    :class:`~repro.engine.batch.ScenarioBatchEngine`; the dataclass is
    picklable so process workers can be configured through their pool
    initializer.
    """

    direct_threshold: int = 20_000
    ilu_drop_tolerance: float = 1e-6
    ilu_fill_factor: float = 20.0
    gmres_tolerance: float = 1e-13
    lu_gmres_tolerance: float = 1e-12
    gmres_restart: int = 60
    gmres_max_iterations: int = 2000


class ReusableSolver:
    """Per-worker numeric state: filled system, preconditioner, warm start.

    One instance serves one contiguous chain of sweep points.  The first
    :meth:`solve` materialises the CSC system from the shared template and
    factors it; subsequent calls only re-fill the numeric values and re-use
    the previous factors as a GMRES preconditioner (neighbouring sweep
    points differ in a handful of rates, so the stale factorisation remains
    an excellent preconditioner) with the previous stationary vector as the
    initial guess.
    """

    def __init__(self, template: ConstrainedSystemTemplate, settings: KrylovSettings):
        self.template = template
        self.settings = settings
        self.system = None
        self.preconditioner = None
        self.warm_start: Optional[np.ndarray] = None
        #: Whether the most recent solve had to abandon the reuse machinery
        #: and fall back to the generic solver stack.
        self.last_solve_used_fallback = False
        #: The :class:`KrylovConvergenceError` behind the most recent
        #: fallback (``None`` when the last solve converged).
        self.last_convergence_error: Optional[KrylovConvergenceError] = None

    def _factorize(self, system) -> object:
        """Factor the current system into a preconditioner.

        Up to ``direct_threshold`` states a *complete* sparse LU is cheap
        (with the AMD-style ``MMD_AT_PLUS_A`` ordering, which produces far
        less fill than the default on these nearly-structurally-symmetric
        CTMC systems) and makes the first GMRES iteration exact; beyond that
        an incomplete LU keeps memory bounded.
        """
        settings = self.settings
        try:
            if system.shape[0] <= settings.direct_threshold:
                return sparse_linalg.splu(system, permc_spec="MMD_AT_PLUS_A")
            return sparse_linalg.spilu(
                system,
                drop_tol=settings.ilu_drop_tolerance,
                fill_factor=settings.ilu_fill_factor,
            )
        except Exception as error:
            raise AnalysisError(
                f"sparse factorisation of the balance system failed: {error}"
            ) from error

    def solve_krylov(
        self,
        edge_rates: np.ndarray,
        scenario_index: Optional[int] = None,
    ) -> np.ndarray:
        """Stationary vector via preconditioned GMRES, or raise on stall.

        If GMRES stalls (``maxiter`` exhausted or a non-finite iterate), the
        factorisation is rebuilt from the current values and the solve
        retried once; a second failure raises :class:`KrylovConvergenceError`
        carrying the scenario index and the residual norm of the final
        iterate — callers decide whether to fall back (:meth:`solve` does).
        """
        template = self.template
        if self.system is None:
            self.system = template.fresh_system(edge_rates)
        else:
            template.refill(self.system, edge_rates)

        settings = self.settings
        rhs = template.rhs
        rtol = (
            settings.lu_gmres_tolerance
            if self.system.shape[0] <= settings.direct_threshold
            else settings.gmres_tolerance
        )
        solution = None
        for attempt in ("reuse", "rebuild"):
            if self.preconditioner is None or attempt == "rebuild":
                self.preconditioner = self._factorize(self.system)
            operator = sparse_linalg.LinearOperator(
                self.system.shape, self.preconditioner.solve
            )
            x0 = None
            if self.warm_start is not None and self.warm_start.shape == rhs.shape:
                x0 = self.warm_start
            solution, info = sparse_linalg.gmres(
                self.system,
                rhs,
                M=operator,
                x0=x0,
                rtol=rtol,
                atol=0.0,
                restart=settings.gmres_restart,
                maxiter=settings.gmres_max_iterations,
            )
            if info == 0 and np.all(np.isfinite(solution)):
                probabilities = solvers.normalize_distribution(
                    np.asarray(solution).ravel()
                )
                self.warm_start = probabilities
                return probabilities
        residual_norm = float("nan")
        if solution is not None and np.all(np.isfinite(solution)):
            residual_norm = float(
                np.linalg.norm(self.system @ np.asarray(solution).ravel() - rhs)
            )
        where = (
            f"scenario {scenario_index}"
            if scenario_index is not None
            else "a scenario"
        )
        raise KrylovConvergenceError(
            f"preconditioned GMRES did not converge on {where} after "
            f"{settings.gmres_max_iterations} iteration(s) with a rebuilt "
            f"factorisation (final residual norm {residual_norm:.3e})",
            scenario_index=scenario_index,
            residual_norm=residual_norm,
            iterations=settings.gmres_max_iterations,
        )

    def solve(
        self,
        edge_rates: np.ndarray,
        fallback_generator: Callable[[], object],
        scenario_index: Optional[int] = None,
    ) -> np.ndarray:
        """Stationary vector of the template's system under ``edge_rates``.

        Runs :meth:`solve_krylov` (GMRES with a reuse-then-rebuild
        preconditioner schedule); on :class:`KrylovConvergenceError` the
        documented fallback takes over: the reuse state is discarded and the
        generic direct solver stack runs on ``fallback_generator()`` (a
        freshly assembled CTMC generator).  The convergence failure is
        surfaced as a warning — carrying the scenario index and residual
        norm — and kept in :attr:`last_convergence_error`; a row solved this
        way is additionally flagged via :attr:`last_solve_used_fallback`
        (``STATUS_FALLBACK`` in the sweep scheduler's status block).
        """
        self.last_solve_used_fallback = False
        self.last_convergence_error = None
        try:
            return self.solve_krylov(edge_rates, scenario_index=scenario_index)
        except KrylovConvergenceError as error:
            self.last_convergence_error = error
            warnings.warn(
                f"{error}; falling back to the direct solver stack",
                stacklevel=2,
            )
            self.preconditioner = None
            self.warm_start = None
            self.last_solve_used_fallback = True
            return solvers.steady_state(fallback_generator(), method="auto")


#: Default superblock width of the matrix-free block-Jacobi preconditioner.
#: Kept at/below ``KrylovSettings.direct_threshold`` so every block gets a
#: *complete* LU — the same "complete LU is cheap at this size" reasoning the
#: in-RAM solver applies globally, applied per block; it also bounds the
#: factorisation memory independently of the total state count.
DEFAULT_SUPERBLOCK_ROWS = 16_384


class MatrixFreeSolver:
    """Out-of-core steady-state solver over a :class:`ChunkedGraph`.

    The constrained balance system ``A x = b`` (``A = Qᵀ`` with the last row
    replaced by the normalisation constraint — exactly the system
    :class:`~repro.engine.system.ConstrainedSystemTemplate` assembles) is
    applied as a :class:`scipy.sparse.linalg.LinearOperator` that streams the
    graph's chunk files per matvec, so the generator is never materialised.

    Preconditioning is block-Jacobi over *superblocks* — runs of consecutive
    chunks merged to roughly :data:`DEFAULT_SUPERBLOCK_ROWS` rows.  Because
    chunks partition the states by source row, a superblock's in-block
    entries come only from its own chunks (targets filtered to the block),
    so the factor build streams the graph once.  Each block gets a complete
    sparse LU (ILU beyond ``direct_threshold``; a diagonal fallback if a
    block factorisation fails).  Like :class:`ReusableSolver`, factors are
    reused across sweep points as stale-but-good preconditioners and only
    rebuilt when a solve stalls; convergence escalates GMRES → BiCGStab →
    iterative refinement (:func:`repro.markov.solvers.steady_state_matrix_free`)
    before giving up with an honest :class:`KrylovConvergenceError`.
    """

    def __init__(
        self,
        graph: ChunkedGraph,
        settings: KrylovSettings = KrylovSettings(),
        *,
        superblock_rows: int = DEFAULT_SUPERBLOCK_ROWS,
        residual_target: float = 1e-14,
    ) -> None:
        self.graph = graph
        self.settings = settings
        self.superblock_rows = max(1, superblock_rows)
        self.residual_target = residual_target
        self.warm_start: Optional[np.ndarray] = None
        self.preconditioner = None
        self._factor_rates: Optional[np.ndarray] = None
        n = graph.number_of_states
        self.rhs = np.zeros(n)
        if n:
            self.rhs[n - 1] = 1.0

    # --- operator ----------------------------------------------------------

    def _operator(
        self, rate_vector: np.ndarray, exit_rates: np.ndarray
    ) -> sparse_linalg.LinearOperator:
        graph = self.graph
        n = graph.number_of_states

        def matvec(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=np.float64).ravel()
            y = np.zeros(n)
            for _, sources, targets, rates in graph.edge_chunks(rate_vector):
                y += np.bincount(targets, weights=rates * x[sources], minlength=n)
            y -= exit_rates * x
            y[n - 1] = x.sum()  # the replaced normalisation row
            return y

        return sparse_linalg.LinearOperator((n, n), matvec=matvec)

    # --- preconditioner -----------------------------------------------------

    def _superblocks(self) -> list[tuple[int, int, list[int]]]:
        """``(row_start, row_end, chunk_indices)`` runs of ≈superblock_rows."""
        blocks: list[tuple[int, int, list[int]]] = []
        members: list[int] = []
        start = 0
        for chunk in self.graph.chunks:
            if not members:
                start = chunk.row_start
            members.append(chunk.index)
            if chunk.row_end - start >= self.superblock_rows:
                blocks.append((start, chunk.row_end, members))
                members = []
        if members:
            blocks.append((start, self.graph.chunks[members[-1]].row_end, members))
        return blocks

    def _factorize(
        self, rate_vector: np.ndarray, exit_rates: np.ndarray
    ) -> sparse_linalg.LinearOperator:
        graph = self.graph
        settings = self.settings
        n = graph.number_of_states
        solvers_per_block: list[tuple[int, int, object, Optional[np.ndarray]]] = []
        for row_start, row_end, members in self._superblocks():
            width = row_end - row_start
            rows: list[np.ndarray] = []
            cols: list[np.ndarray] = []
            vals: list[np.ndarray] = []
            for index in members:
                chunk = graph.chunks[index]
                if chunk.edge_count == 0:
                    continue
                sources = graph.chunk_array(index, "edge_sources")
                targets = graph.chunk_array(index, "edge_targets")
                rates = np.asarray(
                    graph.chunk_ecm(index).T.dot(rate_vector)
                ).ravel()
                inside = (targets >= row_start) & (targets < row_end)
                rows.append(targets[inside] - row_start)
                cols.append(sources[inside] - row_start)
                vals.append(rates[inside])
            diagonal = np.arange(width, dtype=np.int64)
            rows.append(diagonal)
            cols.append(diagonal)
            vals.append(-exit_rates[row_start:row_end])
            row_ids = np.concatenate(rows)
            col_ids = np.concatenate(cols)
            values = np.concatenate(vals)
            if row_end == n:
                # This block hosts the replaced normalisation row: drop its
                # balance entries and overwrite with the in-block ones row.
                keep = row_ids != width - 1
                row_ids = np.concatenate(
                    [row_ids[keep], np.full(width, width - 1, dtype=np.int64)]
                )
                col_ids = np.concatenate(
                    [col_ids[keep], np.arange(width, dtype=np.int64)]
                )
                values = np.concatenate([values[keep], np.ones(width)])
            block = sparse.coo_matrix(
                (values, (row_ids, col_ids)), shape=(width, width)
            ).tocsc()
            factor = None
            try:
                if width <= settings.direct_threshold:
                    factor = sparse_linalg.splu(block, permc_spec="MMD_AT_PLUS_A")
                else:
                    factor = sparse_linalg.spilu(
                        block,
                        drop_tol=settings.ilu_drop_tolerance,
                        fill_factor=settings.ilu_fill_factor,
                    )
            except Exception:
                factor = None
            fallback = None
            if factor is None:
                # Singular / failed block: fall back to diagonal (Jacobi)
                # scaling so the preconditioner stays well defined.
                diagonal_values = block.diagonal()
                diagonal_values = np.where(
                    np.abs(diagonal_values) > 1e-300, diagonal_values, 1.0
                )
                fallback = 1.0 / diagonal_values
            solvers_per_block.append((row_start, row_end, factor, fallback))

        def apply(x: np.ndarray) -> np.ndarray:
            x = np.asarray(x, dtype=np.float64).ravel()
            y = np.empty_like(x)
            for row_start, row_end, factor, fallback in solvers_per_block:
                if factor is not None:
                    y[row_start:row_end] = factor.solve(x[row_start:row_end])
                else:
                    y[row_start:row_end] = x[row_start:row_end] * fallback
            return y

        return sparse_linalg.LinearOperator((n, n), matvec=apply)

    # --- solving ------------------------------------------------------------

    def solve(
        self,
        rate_vector: Optional[np.ndarray] = None,
        scenario_index: Optional[int] = None,
    ) -> np.ndarray:
        """Stationary vector for ``rate_vector`` (default: the graph's own).

        Raises:
            KrylovConvergenceError: when even the escalation ladder with
                freshly built factors cannot push the residual below the
                target — there is no denser representation to fall back to,
                so the failure is surfaced instead of a degraded vector.
        """
        graph = self.graph
        n = graph.number_of_states
        if n == 0:
            raise AnalysisError("cannot solve an empty state space")
        if n == 1:
            return np.array([1.0])
        rates = (
            np.asarray(rate_vector, dtype=np.float64)
            if rate_vector is not None
            else graph.rate_vector
        )
        exit_rates = graph.exit_rates(rates)
        operator = self._operator(rates, exit_rates)
        settings = self.settings
        best_norm = float("nan")
        for attempt in ("reuse", "rebuild"):
            stale = self._factor_rates is None or not np.array_equal(
                self._factor_rates, rates
            )
            if self.preconditioner is None or (attempt == "rebuild" and stale):
                self.preconditioner = self._factorize(rates, exit_rates)
                self._factor_rates = rates.copy()
            elif attempt == "rebuild":
                break  # factors already match these rates; nothing to rebuild
            x0 = None
            if self.warm_start is not None and self.warm_start.shape == (n,):
                x0 = self.warm_start
            solution, best_norm = solvers.steady_state_matrix_free(
                operator,
                self.rhs,
                preconditioner=self.preconditioner,
                x0=x0,
                rtol=settings.gmres_tolerance,
                restart=max(settings.gmres_restart, 100),
                residual_target=self.residual_target,
            )
            if best_norm <= self.residual_target:
                probabilities = solvers.normalize_distribution(solution)
                self.warm_start = probabilities
                return probabilities
        where = (
            f"scenario {scenario_index}"
            if scenario_index is not None
            else "a scenario"
        )
        raise KrylovConvergenceError(
            f"matrix-free Krylov ladder (GMRES, BiCGStab, refinement) did not "
            f"reach the residual target {self.residual_target:.1e} on {where} "
            f"(final residual norm {best_norm:.3e})",
            scenario_index=scenario_index,
            residual_norm=best_norm,
            iterations=settings.gmres_max_iterations,
        )
