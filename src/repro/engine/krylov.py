"""Factorisation-reusing, warm-started Krylov solver for sweep batches.

The numeric heart of the batch engine, extracted so the thread path of
:class:`~repro.engine.batch.ScenarioBatchEngine` and the process workers of
:mod:`repro.engine.parallel` run *exactly* the same floating-point
operations: filling one symbolically pre-assembled constrained balance
system (:class:`~repro.engine.system.ConstrainedSystemTemplate`), reusing
its LU/ILU factors as a preconditioner across neighbouring sweep points and
warm-starting each GMRES solve from the previous stationary vector.

Given identical scenario chains (same contiguous chunk of sweep points, in
the same order), two :class:`ReusableSolver` instances produce bitwise
identical solutions regardless of which thread or process hosts them —
which is what makes the cross-backend determinism guarantees of the sweep
scheduler testable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy.sparse import linalg as sparse_linalg

from repro.engine.system import ConstrainedSystemTemplate
from repro.exceptions import AnalysisError
from repro.markov import solvers


class KrylovConvergenceError(AnalysisError):
    """Preconditioned GMRES failed to converge on one scenario's system.

    Carries enough numeric context to diagnose the failure — which sweep
    scenario hit it and how far from the solution the final iterate was —
    instead of leaving a silently degraded vector behind.
    """

    def __init__(
        self,
        message: str,
        *,
        scenario_index: Optional[int] = None,
        residual_norm: float = float("nan"),
        iterations: int = 0,
    ) -> None:
        super().__init__(message)
        self.scenario_index = scenario_index
        self.residual_norm = residual_norm
        self.iterations = iterations


@dataclass(frozen=True)
class KrylovSettings:
    """Numeric policy shared by every worker of one sweep.

    The values mirror the constructor arguments of
    :class:`~repro.engine.batch.ScenarioBatchEngine`; the dataclass is
    picklable so process workers can be configured through their pool
    initializer.
    """

    direct_threshold: int = 20_000
    ilu_drop_tolerance: float = 1e-6
    ilu_fill_factor: float = 20.0
    gmres_tolerance: float = 1e-13
    lu_gmres_tolerance: float = 1e-12
    gmres_restart: int = 60
    gmres_max_iterations: int = 2000


class ReusableSolver:
    """Per-worker numeric state: filled system, preconditioner, warm start.

    One instance serves one contiguous chain of sweep points.  The first
    :meth:`solve` materialises the CSC system from the shared template and
    factors it; subsequent calls only re-fill the numeric values and re-use
    the previous factors as a GMRES preconditioner (neighbouring sweep
    points differ in a handful of rates, so the stale factorisation remains
    an excellent preconditioner) with the previous stationary vector as the
    initial guess.
    """

    def __init__(self, template: ConstrainedSystemTemplate, settings: KrylovSettings):
        self.template = template
        self.settings = settings
        self.system = None
        self.preconditioner = None
        self.warm_start: Optional[np.ndarray] = None
        #: Whether the most recent solve had to abandon the reuse machinery
        #: and fall back to the generic solver stack.
        self.last_solve_used_fallback = False
        #: The :class:`KrylovConvergenceError` behind the most recent
        #: fallback (``None`` when the last solve converged).
        self.last_convergence_error: Optional[KrylovConvergenceError] = None

    def _factorize(self, system) -> object:
        """Factor the current system into a preconditioner.

        Up to ``direct_threshold`` states a *complete* sparse LU is cheap
        (with the AMD-style ``MMD_AT_PLUS_A`` ordering, which produces far
        less fill than the default on these nearly-structurally-symmetric
        CTMC systems) and makes the first GMRES iteration exact; beyond that
        an incomplete LU keeps memory bounded.
        """
        settings = self.settings
        try:
            if system.shape[0] <= settings.direct_threshold:
                return sparse_linalg.splu(system, permc_spec="MMD_AT_PLUS_A")
            return sparse_linalg.spilu(
                system,
                drop_tol=settings.ilu_drop_tolerance,
                fill_factor=settings.ilu_fill_factor,
            )
        except Exception as error:
            raise AnalysisError(
                f"sparse factorisation of the balance system failed: {error}"
            ) from error

    def solve_krylov(
        self,
        edge_rates: np.ndarray,
        scenario_index: Optional[int] = None,
    ) -> np.ndarray:
        """Stationary vector via preconditioned GMRES, or raise on stall.

        If GMRES stalls (``maxiter`` exhausted or a non-finite iterate), the
        factorisation is rebuilt from the current values and the solve
        retried once; a second failure raises :class:`KrylovConvergenceError`
        carrying the scenario index and the residual norm of the final
        iterate — callers decide whether to fall back (:meth:`solve` does).
        """
        template = self.template
        if self.system is None:
            self.system = template.fresh_system(edge_rates)
        else:
            template.refill(self.system, edge_rates)

        settings = self.settings
        rhs = template.rhs
        rtol = (
            settings.lu_gmres_tolerance
            if self.system.shape[0] <= settings.direct_threshold
            else settings.gmres_tolerance
        )
        solution = None
        for attempt in ("reuse", "rebuild"):
            if self.preconditioner is None or attempt == "rebuild":
                self.preconditioner = self._factorize(self.system)
            operator = sparse_linalg.LinearOperator(
                self.system.shape, self.preconditioner.solve
            )
            x0 = None
            if self.warm_start is not None and self.warm_start.shape == rhs.shape:
                x0 = self.warm_start
            solution, info = sparse_linalg.gmres(
                self.system,
                rhs,
                M=operator,
                x0=x0,
                rtol=rtol,
                atol=0.0,
                restart=settings.gmres_restart,
                maxiter=settings.gmres_max_iterations,
            )
            if info == 0 and np.all(np.isfinite(solution)):
                probabilities = solvers.normalize_distribution(
                    np.asarray(solution).ravel()
                )
                self.warm_start = probabilities
                return probabilities
        residual_norm = float("nan")
        if solution is not None and np.all(np.isfinite(solution)):
            residual_norm = float(
                np.linalg.norm(self.system @ np.asarray(solution).ravel() - rhs)
            )
        where = (
            f"scenario {scenario_index}"
            if scenario_index is not None
            else "a scenario"
        )
        raise KrylovConvergenceError(
            f"preconditioned GMRES did not converge on {where} after "
            f"{settings.gmres_max_iterations} iteration(s) with a rebuilt "
            f"factorisation (final residual norm {residual_norm:.3e})",
            scenario_index=scenario_index,
            residual_norm=residual_norm,
            iterations=settings.gmres_max_iterations,
        )

    def solve(
        self,
        edge_rates: np.ndarray,
        fallback_generator: Callable[[], object],
        scenario_index: Optional[int] = None,
    ) -> np.ndarray:
        """Stationary vector of the template's system under ``edge_rates``.

        Runs :meth:`solve_krylov` (GMRES with a reuse-then-rebuild
        preconditioner schedule); on :class:`KrylovConvergenceError` the
        documented fallback takes over: the reuse state is discarded and the
        generic direct solver stack runs on ``fallback_generator()`` (a
        freshly assembled CTMC generator).  The convergence failure is
        surfaced as a warning — carrying the scenario index and residual
        norm — and kept in :attr:`last_convergence_error`; a row solved this
        way is additionally flagged via :attr:`last_solve_used_fallback`
        (``STATUS_FALLBACK`` in the sweep scheduler's status block).
        """
        self.last_solve_used_fallback = False
        self.last_convergence_error = None
        try:
            return self.solve_krylov(edge_rates, scenario_index=scenario_index)
        except KrylovConvergenceError as error:
            self.last_convergence_error = error
            warnings.warn(
                f"{error}; falling back to the direct solver stack",
                stacklevel=2,
            )
            self.preconditioner = None
            self.warm_start = None
            self.last_solve_used_fallback = True
            return solvers.steady_state(fallback_generator(), method="auto")
