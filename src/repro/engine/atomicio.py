"""Durable atomic file writes (fsync-before-rename).

An atomic ``os.replace`` protects readers from *torn* files, but on its own
it only survives process death: after a power loss the renamed file — or the
rename itself — may simply not be on disk, because neither the temporary
file's data nor the directory entry was ever flushed.  Checkpoints and
write-ahead journals need the stronger contract, which is the classic
three-step dance:

1. write the temporary file and ``fsync`` it (data hits the platter),
2. ``os.replace`` it over the final name (atomic for readers),
3. ``fsync`` the *directory* (the rename itself hits the platter).

This module packages that dance for the checkpoint shard writer, the grid
manifest and the service job store.  Directory fsync is best-effort: some
filesystems (and some containers) reject ``fsync`` on a directory
descriptor, which is no worse than not trying.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def fsync_file(descriptor: int) -> None:
    """Flush one open file descriptor's data and metadata to stable storage."""
    os.fsync(descriptor)


def fsync_directory(path: os.PathLike) -> None:
    """Best-effort ``fsync`` of a directory (persists renames within it)."""
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - unopenable directory
        return
    try:
        os.fsync(descriptor)
    except OSError:  # pragma: no cover - fs without directory fsync
        pass
    finally:
        os.close(descriptor)


def replace_durably(temporary: os.PathLike, final: os.PathLike) -> None:
    """``os.replace`` plus a directory fsync so the rename survives power loss.

    The temporary file's *contents* must already be fsync'd (the writers in
    this module do it; external callers use :func:`fsync_file` on their open
    descriptor before closing).
    """
    final = Path(final)
    os.replace(temporary, final)
    fsync_directory(final.parent)


def write_bytes_durably(path: os.PathLike, payload: bytes) -> None:
    """Atomically and durably replace ``path`` with ``payload``.

    The temporary file lives in the destination directory (same filesystem,
    so the rename stays atomic) and is cleaned up on any failure.
    """
    path = Path(path)
    descriptor, temporary = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            fsync_file(handle.fileno())
        replace_durably(temporary, path)
    except BaseException:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise


def write_text_durably(path: os.PathLike, text: str) -> None:
    """Text variant of :func:`write_bytes_durably` (UTF-8)."""
    write_bytes_durably(path, text.encode("utf-8"))
