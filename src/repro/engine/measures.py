"""Batched (GEMM) evaluation of reward measures over many solutions.

Every measure of the engine is linear in the stationary vector: a
probability measure is the dot product with a 0/1 predicate vector, an
expected-tokens measure with a per-marking value vector, and a throughput
measure with the transition's enabling-degree vector scaled by its
(scenario-dependent) rate.  A whole batch of scenarios can therefore be
evaluated as **one** dense matrix product

    values = solutions @ R          # (S, n) @ (n, m) -> (S, m)

where ``R`` stacks the rate-independent reward vectors column-wise, followed
by a column-wise scaling of the throughput columns with the per-scenario
rates.  Building ``R`` walks the tangible markings once per measure; the
per-scenario work — previously ``S × m`` Python-level dot products, each of
which re-walked all ``n`` markings — collapses into a single BLAS call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.spn.reachability import TangibleReachabilityGraph
from repro.spn.rewards import (
    ExpectedTokensMeasure,
    Measure,
    ProbabilityMeasure,
    ThroughputMeasure,
)


class UnsupportedMeasure(Exception):
    """The measure cannot be expressed as a reward column on this graph.

    Raised when a throughput measure targets a transition the graph holds no
    per-state coefficient data for (e.g. hand-built graphs carrying explicit
    throughput dictionaries); callers fall back to scalar evaluation.
    """


@dataclass
class RewardMatrix:
    """Column-stacked reward vectors of a measure list over one state space.

    Attributes:
        names: measure names, in column order.
        matrix: ``(n, m)`` float64 matrix; column ``j`` is the
            rate-independent reward vector of measure ``j``.
        throughput_scale: per column, the index into the graph's rate vector
            whose per-scenario value the GEMM result must be scaled by
            (``None`` for rate-independent measures).
    """

    names: list[str]
    matrix: np.ndarray
    throughput_scale: list[Optional[int]]

    @classmethod
    def from_measures(
        cls, graph: TangibleReachabilityGraph, measures: Sequence[Measure]
    ) -> "RewardMatrix":
        """Compile ``measures`` into reward columns over ``graph``.

        Raises:
            UnsupportedMeasure: for throughput measures on graphs without
                per-transition coefficient data.
        """
        place_index = graph.net.place_index
        names: list[str] = []
        columns: list[np.ndarray] = []
        scales: list[Optional[int]] = []
        for measure in measures:
            if isinstance(measure, (ProbabilityMeasure, ExpectedTokensMeasure)):
                evaluate = measure.compiled(place_index)
                columns.append(
                    np.fromiter(
                        (evaluate(marking) for marking in graph.markings),
                        dtype=np.float64,
                        count=len(graph.markings),
                    )
                )
                scales.append(None)
            elif isinstance(measure, ThroughputMeasure):
                index = graph.transition_index.get(measure.transition)
                degree_hook = getattr(graph, "throughput_degree_column", None)
                if index is None or (
                    graph.state_coefficient_matrix is None and degree_hook is None
                ):
                    raise UnsupportedMeasure(
                        f"throughput measure {measure.name!r} needs per-state "
                        f"coefficient data for transition {measure.transition!r}"
                    )
                if graph.state_coefficient_matrix is not None:
                    row = graph.state_coefficient_matrix.getrow(index)
                    column = np.zeros(graph.number_of_states)
                    column[row.indices] = row.data
                else:
                    # Chunked backends stream the degree column instead of
                    # holding a global coefficient matrix.
                    column = np.asarray(degree_hook(index), dtype=np.float64)
                columns.append(column)
                scales.append(int(index))
            else:
                raise UnsupportedMeasure(f"unsupported measure type {type(measure)!r}")
            names.append(measure.name)
        matrix = (
            np.column_stack(columns)
            if columns
            else np.zeros((graph.number_of_states, 0))
        )
        return cls(names=names, matrix=matrix, throughput_scale=scales)

    @property
    def number_of_measures(self) -> int:
        return len(self.names)

    def evaluate(
        self,
        solutions: np.ndarray,
        rate_matrix: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``(S, m)`` measure values of a stacked ``(S, n)`` solution block.

        ``rate_matrix`` is the ``(S, T)`` per-scenario rate-vector block;
        required whenever the measure list contains throughput measures
        (their columns are scaled by the scenario's transition rate).
        """
        solutions = np.asarray(solutions, dtype=np.float64)
        if solutions.ndim != 2 or solutions.shape[1] != self.matrix.shape[0]:
            raise ValueError(
                f"expected a (scenarios, {self.matrix.shape[0]}) solution block, "
                f"got shape {solutions.shape}"
            )
        values = solutions @ self.matrix
        for column, index in enumerate(self.throughput_scale):
            if index is None:
                continue
            if rate_matrix is None:
                raise ValueError(
                    "throughput measures need the per-scenario rate matrix"
                )
            values[:, column] *= rate_matrix[:, index]
        return values

    def as_dicts(self, values: np.ndarray) -> list[dict[str, float]]:
        """Rows of an ``evaluate`` result as ``{measure_name: value}`` dicts."""
        return [
            {name: float(row[j]) for j, name in enumerate(self.names)}
            for row in values
        ]
