"""repro — reproduction of "Dependability Models for Designing Disaster
Tolerant Cloud Computing Systems" (Silva, Maciel, Tavares, Zimmermann;
IEEE/IFIP DSN 2013).

The package is organised as a small stack:

* :mod:`repro.metrics` — availability arithmetic and unit-safe values,
* :mod:`repro.expressions` — the guard / measure expression language,
* :mod:`repro.rbd` — reliability block diagrams (the paper's lower level),
* :mod:`repro.markov` — CTMC / DTMC solvers,
* :mod:`repro.spn` — the stochastic Petri net engine (the paper's upper level),
* :mod:`repro.network` — geography, latency, throughput and migration times,
* :mod:`repro.core` — the paper's models (SIMPLE_COMPONENT, VM_BEHAVIOR,
  TRANSMISSION_COMPONENT, hierarchical RBD→SPN flow, CloudSystemModel),
* :mod:`repro.engine` — the sparse-native scenario-batch engine (one state
  space, many parameter points),
* :mod:`repro.casestudy` — the Table VII / Figure 7 experiment harness.

Quickstart::

    from repro.core import DistributedScenario
    from repro.network import BRASILIA, RIO_DE_JANEIRO

    scenario = DistributedScenario(RIO_DE_JANEIRO, BRASILIA, alpha=0.35)
    model = scenario.build_model()
    print(model.availability())
"""

__version__ = "1.0.0"

from repro import core, engine, expressions, markov, metrics, network, rbd, spn

__all__ = [
    "core",
    "engine",
    "expressions",
    "markov",
    "metrics",
    "network",
    "rbd",
    "spn",
    "__version__",
]
