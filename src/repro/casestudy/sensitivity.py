"""Parameter sensitivity analysis (supporting experiment E3).

The paper takes its component parameters from external sources (Table VI,
refs. [19]-[22]) without discussing how sensitive the conclusions are to
them.  This module quantifies that: each component's MTTF (or MTTR) is
perturbed by a multiplicative factor, the system availability is re-evaluated
and the impact is reported, which tells a designer which Table VI entry is
worth improving (or measuring more carefully).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.cloud_model import CloudSystemModel
from repro.core.datacenter import single_datacenter_spec
from repro.core.parameters import (
    CaseStudyParameters,
    ComponentParameters,
    DEFAULT_PARAMETERS,
    FailureRepairPair,
)
from repro.engine import ScenarioBatchEngine, ScenarioSpec, TRGCache
from repro.exceptions import ConfigurationError
from repro.metrics import AvailabilityResult
from repro.spn.model import StochasticPetriNet
from repro.spn.rewards import ProbabilityMeasure


def timed_transition_rates(net: StochasticPetriNet) -> dict[str, float]:
    """``{transition_name: rate}`` of every timed transition of a net.

    Assembling a net is cheap (no state-space exploration); extracting its
    rate assignment lets a whole parameter study run as re-ratings of one
    shared reachability graph whenever the perturbations leave the structure
    unchanged.
    """
    return {
        transition.name: transition.rate
        for transition in net.transitions
        if not transition.immediate
    }

#: The Table VI components that can be perturbed.
COMPONENT_NAMES: tuple[str, ...] = (
    "operating_system",
    "physical_machine",
    "switch",
    "router",
    "nas",
    "virtual_machine",
    "backup_server",
)


@dataclass(frozen=True)
class SensitivityEntry:
    """Availability impact of perturbing one component parameter."""

    component: str
    parameter: str  # "mttf" or "mttr"
    factor: float
    baseline_availability: float
    perturbed_availability: float

    @property
    def availability_delta(self) -> float:
        return self.perturbed_availability - self.baseline_availability

    @property
    def nines_delta(self) -> float:
        from repro.metrics import number_of_nines

        return number_of_nines(self.perturbed_availability) - number_of_nines(
            self.baseline_availability
        )


def _perturbed(components: ComponentParameters, name: str, parameter: str, factor: float) -> ComponentParameters:
    pair: FailureRepairPair = getattr(components, name)
    if parameter == "mttf":
        replacement = FailureRepairPair(pair.mttf_hours * factor, pair.mttr_hours)
    elif parameter == "mttr":
        replacement = FailureRepairPair(pair.mttf_hours, pair.mttr_hours * factor)
    else:
        raise ConfigurationError(f"parameter must be 'mttf' or 'mttr', got {parameter!r}")
    return components.with_override(name, replacement)


def default_model_factory(parameters: CaseStudyParameters) -> CloudSystemModel:
    """Model used by default for sensitivity: the four-machine single site.

    The single-site model keeps the state space small enough that the full
    one-at-a-time sweep runs in seconds while still exercising every
    component of Table VI except the backup server.
    """
    return CloudSystemModel(
        spec=single_datacenter_spec(
            machines=4,
            vms_per_machine=parameters.vms_per_physical_machine,
            required_running_vms=parameters.required_running_vms,
        ),
        parameters=parameters,
    )


@dataclass
class SensitivityAnalysis:
    """One-at-a-time sensitivity sweep over the Table VI parameters."""

    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    model_factory: Callable[[CaseStudyParameters], CloudSystemModel] = default_model_factory
    factor: float = 2.0
    components: Sequence[str] = COMPONENT_NAMES
    perturb: str = "mttf"
    use_cache: bool = True

    def __post_init__(self) -> None:
        if self.factor <= 0.0 or self.factor == 1.0:
            raise ConfigurationError(
                f"the perturbation factor must be positive and different from 1, got {self.factor!r}"
            )
        unknown = set(self.components) - set(COMPONENT_NAMES)
        if unknown:
            raise ConfigurationError(f"unknown components: {sorted(unknown)}")
        if self.perturb not in ("mttf", "mttr"):
            raise ConfigurationError("perturb must be 'mttf' or 'mttr'")

    def baseline(self) -> AvailabilityResult:
        """Availability of the unperturbed model."""
        return self.model_factory(self.parameters).availability()

    def _perturbed_parameters(self, component: str) -> CaseStudyParameters:
        perturbed_components = _perturbed(
            self.parameters.components, component, self.perturb, self.factor
        )
        return CaseStudyParameters(
            components=perturbed_components,
            disaster=self.parameters.disaster,
            vm_image_size=self.parameters.vm_image_size,
            vm_start_time=self.parameters.vm_start_time,
            required_running_vms=self.parameters.required_running_vms,
            vms_per_physical_machine=self.parameters.vms_per_physical_machine,
        )

    def run(
        self, max_workers: Optional[int] = None, backend: str = "auto"
    ) -> list[SensitivityEntry]:
        """Evaluate every requested component perturbation.

        A component perturbation only rescales transition rates — the net
        structure (places, arcs, guards) is identical across the whole
        one-at-a-time sweep — so the state space is generated once and every
        perturbation is evaluated by the batch engine as a re-rating of the
        shared graph.  Perturbations whose model structure *does* differ
        (a custom ``model_factory`` may change the spec) transparently fall
        back to a full per-model solve.

        Entries are sorted by decreasing absolute availability impact so the
        most influential parameter comes first.
        """
        reference = self.model_factory(self.parameters)
        engine = ScenarioBatchEngine(
            reference.build(), cache=TRGCache() if self.use_cache else None
        )
        measure = ProbabilityMeasure(
            "availability", reference.availability_expression()
        )
        reference_names = set(timed_transition_rates(reference.build()))

        baseline = float(
            engine.solve().probability(reference.availability_expression())
        )
        specs: list[ScenarioSpec] = []
        fallback: dict[str, CloudSystemModel] = {}
        for component in self.components:
            perturbed_model = self.model_factory(self._perturbed_parameters(component))
            rates = timed_transition_rates(perturbed_model.build())
            if set(rates) == reference_names:
                specs.append(ScenarioSpec(name=component, rates=rates))
            else:
                fallback[component] = perturbed_model

        availabilities: dict[str, float] = {
            result.name: result.value("availability")
            for result in engine.run(
                specs, [measure], max_workers=max_workers, backend=backend
            )
        }
        for component, model in fallback.items():
            availabilities[component] = model.availability().availability

        entries = [
            SensitivityEntry(
                component=component,
                parameter=self.perturb,
                factor=self.factor,
                baseline_availability=baseline,
                perturbed_availability=availabilities[component],
            )
            for component in self.components
        ]
        entries.sort(key=lambda entry: abs(entry.availability_delta), reverse=True)
        return entries
