"""Parameter sensitivity analysis (supporting experiment E3).

The paper takes its component parameters from external sources (Table VI,
refs. [19]-[22]) without discussing how sensitive the conclusions are to
them.  This module quantifies that: each component's MTTF (or MTTR) is
perturbed by a multiplicative factor, the system availability is re-evaluated
and the impact is reported, which tells a designer which Table VI entry is
worth improving (or measuring more carefully).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.cloud_model import CloudSystemModel
from repro.core.datacenter import single_datacenter_spec
from repro.core.parameters import (
    CaseStudyParameters,
    ComponentParameters,
    DEFAULT_PARAMETERS,
    FailureRepairPair,
)
from repro.exceptions import ConfigurationError
from repro.metrics import AvailabilityResult

#: The Table VI components that can be perturbed.
COMPONENT_NAMES: tuple[str, ...] = (
    "operating_system",
    "physical_machine",
    "switch",
    "router",
    "nas",
    "virtual_machine",
    "backup_server",
)


@dataclass(frozen=True)
class SensitivityEntry:
    """Availability impact of perturbing one component parameter."""

    component: str
    parameter: str  # "mttf" or "mttr"
    factor: float
    baseline_availability: float
    perturbed_availability: float

    @property
    def availability_delta(self) -> float:
        return self.perturbed_availability - self.baseline_availability

    @property
    def nines_delta(self) -> float:
        from repro.metrics import number_of_nines

        return number_of_nines(self.perturbed_availability) - number_of_nines(
            self.baseline_availability
        )


def _perturbed(components: ComponentParameters, name: str, parameter: str, factor: float) -> ComponentParameters:
    pair: FailureRepairPair = getattr(components, name)
    if parameter == "mttf":
        replacement = FailureRepairPair(pair.mttf_hours * factor, pair.mttr_hours)
    elif parameter == "mttr":
        replacement = FailureRepairPair(pair.mttf_hours, pair.mttr_hours * factor)
    else:
        raise ConfigurationError(f"parameter must be 'mttf' or 'mttr', got {parameter!r}")
    return components.with_override(name, replacement)


def default_model_factory(parameters: CaseStudyParameters) -> CloudSystemModel:
    """Model used by default for sensitivity: the four-machine single site.

    The single-site model keeps the state space small enough that the full
    one-at-a-time sweep runs in seconds while still exercising every
    component of Table VI except the backup server.
    """
    return CloudSystemModel(
        spec=single_datacenter_spec(
            machines=4,
            vms_per_machine=parameters.vms_per_physical_machine,
            required_running_vms=parameters.required_running_vms,
        ),
        parameters=parameters,
    )


@dataclass
class SensitivityAnalysis:
    """One-at-a-time sensitivity sweep over the Table VI parameters."""

    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    model_factory: Callable[[CaseStudyParameters], CloudSystemModel] = default_model_factory
    factor: float = 2.0
    components: Sequence[str] = COMPONENT_NAMES
    perturb: str = "mttf"

    def __post_init__(self) -> None:
        if self.factor <= 0.0 or self.factor == 1.0:
            raise ConfigurationError(
                f"the perturbation factor must be positive and different from 1, got {self.factor!r}"
            )
        unknown = set(self.components) - set(COMPONENT_NAMES)
        if unknown:
            raise ConfigurationError(f"unknown components: {sorted(unknown)}")
        if self.perturb not in ("mttf", "mttr"):
            raise ConfigurationError("perturb must be 'mttf' or 'mttr'")

    def baseline(self) -> AvailabilityResult:
        """Availability of the unperturbed model."""
        return self.model_factory(self.parameters).availability()

    def run(self) -> list[SensitivityEntry]:
        """Evaluate every requested component perturbation.

        Entries are sorted by decreasing absolute availability impact so the
        most influential parameter comes first.
        """
        baseline = self.baseline().availability
        entries = []
        for component in self.components:
            perturbed_components = _perturbed(
                self.parameters.components, component, self.perturb, self.factor
            )
            perturbed_parameters = CaseStudyParameters(
                components=perturbed_components,
                disaster=self.parameters.disaster,
                vm_image_size=self.parameters.vm_image_size,
                vm_start_time=self.parameters.vm_start_time,
                required_running_vms=self.parameters.required_running_vms,
                vms_per_physical_machine=self.parameters.vms_per_physical_machine,
            )
            result = self.model_factory(perturbed_parameters).availability()
            entries.append(
                SensitivityEntry(
                    component=component,
                    parameter=self.perturb,
                    factor=self.factor,
                    baseline_availability=baseline,
                    perturbed_availability=result.availability,
                )
            )
        entries.sort(key=lambda entry: abs(entry.availability_delta), reverse=True)
        return entries
