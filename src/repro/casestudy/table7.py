"""Reproduction of Table VII — availability of the baseline architectures.

Table VII of the paper lists the steady-state availability (and number of
nines) of three non-distributed architectures and of the five two-data-center
baseline architectures (α = 0.35, disaster mean time = 100 years).  The
functions here regenerate every row with our models; the published values are
kept alongside so EXPERIMENTS.md and the benchmark can report paper-vs-
measured deltas.

All rows — single-site *and* distributed — run through the scenario-grid
orchestrator (:mod:`repro.engine.grid`): scenarios are grouped by net
structure (the five distributed baselines share one group; each machine-count
baseline is its own), graphs come from the persistent
:class:`~repro.engine.cache.TRGCache` when present (so repeat ``repro
table7`` runs skip every state-space generation) and each group solves as
one warm-started batch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.casestudy.grid import scenario_case
from repro.casestudy.runner import DistributedSweepRunner
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.core.scenarios import (
    baseline_distributed_scenarios,
    single_datacenter_baselines,
)
from repro.engine import TRGCache
from repro.engine.grid import GridCase, GridOutcome, ScenarioGridOrchestrator
from repro.metrics import AvailabilityResult

#: The availability values published in Table VII, keyed by row label.
PAPER_TABLE_VII: dict[str, float] = {
    "Cloud system with one machine": 0.9842914,
    "Cloud system with two machines in one data center": 0.9899101,
    "Cloud system with four machines in one data center": 0.9900631,
    "Baseline architecture: Rio de Janeiro - Brasilia": 0.9997317,
    "Baseline architecture: Rio de Janeiro - Recife": 0.9995968,
    "Baseline architecture: Rio de Janeiro - New York": 0.9987753,
    "Baseline architecture: Rio de Janeiro - Calcutta": 0.9977486,
    "Baseline architecture: Rio de Janeiro - Tokyo": 0.9972643,
}


@dataclass(frozen=True)
class Table7Row:
    """One row of the reproduced Table VII."""

    label: str
    measured: AvailabilityResult
    paper_availability: Optional[float]

    @property
    def paper_nines(self) -> Optional[float]:
        if self.paper_availability is None:
            return None
        from repro.metrics import number_of_nines

        return number_of_nines(self.paper_availability)

    @property
    def nines_difference(self) -> Optional[float]:
        """Measured minus published number of nines (None when not published)."""
        if self.paper_nines is None:
            return None
        return self.measured.nines - self.paper_nines


def _orchestrator(
    use_cache: bool,
    cache_dir: Optional[str],
    max_workers: Optional[int],
    backend: str,
    method: str = "auto",
    max_states: Optional[int] = None,
) -> ScenarioGridOrchestrator:
    kwargs = {} if max_states is None else {"max_states": max_states}
    return ScenarioGridOrchestrator(
        cache=TRGCache(cache_dir) if use_cache else None,
        jobs=max_workers,
        backend=backend,
        method=method,
        # An explicit worker budget bounds the generation fan-out too.
        generation_workers=max_workers,
        **kwargs,
    )


def _rows_from_outcome(
    outcome: GridOutcome, labels: list[str], names: list[str]
) -> list[Table7Row]:
    rows = []
    for label, name in zip(labels, names):
        result = outcome.result(name)
        value = min(1.0, max(0.0, result.value("availability")))
        rows.append(
            Table7Row(
                label=label,
                measured=AvailabilityResult(value, label=label),
                paper_availability=PAPER_TABLE_VII.get(label),
            )
        )
    return rows


def _single_site_cases(
    parameters: CaseStudyParameters,
) -> tuple[list[str], list[GridCase]]:
    labels, cases = [], []
    for scenario in single_datacenter_baselines():
        if parameters is not DEFAULT_PARAMETERS:
            scenario = replace(scenario, parameters=parameters)
        labels.append(scenario.label)
        cases.append(scenario_case(scenario))
    return labels, cases


def _distributed_cases(
    runner: DistributedSweepRunner,
) -> tuple[list[str], list[GridCase]]:
    labels, cases = [], []
    for scenario in baseline_distributed_scenarios():
        # Pin the runner's machine count on the scenario so the evaluated
        # structure provably matches the runner configuration.
        scenario = replace(
            scenario, machines_per_datacenter=runner.machines_per_datacenter
        )
        labels.append(
            f"Baseline architecture: {scenario.first.name} - {scenario.second.name}"
        )
        cases.append(
            scenario_case(
                scenario,
                parameters=runner.parameters,
                symmetry_reduction=runner.symmetry_reduction,
            )
        )
    return labels, cases


def single_site_rows(
    parameters: CaseStudyParameters = DEFAULT_PARAMETERS,
    use_cache: bool = True,
    max_workers: Optional[int] = None,
    backend: str = "auto",
) -> list[Table7Row]:
    """The three non-distributed rows of Table VII.

    Evaluated through the grid orchestrator: each machine count is its own
    structure group, so graphs are cached persistently (repeat runs skip
    generation) and solved on the engine's warm path instead of the cold
    per-model ``availability()`` one.
    """
    labels, cases = _single_site_cases(parameters)
    outcome = _orchestrator(use_cache, None, max_workers, backend).run(cases)
    return _rows_from_outcome(outcome, labels, [case.name for case in cases])


def distributed_rows(
    runner: Optional[DistributedSweepRunner] = None,
    max_workers: Optional[int] = None,
    backend: str = "auto",
) -> list[Table7Row]:
    """The five distributed baseline rows of Table VII (α = 0.35, 100-year disasters).

    All five rows share one structure group of the orchestrator (one
    generation or cache hit, five warm-started re-solves;
    ``max_workers``/``backend`` fan the batch out over engine workers).
    """
    runner = runner or DistributedSweepRunner()
    labels, cases = _distributed_cases(runner)
    outcome = _orchestrator(
        runner.use_cache,
        runner.cache_dir,
        max_workers,
        backend,
        method=runner.method,
        max_states=runner.max_states,
    ).run(cases)
    return _rows_from_outcome(outcome, labels, [case.name for case in cases])


def reproduce_table7(
    runner: Optional[DistributedSweepRunner] = None,
    include_distributed: bool = True,
    max_workers: Optional[int] = None,
    backend: str = "auto",
) -> list[Table7Row]:
    """Every row of Table VII (optionally skipping the expensive distributed rows).

    Single-site and distributed rows run as **one** orchestrated grid: four
    structure groups generated concurrently (or loaded from the cache),
    each solved as one batch, merged back in table order.
    """
    runner = runner or DistributedSweepRunner()
    labels, cases = _single_site_cases(DEFAULT_PARAMETERS)
    if include_distributed:
        distributed_labels, distributed_cases = _distributed_cases(runner)
        labels.extend(distributed_labels)
        cases.extend(distributed_cases)
    outcome = _orchestrator(
        runner.use_cache,
        runner.cache_dir,
        max_workers,
        backend,
        method=runner.method,
        max_states=runner.max_states,
    ).run(cases)
    return _rows_from_outcome(outcome, labels, [case.name for case in cases])
