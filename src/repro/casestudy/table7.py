"""Reproduction of Table VII — availability of the baseline architectures.

Table VII of the paper lists the steady-state availability (and number of
nines) of three non-distributed architectures and of the five two-data-center
baseline architectures (α = 0.35, disaster mean time = 100 years).  The
functions here regenerate every row with our models; the published values are
kept alongside so EXPERIMENTS.md and the benchmark can report paper-vs-
measured deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.casestudy.runner import DistributedSweepRunner
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.core.scenarios import (
    baseline_distributed_scenarios,
    single_datacenter_baselines,
)
from repro.metrics import AvailabilityResult

#: The availability values published in Table VII, keyed by row label.
PAPER_TABLE_VII: dict[str, float] = {
    "Cloud system with one machine": 0.9842914,
    "Cloud system with two machines in one data center": 0.9899101,
    "Cloud system with four machines in one data center": 0.9900631,
    "Baseline architecture: Rio de Janeiro - Brasilia": 0.9997317,
    "Baseline architecture: Rio de Janeiro - Recife": 0.9995968,
    "Baseline architecture: Rio de Janeiro - New York": 0.9987753,
    "Baseline architecture: Rio de Janeiro - Calcutta": 0.9977486,
    "Baseline architecture: Rio de Janeiro - Tokyo": 0.9972643,
}


@dataclass(frozen=True)
class Table7Row:
    """One row of the reproduced Table VII."""

    label: str
    measured: AvailabilityResult
    paper_availability: Optional[float]

    @property
    def paper_nines(self) -> Optional[float]:
        if self.paper_availability is None:
            return None
        from repro.metrics import number_of_nines

        return number_of_nines(self.paper_availability)

    @property
    def nines_difference(self) -> Optional[float]:
        """Measured minus published number of nines (None when not published)."""
        if self.paper_nines is None:
            return None
        return self.measured.nines - self.paper_nines


def single_site_rows(
    parameters: CaseStudyParameters = DEFAULT_PARAMETERS,
) -> list[Table7Row]:
    """The three non-distributed rows of Table VII."""
    rows = []
    for scenario in single_datacenter_baselines():
        model = scenario.build_model()
        result = model.availability()
        rows.append(
            Table7Row(
                label=scenario.label,
                measured=AvailabilityResult(result.availability, label=scenario.label),
                paper_availability=PAPER_TABLE_VII.get(scenario.label),
            )
        )
    return rows


def distributed_rows(
    runner: Optional[DistributedSweepRunner] = None,
    max_workers: Optional[int] = None,
    backend: str = "auto",
) -> list[Table7Row]:
    """The five distributed baseline rows of Table VII (α = 0.35, 100-year disasters).

    All five rows are evaluated as one batch on the runner's shared state
    space (one generation, one factorisation, five warm-started re-solves;
    ``max_workers``/``backend`` fan the batch out over engine workers).
    """
    runner = runner or DistributedSweepRunner()
    scenarios = list(baseline_distributed_scenarios())
    evaluations = runner.evaluate_many(
        scenarios, max_workers=max_workers, backend=backend
    )
    rows = []
    for scenario, evaluation in zip(scenarios, evaluations):
        label = f"Baseline architecture: {scenario.first.name} - {scenario.second.name}"
        rows.append(
            Table7Row(
                label=label,
                measured=AvailabilityResult(
                    evaluation.availability.availability, label=label
                ),
                paper_availability=PAPER_TABLE_VII.get(label),
            )
        )
    return rows


def reproduce_table7(
    runner: Optional[DistributedSweepRunner] = None,
    include_distributed: bool = True,
    max_workers: Optional[int] = None,
    backend: str = "auto",
) -> list[Table7Row]:
    """Every row of Table VII (optionally skipping the expensive distributed rows)."""
    rows = single_site_rows()
    if include_distributed:
        rows.extend(distributed_rows(runner, max_workers=max_workers, backend=backend))
    return rows
