"""Case-study adapter of the scenario-grid orchestrator.

Turns the paper's scenario vocabulary — city sets, α, disaster mean times,
machines per data center, the ``l`` migration threshold, backup on/off,
N-data-center topologies — into the generic grid cases of
:mod:`repro.engine.grid` and runs them as **one** workload: scenarios with
the same rate-independent net structure share a tangible reachability graph
(one generation, warm-started batch re-solves), distinct structures generate
concurrently, and the persistent :class:`~repro.engine.cache.TRGCache`
makes repeat grids start from disk.

``CaseStudyGrid`` describes the axes (the cross product is pruned where an
axis cannot affect a scenario — a single site has no α, ``l`` or backup
server); :func:`evaluate_grid` is the one-call entry point used by
``repro grid`` and the benchmark.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.core.parameters import CaseStudyParameters
from repro.core.scenarios import (
    BACKUP_LOCATION,
    BASELINE_ALPHA,
    BASELINE_DISASTER_YEARS,
    DistributedScenario,
    MultiDataCenterScenario,
    SingleDataCenterScenario,
)
from repro.engine import TRGCache
from repro.engine.faults import RetryPolicy
from repro.engine.grid import (
    CanonicalizerRef,
    GridCase,
    GridOutcome,
    ScenarioGridOrchestrator,
)
from repro.network.geo import City
from repro.spn.reachability import DEFAULT_MAX_TANGIBLE_MARKINGS
from repro.spn.rewards import ProbabilityMeasure
from repro.symmetry import resolve_symmetry_reduction

#: Any scenario the case-study grid can evaluate.
CloudScenario = Union[
    SingleDataCenterScenario, DistributedScenario, MultiDataCenterScenario
]

#: Module-path of the picklable symmetry-canonicalizer factory.  The factory
#: takes the model's :class:`~repro.symmetry.spec.SymmetrySpec` as its only
#: argument, so generation workers rebuild the exact canonicalizer from the
#: picklable spec.
CANONICALIZER_FACTORY = "repro.symmetry.canonicalize:build_canonicalizer"


def scenario_case(
    scenario: CloudScenario,
    parameters: Optional[CaseStudyParameters] = None,
    symmetry_reduction: Optional[bool] = None,
    name: Optional[str] = None,
) -> GridCase:
    """The engine-level grid case of one case-study scenario.

    The case carries the scenario's **full** timed-rate assignment (read off
    its own assembled net) and the availability measure of its own
    structure.  With ``symmetry_reduction`` (``None`` resolves to
    :data:`repro.symmetry.DEFAULT_SYMMETRY_REDUCTION` — on) it also
    carries

    * a picklable reference to the model's symmetry canonicalizer (PM
      exchange within each data center, plus whole-data-center exchange
      when the scenario's data centers are verified interchangeable), and
    * the *structural* symmetry spec as :attr:`~repro.engine.grid.GridCase.
      rate_symmetry`, so grid cases differing only by a permutation of
      exchangeable data-center parameter blocks dedupe to one solve.
    """
    symmetry_reduction = resolve_symmetry_reduction(symmetry_reduction)
    if isinstance(scenario, SingleDataCenterScenario):
        if parameters is not None:
            scenario = replace(scenario, parameters=parameters)
        model = scenario.build_model()
        metadata: dict[str, object] = {
            "type": "single",
            "cities": [scenario.location.name],
            "machines": scenario.machines,
            "disaster_years": (
                scenario.disaster_mean_time_years
                if scenario.disaster_mean_time_years is not None
                else model.parameters.disaster.mean_time_to_disaster.hours / 8760.0
            ),
        }
    else:
        model = scenario.build_model(parameters)
        if isinstance(scenario, MultiDataCenterScenario):
            cities = [city.name for city in scenario.locations]
            machines = scenario.machines_per_datacenter
            extra = {
                "topology": scenario.topology,
                "l": scenario.minimum_operational_pms,
                "backup": scenario.has_backup_server,
            }
        else:
            cities = [scenario.first.name, scenario.second.name]
            machines = (
                scenario.machines_per_datacenter
                if scenario.machines_per_datacenter is not None
                else 2
            )
            extra = {"backup": True}
        metadata = {
            "type": "distributed",
            "cities": cities,
            "machines": machines,
            "alpha": scenario.alpha,
            "disaster_years": scenario.disaster_mean_time_years,
            **extra,
        }
    canonicalizer = None
    rate_symmetry = None
    if symmetry_reduction:
        spec = model.symmetry_spec()
        if spec is not None:
            canonicalizer = CanonicalizerRef(CANONICALIZER_FACTORY, (spec,))
        rate_symmetry = model.symmetry_spec(structural=True)
    return GridCase(
        name=name or scenario.label,
        net=model.build(),
        measures=(
            ProbabilityMeasure("availability", model.availability_expression()),
        ),
        metadata=metadata,
        canonicalizer=canonicalizer,
        rate_symmetry=rate_symmetry,
    )


@dataclass(frozen=True)
class CaseStudyGrid:
    """Axes of a mixed-structure scenario grid.

    ``city_sets`` mixes deployment shapes freely: a one-city set is a
    single-site baseline, two cities are the paper's architecture, three or
    more become an N-data-center deployment over ``topology``.  Axes that
    cannot affect a scenario are pruned rather than duplicated (single sites
    ignore α, ``l`` and the backup server).
    """

    city_sets: tuple[tuple[City, ...], ...]
    alphas: tuple[float, ...] = (BASELINE_ALPHA,)
    disaster_years: tuple[float, ...] = (BASELINE_DISASTER_YEARS,)
    machines_per_datacenter: tuple[int, ...] = (2,)
    l_thresholds: tuple[int, ...] = (1,)
    backup: tuple[bool, ...] = (True,)
    topology: str = "mesh"
    backup_location: City = BACKUP_LOCATION

    def scenarios(self) -> list[CloudScenario]:
        """The grid's scenario list (cross product with pruned axes)."""
        scenarios: list[CloudScenario] = []
        for city_set in self.city_sets:
            if len(city_set) == 1:
                site = city_set[0]
                for machines in self.machines_per_datacenter:
                    for years in self.disaster_years:
                        scenarios.append(
                            SingleDataCenterScenario(
                                machines=machines,
                                label=(
                                    f"{site.name} single site "
                                    f"(machines={machines}, disaster={years:g}y)"
                                ),
                                disaster_mean_time_years=years,
                                location=site,
                            )
                        )
                continue
            for machines in self.machines_per_datacenter:
                for alpha in self.alphas:
                    for years in self.disaster_years:
                        for l_threshold in self.l_thresholds:
                            for has_backup in self.backup:
                                scenarios.append(
                                    MultiDataCenterScenario(
                                        locations=tuple(city_set),
                                        alpha=alpha,
                                        disaster_mean_time_years=years,
                                        backup=self.backup_location,
                                        machines_per_datacenter=machines,
                                        topology=self.topology,
                                        minimum_operational_pms=l_threshold,
                                        has_backup_server=has_backup,
                                    )
                                )
        return scenarios


def _structure_signature(scenario: CloudScenario) -> tuple:
    """The scenario fields that shape the net structure (not its rates).

    Rate-only axes (α, disaster mean time, city identities) are excluded on
    purpose: scenarios sharing a signature build structurally identical nets
    that differ only in timed rates, so :func:`evaluate_grid` can hand the
    orchestrator **one shared net object** per structure (its grouping
    memoization then compiles and fingerprints each structure once).
    """
    if isinstance(scenario, SingleDataCenterScenario):
        return ("single", scenario.machines)
    if isinstance(scenario, MultiDataCenterScenario):
        return (
            "multi",
            len(scenario.locations),
            scenario.machines_per_datacenter,
            scenario.topology,
            scenario.minimum_operational_pms,
            scenario.has_backup_server,
            # Guard-shaping options: they change the net's structure (extra
            # guard conjuncts) without changing its place/transition
            # vocabulary, so the name-equality check below cannot catch
            # them — the signature must.
            scenario.max_in_flight_vms,
            scenario.capacity_aware_migration,
        )
    return ("two", scenario.machines_per_datacenter)


def evaluate_grid(
    scenarios: Sequence[CloudScenario],
    parameters: Optional[CaseStudyParameters] = None,
    *,
    jobs: Optional[int] = None,
    backend: str = "auto",
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
    symmetry_reduction: Optional[bool] = None,
    shard_directory: Optional[Path] = None,
    shard_size: Optional[int] = None,
    generation_workers: Optional[int] = None,
    pipeline: bool = True,
    dedupe: bool = True,
    memory_budget: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    resume: bool = False,
    cancel_event: Optional[threading.Event] = None,
    log_callback: Optional[Callable[[str], None]] = None,
) -> GridOutcome:
    """Evaluate a list of case-study scenarios as one orchestrated grid.

    Results come back in scenario order; each row carries the availability
    measure plus per-group provenance (states, backend chosen, cache hit,
    solve seconds).  See :class:`repro.engine.grid.ScenarioGridOrchestrator`
    for the phases, the ``pipeline`` work-stealing overlap, the
    rate-identical-case ``dedupe``, the self-healing ``retry`` policy, the
    checkpoint ``resume`` mode and the ``log_callback`` progress hook.
    ``symmetry_reduction=None`` resolves to the library-wide default
    (:data:`repro.symmetry.DEFAULT_SYMMETRY_REDUCTION` — on); ``repro grid
    --no-symmetry`` passes ``False``.
    """
    symmetry_reduction = resolve_symmetry_reduction(symmetry_reduction)
    cases = []
    shared_nets: dict[tuple, object] = {}
    for scenario in scenarios:
        case = scenario_case(
            scenario, parameters=parameters, symmetry_reduction=symmetry_reduction
        )
        shared = shared_nets.setdefault(_structure_signature(scenario), case.net)
        if shared is not case.net and (
            shared.place_names == case.net.place_names
            and shared.transition_names == case.net.transition_names
        ):
            # Rate-only variant of an already-seen structure: keep this
            # scenario's full rate assignment but point the case at the
            # shared net object (the vocabulary check guards against a
            # signature ever lumping genuinely different structures).
            case = replace(case, net=shared, rates=case.full_rates())
        cases.append(case)
    shard_kwargs = {} if shard_size is None else {"shard_size": shard_size}
    orchestrator = ScenarioGridOrchestrator(
        cache=TRGCache(cache_dir) if use_cache else None,
        jobs=jobs,
        backend=backend,
        max_states=max_states,
        shard_directory=shard_directory,
        generation_workers=generation_workers,
        **shard_kwargs,
        pipeline=pipeline,
        dedupe=dedupe,
        memory_budget=memory_budget,
        retry=retry,
        resume=resume,
        cancel_event=cancel_event,
        log_callback=log_callback,
    )
    return orchestrator.run(cases)
