"""Ablation studies over the design knobs of Section III (experiment E6).

The paper's system description exposes several design choices that the case
study keeps fixed: the warm pool size, the availability threshold ``k``, the
presence of the backup server and the VM start time.  The ablations here vary
one knob at a time on a (configurable) two-data-center deployment so a
designer can see how much each mechanism actually buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.cloud_model import CloudSystemModel
from repro.core.datacenter import two_datacenter_spec
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.metrics import AvailabilityResult, Duration
from repro.network.geo import BRASILIA, RIO_DE_JANEIRO, SAO_PAULO, City


@dataclass(frozen=True)
class AblationResult:
    """Availability of one ablated configuration."""

    name: str
    description: str
    availability: AvailabilityResult

    @property
    def nines(self) -> float:
        return self.availability.nines


@dataclass
class AblationStudy:
    """Builds and evaluates the ablated configurations.

    The default deployment is deliberately smaller than the case study (one
    hot PM per data center) so every ablation solves in seconds; pass
    ``machines_per_datacenter=2`` to run the ablations on the full
    configuration.
    """

    first_location: City = RIO_DE_JANEIRO
    second_location: City = BRASILIA
    backup_location: City = SAO_PAULO
    alpha: float = 0.35
    machines_per_datacenter: int = 1
    required_running_vms: int = 1
    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)

    def _model(
        self,
        warm_machines: int = 0,
        has_backup: bool = True,
        required: Optional[int] = None,
        parameters: Optional[CaseStudyParameters] = None,
    ) -> CloudSystemModel:
        parameters = parameters or self.parameters
        spec = two_datacenter_spec(
            first_location=self.first_location,
            second_location=self.second_location,
            backup_location=self.backup_location if has_backup else None,
            machines_per_datacenter=self.machines_per_datacenter,
            vms_per_machine=parameters.vms_per_physical_machine,
            required_running_vms=required or self.required_running_vms,
            warm_machines_per_datacenter=warm_machines,
        )
        if not has_backup:
            spec = replace(spec, has_backup_server=False)
        return CloudSystemModel(spec=spec, parameters=parameters, alpha=self.alpha)

    def reference(self) -> AblationResult:
        """The un-ablated reference configuration."""
        return AblationResult(
            name="reference",
            description="backup server present, no warm pool, default threshold",
            availability=self._model().availability(),
        )

    def without_backup_server(self) -> AblationResult:
        """Remove the backup server (disasters can only be absorbed by direct migration)."""
        return AblationResult(
            name="no_backup_server",
            description="backup server removed",
            availability=self._model(has_backup=False).availability(),
        )

    def with_warm_pool(self, warm_machines: int = 1) -> AblationResult:
        """Add warm (idle but powered) machines to every data center."""
        return AblationResult(
            name=f"warm_pool_{warm_machines}",
            description=f"{warm_machines} warm machine(s) added per data center",
            availability=self._model(warm_machines=warm_machines).availability(),
        )

    def with_threshold(self, required_running_vms: int) -> AblationResult:
        """Change the availability threshold k."""
        return AblationResult(
            name=f"threshold_k{required_running_vms}",
            description=f"system requires k={required_running_vms} running VMs",
            availability=self._model(required=required_running_vms).availability(),
        )

    def with_vm_start_time(self, minutes: float) -> AblationResult:
        """Change the VM start time (the paper uses five minutes)."""
        parameters = replace(
            self.parameters, vm_start_time=Duration.from_minutes(minutes)
        )
        return AblationResult(
            name=f"vm_start_{minutes:g}min",
            description=f"VM start time of {minutes:g} minutes",
            availability=self._model(parameters=parameters).availability(),
        )

    def run_default_suite(self) -> list[AblationResult]:
        """The standard set of ablations used by the benchmark and EXPERIMENTS.md."""
        results = [
            self.reference(),
            self.without_backup_server(),
            self.with_warm_pool(1),
            self.with_vm_start_time(30.0),
        ]
        maximum_vms = (
            self.machines_per_datacenter
            * 2
            * self.parameters.vms_per_physical_machine
        )
        stricter = self.required_running_vms + 1
        if stricter <= maximum_vms:
            results.append(self.with_threshold(stricter))
        return results
