"""Ablation studies over the design knobs of Section III (experiment E6).

The paper's system description exposes several design choices that the case
study keeps fixed: the warm pool size, the availability threshold ``k``, the
presence of the backup server and the VM start time.  The ablations here vary
one knob at a time on a (configurable) two-data-center deployment so a
designer can see how much each mechanism actually buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.casestudy.sensitivity import timed_transition_rates
from repro.core.cloud_model import CloudSystemModel
from repro.core.datacenter import two_datacenter_spec
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.engine import ScenarioBatchEngine, ScenarioSpec, TRGCache
from repro.metrics import AvailabilityResult, Duration
from repro.network.geo import BRASILIA, RIO_DE_JANEIRO, SAO_PAULO, City
from repro.spn.analysis import SteadyStateSolution
from repro.spn.rewards import ProbabilityMeasure


#: Names / descriptions shared by the single-ablation methods and the
#: orchestrated default suite, so the two can never drift apart.
REFERENCE_NAME = "reference"
REFERENCE_DESCRIPTION = "backup server present, no warm pool, default threshold"
NO_BACKUP_NAME = "no_backup_server"
NO_BACKUP_DESCRIPTION = "backup server removed"


def warm_pool_name(warm_machines: int) -> str:
    return f"warm_pool_{warm_machines}"


def warm_pool_description(warm_machines: int) -> str:
    return f"{warm_machines} warm machine(s) added per data center"


def vm_start_name(minutes: float) -> str:
    return f"vm_start_{minutes:g}min"


def vm_start_description(minutes: float) -> str:
    return f"VM start time of {minutes:g} minutes"


def threshold_name(required_running_vms: int) -> str:
    return f"threshold_k{required_running_vms}"


def threshold_description(required_running_vms: int) -> str:
    return f"system requires k={required_running_vms} running VMs"


@dataclass(frozen=True)
class AblationResult:
    """Availability of one ablated configuration."""

    name: str
    description: str
    availability: AvailabilityResult

    @property
    def nines(self) -> float:
        return self.availability.nines


@dataclass
class AblationStudy:
    """Builds and evaluates the ablated configurations.

    The default deployment is deliberately smaller than the case study (one
    hot PM per data center) so every ablation solves in seconds; pass
    ``machines_per_datacenter=2`` to run the ablations on the full
    configuration.
    """

    first_location: City = RIO_DE_JANEIRO
    second_location: City = BRASILIA
    backup_location: City = SAO_PAULO
    alpha: float = 0.35
    machines_per_datacenter: int = 1
    required_running_vms: int = 1
    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    use_cache: bool = True
    #: Worker count / backend for the rate-only ablation batches
    #: (see :meth:`with_vm_start_times`).
    jobs: Optional[int] = None
    backend: str = "auto"
    #: Overlap structure generation with solving in the orchestrated suite
    #: (see :class:`~repro.engine.grid.ScenarioGridOrchestrator`).
    pipeline: bool = True
    #: Share stationary vectors across rate-identical suite cases — the
    #: threshold ablation re-rates the reference structure with *identical*
    #: rates (it only changes the availability expression), so with dedupe
    #: it never solves a second time.
    dedupe: bool = True
    #: :class:`~repro.engine.grid.GridOutcome` of the last
    #: :meth:`run_default_suite` call (pipeline/dedupe provenance).
    last_grid_outcome: Optional[object] = field(default=None, repr=False)
    _engines: dict = field(default_factory=dict, repr=False)
    _base_solutions: dict = field(default_factory=dict, repr=False)

    def _model(
        self,
        warm_machines: int = 0,
        has_backup: bool = True,
        required: Optional[int] = None,
        parameters: Optional[CaseStudyParameters] = None,
    ) -> CloudSystemModel:
        parameters = parameters or self.parameters
        spec = two_datacenter_spec(
            first_location=self.first_location,
            second_location=self.second_location,
            backup_location=self.backup_location if has_backup else None,
            machines_per_datacenter=self.machines_per_datacenter,
            vms_per_machine=parameters.vms_per_physical_machine,
            required_running_vms=required or self.required_running_vms,
            warm_machines_per_datacenter=warm_machines,
        )
        if not has_backup:
            spec = replace(spec, has_backup_server=False)
        return CloudSystemModel(spec=spec, parameters=parameters, alpha=self.alpha)

    # --- engine plumbing --------------------------------------------------
    #
    # Ablations fall into three classes: structural changes (warm pool,
    # backup removal) get their own engine/state space; rate-only changes
    # (VM start time) re-rate the reference state space; expression-only
    # changes (threshold k) re-use the reference *solution* outright.

    def _engine_and_model(
        self, warm_machines: int = 0, has_backup: bool = True
    ) -> tuple[ScenarioBatchEngine, CloudSystemModel]:
        key = (warm_machines, has_backup)
        if key not in self._engines:
            model = self._model(warm_machines=warm_machines, has_backup=has_backup)
            engine = ScenarioBatchEngine(
                model.build(), cache=TRGCache() if self.use_cache else None
            )
            self._engines[key] = (engine, model)
        return self._engines[key]

    def _base_solution(
        self, warm_machines: int = 0, has_backup: bool = True
    ) -> tuple[SteadyStateSolution, CloudSystemModel]:
        key = (warm_machines, has_backup)
        if key not in self._base_solutions:
            engine, model = self._engine_and_model(warm_machines, has_backup)
            self._base_solutions[key] = (engine.solve(), model)
        return self._base_solutions[key]

    def reference(self) -> AblationResult:
        """The un-ablated reference configuration."""
        solution, model = self._base_solution()
        return AblationResult(
            name=REFERENCE_NAME,
            description=REFERENCE_DESCRIPTION,
            availability=model.availability(solution=solution),
        )

    def without_backup_server(self) -> AblationResult:
        """Remove the backup server (disasters can only be absorbed by direct migration)."""
        solution, model = self._base_solution(has_backup=False)
        return AblationResult(
            name=NO_BACKUP_NAME,
            description=NO_BACKUP_DESCRIPTION,
            availability=model.availability(solution=solution),
        )

    def with_warm_pool(self, warm_machines: int = 1) -> AblationResult:
        """Add warm (idle but powered) machines to every data center."""
        solution, model = self._base_solution(warm_machines=warm_machines)
        return AblationResult(
            name=warm_pool_name(warm_machines),
            description=warm_pool_description(warm_machines),
            availability=model.availability(solution=solution),
        )

    def with_threshold(self, required_running_vms: int) -> AblationResult:
        """Change the availability threshold k.

        The threshold only appears in the availability *expression*, not in
        the net, so the reference solution is re-used as-is and only the
        measure is re-evaluated.
        """
        # Assemble the ablated spec purely for its validation (it raises on
        # thresholds the deployment cannot satisfy); the solution is shared.
        self._model(required=required_running_vms)
        solution, model = self._base_solution()
        value = solution.probability(
            model.availability_expression(required_running_vms=required_running_vms)
        )
        return AblationResult(
            name=threshold_name(required_running_vms),
            description=threshold_description(required_running_vms),
            availability=AvailabilityResult(
                min(1.0, max(0.0, value)),
                label=f"k={required_running_vms}",
            ),
        )

    def with_vm_start_time(self, minutes: float) -> AblationResult:
        """Change the VM start time (the paper uses five minutes).

        A pure rate change: the perturbed net is assembled only to read off
        its rate assignment, which re-rates the reference state space.
        """
        (result,) = self.with_vm_start_times([minutes])
        return result

    def with_vm_start_times(
        self, minutes_list: Sequence[float]
    ) -> list[AblationResult]:
        """Evaluate several VM start times as one batch on the reference space.

        All points are pure rate changes of the reference structure, so the
        whole list is submitted to the batch engine at once (re-rate +
        re-fill + warm-started re-solve per point, measures in one GEMM) and
        fans out over :attr:`jobs` workers of :attr:`backend`.
        """
        engine, model = self._engine_and_model()
        specs = []
        for minutes in minutes_list:
            parameters = replace(
                self.parameters, vm_start_time=Duration.from_minutes(minutes)
            )
            perturbed = self._model(parameters=parameters)
            specs.append(
                ScenarioSpec(
                    name=f"vm_start_{minutes:g}min",
                    rates=timed_transition_rates(perturbed.build()),
                    metadata={"minutes": float(minutes)},
                )
            )
        results = engine.run(
            specs,
            [ProbabilityMeasure("availability", model.availability_expression())],
            max_workers=self.jobs,
            backend=self.backend,
        )
        return [
            AblationResult(
                name=result.name,
                description=vm_start_description(
                    float(result.spec.metadata["minutes"])
                ),
                availability=AvailabilityResult(
                    min(1.0, max(0.0, result.value("availability"))),
                    label=result.name,
                ),
            )
            for result in results
        ]

    def run_default_suite(self) -> list[AblationResult]:
        """The standard set of ablations used by the benchmark and EXPERIMENTS.md.

        The whole suite runs as **one** orchestrated scenario grid
        (:mod:`repro.engine.grid`): the reference, the VM-start-time points
        (pure rate changes) and the threshold ablation (an expression-only
        change) share one structure group — one generation or cache hit,
        warm-started re-solves — while the backup-removal and warm-pool
        ablations generate their own structures concurrently.  Batches fan
        out over :attr:`jobs` workers of :attr:`backend`.
        """
        from repro.engine.grid import GridCase, ScenarioGridOrchestrator

        reference_model = self._model()
        reference_expression = reference_model.availability_expression()

        def grid_case(name, model, description, expression=None, rates=None):
            return GridCase(
                name=name,
                net=model.build(),
                measures=(
                    ProbabilityMeasure(
                        "availability", expression or model.availability_expression()
                    ),
                ),
                rates=rates or {},
                metadata={"description": description},
            )

        cases = [
            grid_case(REFERENCE_NAME, reference_model, REFERENCE_DESCRIPTION),
            grid_case(
                NO_BACKUP_NAME, self._model(has_backup=False), NO_BACKUP_DESCRIPTION
            ),
            grid_case(
                warm_pool_name(1), self._model(warm_machines=1), warm_pool_description(1)
            ),
        ]
        for minutes in (5.0, 30.0, 60.0):
            perturbed = self._model(
                parameters=replace(
                    self.parameters, vm_start_time=Duration.from_minutes(minutes)
                )
            )
            cases.append(
                grid_case(
                    vm_start_name(minutes),
                    reference_model,
                    vm_start_description(minutes),
                    expression=reference_expression,
                    rates=timed_transition_rates(perturbed.build()),
                )
            )
        maximum_vms = (
            self.machines_per_datacenter
            * 2
            * self.parameters.vms_per_physical_machine
        )
        stricter = self.required_running_vms + 1
        if stricter <= maximum_vms:
            # Assemble the stricter spec purely for its validation; the
            # threshold only changes the availability *expression*.
            self._model(required=stricter)
            cases.append(
                grid_case(
                    threshold_name(stricter),
                    reference_model,
                    threshold_description(stricter),
                    expression=reference_model.availability_expression(
                        required_running_vms=stricter
                    ),
                )
            )

        orchestrator = ScenarioGridOrchestrator(
            cache=TRGCache() if self.use_cache else None,
            jobs=self.jobs,
            backend=self.backend,
            generation_workers=self.jobs,
            pipeline=self.pipeline,
            dedupe=self.dedupe,
        )
        outcome = orchestrator.run(cases)
        self.last_grid_outcome = outcome
        return [
            AblationResult(
                name=row.name,
                description=str(row.metadata["description"]),
                availability=AvailabilityResult(
                    min(1.0, max(0.0, row.value("availability"))), label=row.name
                ),
            )
            for row in outcome.results
        ]
