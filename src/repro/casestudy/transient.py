"""Mission-window (interval) availability vs VM start time — new workload.

The paper's dependability story treats VM start time as a design knob
(Table VII / Figure 7 are steady-state); operators, however, usually ask a
*transient* question: "what availability do I get over the next mission
window — a launch weekend, a billing day — given how fast my VMs start?".
This module answers it with the batched uniformization path of the scenario
engine: one shared state space, one scenario per VM start time, and per
scenario the **point availability** ``A(t)`` and the **interval
availability** ``(1/t)∫₀ᵗ A(u) du`` over a grid of mission times, starting
from the fully-operational initial marking.

All scenarios are pure re-ratings of the reference two-data-center
structure (like the VM-start-time ablations), so the whole sweep is one
``ScenarioBatchEngine.run_transient`` batch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.casestudy.runner import AVAILABILITY_MEASURE, DistributedSweepRunner
from repro.casestudy.sensitivity import timed_transition_rates
from repro.engine import ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.metrics import Duration

#: VM start times (minutes) evaluated by default — the paper's five-minute
#: baseline plus two degraded provisioning paths.
DEFAULT_VM_START_MINUTES = (5.0, 30.0, 60.0)

#: Default mission window (hours) and number of grid points.
DEFAULT_WINDOW_HOURS = 72.0
DEFAULT_GRID_POINTS = 13


@dataclass(frozen=True)
class TransientCurve:
    """Availability over one mission window for one VM start time."""

    vm_start_minutes: float
    times_hours: np.ndarray
    point_availability: np.ndarray
    interval_availability: np.ndarray
    number_of_states: int
    solve_seconds: float

    @property
    def mission_interval_availability(self) -> float:
        """Interval availability over the full mission window."""
        return float(self.interval_availability[-1])

    @property
    def mission_point_availability(self) -> float:
        """Point availability at the end of the mission window."""
        return float(self.point_availability[-1])


def mission_grid(
    window_hours: float = DEFAULT_WINDOW_HOURS,
    points: int = DEFAULT_GRID_POINTS,
) -> np.ndarray:
    """Evenly spaced mission times ``0 … window_hours`` (inclusive)."""
    if window_hours <= 0.0:
        raise ConfigurationError(
            f"the mission window must be positive, got {window_hours!r} hours"
        )
    if points < 2:
        raise ConfigurationError(f"need at least 2 grid points, got {points!r}")
    return np.linspace(0.0, float(window_hours), int(points))


def vm_start_specs(
    runner: DistributedSweepRunner, minutes: Sequence[float]
) -> list[ScenarioSpec]:
    """One engine spec per VM start time (pure re-ratings of the reference).

    Each perturbed net is assembled only to read off its rate assignment
    (no state-space exploration); the structure is identical across the
    sweep, so every spec re-rates the runner's shared reachability graph.
    """
    specs = []
    for value in minutes:
        if value <= 0.0:
            raise ConfigurationError(
                f"VM start time must be positive, got {value!r} minutes"
            )
        perturbed = DistributedSweepRunner(
            parameters=replace(
                runner.parameters, vm_start_time=Duration.from_minutes(value)
            ),
            machines_per_datacenter=runner.machines_per_datacenter,
            use_cache=False,
        )
        specs.append(
            ScenarioSpec(
                name=f"vm_start_{value:g}min",
                rates=timed_transition_rates(perturbed.reference_model().build()),
                metadata={"minutes": float(value)},
            )
        )
    return specs


def reproduce_transient(
    runner: Optional[DistributedSweepRunner] = None,
    minutes: Sequence[float] = DEFAULT_VM_START_MINUTES,
    window_hours: float = DEFAULT_WINDOW_HOURS,
    points: int = DEFAULT_GRID_POINTS,
    max_workers: Optional[int] = None,
    backend: str = "auto",
) -> list[TransientCurve]:
    """Mission-window availability curves, one per VM start time.

    The whole sweep is a single batched-uniformization dispatch on the
    runner's shared state space (``max_workers``/``backend`` fan the
    scenario block out over contiguous thread chunks, subject to the
    effective-core clamp).
    """
    runner = runner or DistributedSweepRunner()
    specs = vm_start_specs(runner, minutes)
    times = mission_grid(window_hours, points)
    results = runner.engine().run_transient(
        specs,
        [runner.availability_measure()],
        times,
        max_workers=max_workers,
        backend=backend,
    )
    return [
        TransientCurve(
            vm_start_minutes=float(spec.metadata["minutes"]),
            times_hours=result.times,
            point_availability=np.clip(result.point[AVAILABILITY_MEASURE], 0.0, 1.0),
            interval_availability=np.clip(
                result.interval[AVAILABILITY_MEASURE], 0.0, 1.0
            ),
            number_of_states=result.number_of_states,
            solve_seconds=result.solve_seconds,
        )
        for spec, result in zip(specs, results)
    ]
