"""Case-study harness: Table VII, Figure 7, sensitivity and ablation experiments."""

from repro.casestudy.ablations import AblationResult, AblationStudy
from repro.casestudy.figure7 import (
    Figure7Point,
    best_configuration,
    figure7_grid,
    reproduce_figure7,
)
from repro.casestudy.grid import (
    CaseStudyGrid,
    evaluate_grid,
    scenario_case,
)
from repro.casestudy.report import (
    render_ablations,
    render_figure7,
    render_grid,
    render_sensitivity,
    render_table7,
    render_transient,
)
from repro.casestudy.runner import DistributedSweepRunner, SweepEvaluation
from repro.casestudy.sensitivity import (
    COMPONENT_NAMES,
    SensitivityAnalysis,
    SensitivityEntry,
)
from repro.casestudy.table7 import (
    PAPER_TABLE_VII,
    Table7Row,
    distributed_rows,
    reproduce_table7,
    single_site_rows,
)
from repro.casestudy.transient import (
    DEFAULT_VM_START_MINUTES,
    TransientCurve,
    mission_grid,
    reproduce_transient,
    vm_start_specs,
)

__all__ = [
    "AblationResult",
    "AblationStudy",
    "Figure7Point",
    "best_configuration",
    "figure7_grid",
    "reproduce_figure7",
    "CaseStudyGrid",
    "evaluate_grid",
    "scenario_case",
    "render_ablations",
    "render_figure7",
    "render_grid",
    "render_sensitivity",
    "render_table7",
    "render_transient",
    "DEFAULT_VM_START_MINUTES",
    "TransientCurve",
    "mission_grid",
    "reproduce_transient",
    "vm_start_specs",
    "DistributedSweepRunner",
    "SweepEvaluation",
    "COMPONENT_NAMES",
    "SensitivityAnalysis",
    "SensitivityEntry",
    "PAPER_TABLE_VII",
    "Table7Row",
    "distributed_rows",
    "reproduce_table7",
    "single_site_rows",
]
