"""Reproduction of Figure 7 — availability increase of distributed configurations.

Figure 7 of the paper plots, for each of the five city pairs, the *increase in
number of nines* of every (α, disaster-mean-time) combination relative to that
pair's baseline configuration (α = 0.35, disaster mean time = 100 years).
``reproduce_figure7`` regenerates the full 45-point sweep (or any subset)
using the shared-state-space runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.casestudy.runner import DistributedSweepRunner
from repro.core.parameters import ALPHA_VALUES, DISASTER_MEAN_TIME_YEARS
from repro.core.scenarios import (
    BASELINE_ALPHA,
    BASELINE_DISASTER_YEARS,
    CITY_PAIRS,
    DistributedScenario,
)


@dataclass(frozen=True)
class Figure7Point:
    """One bar of Figure 7."""

    city_pair: str
    alpha: float
    disaster_mean_time_years: float
    availability: float
    nines: float
    improvement_over_baseline: float

    @property
    def is_baseline(self) -> bool:
        return (
            self.alpha == BASELINE_ALPHA
            and self.disaster_mean_time_years == BASELINE_DISASTER_YEARS
        )


def figure7_grid(
    city_pairs=CITY_PAIRS,
    alphas: Sequence[float] = ALPHA_VALUES,
    disaster_years: Sequence[float] = DISASTER_MEAN_TIME_YEARS,
) -> list[DistributedScenario]:
    """The scenario grid of Figure 7 (optionally restricted)."""
    scenarios = []
    for first, second in city_pairs:
        for alpha in alphas:
            for years in disaster_years:
                scenarios.append(
                    DistributedScenario(
                        first=first,
                        second=second,
                        alpha=alpha,
                        disaster_mean_time_years=years,
                    )
                )
    return scenarios


def reproduce_figure7(
    runner: Optional[DistributedSweepRunner] = None,
    city_pairs=CITY_PAIRS,
    alphas: Sequence[float] = ALPHA_VALUES,
    disaster_years: Sequence[float] = DISASTER_MEAN_TIME_YEARS,
    max_workers: Optional[int] = None,
    backend: str = "auto",
) -> list[Figure7Point]:
    """Evaluate the Figure 7 sweep and report improvements over each baseline.

    The baseline of a city pair (α = 0.35, 100-year disasters) is always
    evaluated, even if excluded from ``alphas`` / ``disaster_years``, because
    the figure reports improvements relative to it.

    The whole grid is submitted to the sweep runner as **one batch**, so the
    shared state space is generated once and every point is a re-rate +
    re-fill + warm-started re-solve; ``max_workers`` additionally fans the
    batch out over the engine's workers (``backend`` selects the zero-copy
    multiprocess scheduler, threads or the serial path).
    """
    runner = runner or DistributedSweepRunner()
    grid: dict[tuple[str, float, float], DistributedScenario] = {}
    for first, second in city_pairs:
        pair_label = f"{first.name} - {second.name}"
        keys = {(BASELINE_ALPHA, BASELINE_DISASTER_YEARS)}
        keys.update((alpha, years) for alpha in alphas for years in disaster_years)
        for alpha, years in sorted(keys):
            grid[(pair_label, alpha, years)] = DistributedScenario(
                first=first,
                second=second,
                alpha=alpha,
                disaster_mean_time_years=years,
            )

    evaluations = dict(
        zip(
            grid,
            runner.evaluate_many(
                grid.values(), max_workers=max_workers, backend=backend
            ),
        )
    )

    points: list[Figure7Point] = []
    for first, second in city_pairs:
        pair_label = f"{first.name} - {second.name}"
        baseline = evaluations[(pair_label, BASELINE_ALPHA, BASELINE_DISASTER_YEARS)]
        for (label, alpha, years), evaluation in sorted(evaluations.items()):
            if label != pair_label:
                continue
            points.append(
                Figure7Point(
                    city_pair=pair_label,
                    alpha=alpha,
                    disaster_mean_time_years=years,
                    availability=evaluation.availability.availability,
                    nines=evaluation.nines,
                    improvement_over_baseline=evaluation.nines - baseline.nines,
                )
            )
    return points


def best_configuration(points: Iterable[Figure7Point]) -> Figure7Point:
    """The configuration with the highest availability (the paper's headline:
    Rio de Janeiro - Brasília with α = 0.45 and 300-year disasters)."""
    points = list(points)
    if not points:
        raise ValueError("no Figure 7 points were provided")
    return max(points, key=lambda point: point.availability)
