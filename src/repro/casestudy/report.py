"""Plain-text rendering of case-study results.

The harness prints the same rows / series the paper reports (Table VII and
Figure 7) so the console output of the examples and benchmarks can be
compared with the publication side by side.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.casestudy.ablations import AblationResult
from repro.casestudy.figure7 import Figure7Point
from repro.casestudy.sensitivity import SensitivityEntry
from repro.casestudy.table7 import Table7Row
from repro.casestudy.transient import TransientCurve


def _format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    def render_row(cells):
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row(headers), separator]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def render_table7(rows: Iterable[Table7Row]) -> str:
    """Render the reproduced Table VII next to the published values."""
    body = []
    for row in rows:
        paper = "-" if row.paper_availability is None else f"{row.paper_availability:.7f}"
        paper_nines = "-" if row.paper_nines is None else f"{row.paper_nines:.2f}"
        body.append(
            (
                row.label,
                f"{row.measured.availability:.7f}",
                f"{row.measured.nines:.2f}",
                paper,
                paper_nines,
            )
        )
    return _format_table(
        ["Architecture", "Availability", "Nines", "Paper avail.", "Paper nines"], body
    )


def render_figure7(points: Iterable[Figure7Point]) -> str:
    """Render the Figure 7 sweep as a table of nines improvements."""
    body = [
        (
            point.city_pair,
            f"{point.alpha:.2f}",
            f"{point.disaster_mean_time_years:.0f}",
            f"{point.availability:.7f}",
            f"{point.nines:.2f}",
            f"{point.improvement_over_baseline:+.2f}",
        )
        for point in points
    ]
    return _format_table(
        ["City pair", "alpha", "Disaster MTTF (y)", "Availability", "Nines", "Δ nines"],
        body,
    )


def render_sensitivity(entries: Iterable[SensitivityEntry]) -> str:
    """Render a sensitivity sweep sorted by impact."""
    body = [
        (
            entry.component,
            entry.parameter,
            f"x{entry.factor:g}",
            f"{entry.baseline_availability:.7f}",
            f"{entry.perturbed_availability:.7f}",
            f"{entry.availability_delta:+.2e}",
        )
        for entry in entries
    ]
    return _format_table(
        ["Component", "Parameter", "Factor", "Baseline", "Perturbed", "Δ availability"],
        body,
    )


def render_transient(curves: Iterable[TransientCurve]) -> str:
    """Render mission-window availability curves (one block per VM start time).

    Each curve lists the point availability ``A(t)`` and the interval
    availability ``(1/t)∫₀ᵗ A`` at every mission time of the grid.
    """
    blocks = []
    for curve in curves:
        body = [
            (
                f"{float(t):8.2f}",
                f"{float(point):.7f}",
                f"{float(interval):.7f}",
            )
            for t, point, interval in zip(
                curve.times_hours,
                curve.point_availability,
                curve.interval_availability,
            )
        ]
        table = _format_table(
            ["Mission t (h)", "Point avail. A(t)", "Interval avail. [0,t]"], body
        )
        blocks.append(
            f"VM start time: {curve.vm_start_minutes:g} min  "
            f"(mission interval availability "
            f"{curve.mission_interval_availability:.7f}, "
            f"{curve.number_of_states} states)\n{table}"
        )
    return "\n\n".join(blocks)


def render_grid(outcome) -> str:
    """Render a grid outcome: one row per scenario plus group provenance.

    ``outcome`` is a :class:`repro.engine.grid.GridOutcome`; the second
    table summarises each structure group (states, cache hit, backend and
    generate/solve seconds).
    """
    from repro.metrics import number_of_nines

    body = []
    for row in outcome.results:
        availability = row.value("availability")
        body.append(
            (
                row.name,
                f"{availability:.7f}",
                f"{number_of_nines(min(1.0, max(0.0, availability))):.2f}",
                str(row.number_of_states),
                row.group[:8],
                row.graph_source,
            )
        )
    scenario_table = _format_table(
        ["Scenario", "Availability", "Nines", "States", "Group", "Graph"], body
    )
    group_table = _format_table(
        ["Group", "Cases", "States", "Graph", "Backend", "Generate s", "Solve s"],
        [
            (
                group.key[:8],
                str(group.cases),
                str(group.number_of_states),
                group.graph_source,
                group.backend,
                f"{group.generate_seconds:.2f}",
                f"{group.solve_seconds:.2f}",
            )
            for group in outcome.groups
        ],
    )
    summary = (
        f"{len(outcome.results)} scenario(s) over {len(outcome.groups)} structure "
        f"group(s) in {outcome.total_seconds:.2f}s"
    )
    summary += " (pipelined)" if getattr(outcome, "pipelined", False) else ""
    deduped = getattr(outcome, "deduped_cases", 0)
    if deduped:
        summary += f"; {deduped} case(s) deduped (shared stationary vector)"
    restored = getattr(outcome, "restored_cases", 0)
    if restored:
        summary += f"; {restored} case(s) restored from checkpoint"
    rebuilds = getattr(outcome, "pool_rebuilds", 0)
    if rebuilds:
        summary += f"; worker pool rebuilt {rebuilds} time(s)"
    kills = getattr(outcome, "watchdog_kills", 0)
    if kills:
        summary += f"; watchdog killed {kills} hung task(s)"
    if outcome.shard_paths:
        summary += f"; {len(outcome.shard_paths)} shard file(s) written"
    rendered = f"{scenario_table}\n\n{group_table}\n\n{summary}"
    failures = getattr(outcome, "failures", [])
    if failures:
        failure_table = _format_table(
            ["Stage", "Group", "Cases", "Attempts", "Error"],
            [
                (
                    record.stage,
                    record.group[:8],
                    ", ".join(record.cases),
                    str(record.attempts),
                    f"{record.error_type}: {record.error}"[:72],
                )
                for record in failures
            ],
        )
        rendered += (
            f"\n\nPARTIAL RESULT — "
            f"{sum(len(record.cases) for record in failures)} case(s) "
            f"quarantined after retries:\n{failure_table}"
        )
    return rendered


def render_ablations(results: Iterable[AblationResult]) -> str:
    """Render an ablation suite."""
    body = [
        (
            result.name,
            result.description,
            f"{result.availability.availability:.7f}",
            f"{result.nines:.2f}",
        )
        for result in results
    ]
    return _format_table(["Ablation", "Description", "Availability", "Nines"], body)
