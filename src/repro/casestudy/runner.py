"""Efficient evaluation of families of case-study scenarios.

All distributed configurations of Section V share one and the same net
*structure* — two data centers, two PMs each, a backup server and the
transmission component; the scenarios only differ in transition delays
(disaster mean time, and the three MTT values derived from distance and α).
``DistributedSweepRunner`` is a thin case-study adapter over the generic
:class:`repro.engine.ScenarioBatchEngine`: the tangible reachability graph is
generated once, each scenario is a vectorized re-rating of it, the
constrained balance system is re-filled (never re-assembled) per scenario and
the factorisation/warm-start state is reused across the sweep — which
reduces the Figure 7 sweep from 45 state-space generations plus 45 cold
solves to one generation, one factorisation and 45 cheap re-solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.cloud_model import CloudSystemModel
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.core.scenarios import DistributedScenario
from repro.engine import ScenarioBatchEngine, ScenarioResult, ScenarioSpec, TRGCache
from repro.exceptions import ConfigurationError
from repro.metrics import AvailabilityResult
from repro.network.migration import MigrationPlanner
from repro.spn.reachability import TangibleReachabilityGraph
from repro.spn.rewards import ProbabilityMeasure
from repro.symmetry import resolve_symmetry_reduction

#: Name of the availability measure evaluated for every scenario.
AVAILABILITY_MEASURE = "availability"


@dataclass
class SweepEvaluation:
    """Availability of one scenario plus bookkeeping about how it was obtained."""

    scenario: DistributedScenario
    availability: AvailabilityResult
    number_of_states: int
    solve_seconds: float

    @property
    def nines(self) -> float:
        return self.availability.nines


@dataclass
class DistributedSweepRunner:
    """Shared-state-space evaluator for two-data-center scenarios.

    Attributes:
        parameters: case-study parameters used for the *structure* (component
            MTTF/MTTR, VM counts, threshold k).  Disaster mean time and
            migration delays are overridden per scenario.
        machines_per_datacenter: hot PMs per data center (2 in the paper).
        method: stationary solver passed to the batch engine.
        max_states: state-space limit for the one-off generation.
        use_cache: consult / populate the persistent on-disk reachability
            cache (:class:`repro.engine.TRGCache`) so repeat runs over the
            same configuration skip state-space generation entirely.
        cache_dir: cache location override (default: ``$REPRO_CACHE_DIR``
            or ``~/.cache/repro/trg``).
    """

    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    machines_per_datacenter: int = 2
    method: str = "auto"
    max_states: int = 500_000
    #: ``None`` resolves to the library-wide default
    #: (:data:`repro.symmetry.DEFAULT_SYMMETRY_REDUCTION` — on); the
    #: attribute still accepts an explicit ``True``/``False``.
    symmetry_reduction: Optional[bool] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    _engine: Optional[ScenarioBatchEngine] = field(default=None, repr=False)
    _reference_model: Optional[CloudSystemModel] = field(default=None, repr=False)

    def reference_model(self) -> CloudSystemModel:
        """The model whose structure is shared by every scenario of the sweep."""
        if self._reference_model is None:
            from repro.core.scenarios import CITY_PAIRS

            first, second = CITY_PAIRS[0]
            scenario = DistributedScenario(
                first, second, machines_per_datacenter=self.machines_per_datacenter
            )
            self._reference_model = scenario.build_model(self.parameters)
        return self._reference_model

    def engine(self) -> ScenarioBatchEngine:
        """The (lazily constructed) batch engine sharing one state space.

        With ``symmetry_reduction`` (the default) the engine's graph is the
        exactly lumped CTMC obtained from the exchangeability of the PMs
        within each data center — the availability metric is symmetric under
        those permutations, so the lumping is exact for every sweep
        evaluation.
        """
        if self._engine is None:
            model = self.reference_model()
            canonicalize = (
                model.symmetry_canonicalizer()
                if resolve_symmetry_reduction(self.symmetry_reduction)
                else None
            )
            self._engine = ScenarioBatchEngine(
                model.build(),
                method=self.method,
                max_states=self.max_states,
                canonicalize=canonicalize,
                cache=TRGCache(self.cache_dir) if self.use_cache else None,
            )
        return self._engine

    def graph(self) -> TangibleReachabilityGraph:
        """Generate (once) and return the shared tangible reachability graph."""
        return self.engine().graph()

    def scenario_delays(self, scenario: DistributedScenario) -> dict[str, float]:
        """Transition delays (hours) that distinguish ``scenario`` from the reference."""
        planner = MigrationPlanner(
            vm_image_size=self.parameters.vm_image_size,
        )
        times = planner.migration_times(
            scenario.first, scenario.second, scenario.backup, scenario.alpha
        )
        disaster_hours = scenario.disaster_mean_time_years * 8760.0
        return {
            "DC_1_F": disaster_hours,
            "DC_2_F": disaster_hours,
            "TRE_12": times.datacenter_to_datacenter.hours,
            "TRE_21": times.datacenter_to_datacenter.hours,
            "TBE_12": times.backup_to_second.hours,
            "TBE_21": times.backup_to_first.hours,
        }

    def scenario_spec(self, scenario: DistributedScenario) -> ScenarioSpec:
        """The engine-level spec (delay overrides) of one case-study scenario.

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        scenario pins a machine count different from this runner's — the
        runner's shared state space would otherwise silently evaluate a
        mismatched structure.
        """
        if scenario.disaster_mean_time_years <= 0.0:
            raise ConfigurationError("the disaster mean time must be positive")
        if (
            scenario.machines_per_datacenter is not None
            and scenario.machines_per_datacenter != self.machines_per_datacenter
        ):
            raise ConfigurationError(
                f"scenario {scenario.label!r} asks for "
                f"{scenario.machines_per_datacenter} machine(s) per data center "
                f"but this runner's shared structure has "
                f"{self.machines_per_datacenter}; configure the runner (or drop "
                f"the scenario's machine count) so they agree"
            )
        return ScenarioSpec(
            name=scenario.label, delays=self.scenario_delays(scenario)
        )

    def availability_measure(self) -> ProbabilityMeasure:
        """The engine-level availability measure of the reference structure.

        Shared by the steady-state sweeps and the transient mission-window
        workload (:mod:`repro.casestudy.transient`).
        """
        return ProbabilityMeasure(
            AVAILABILITY_MEASURE, self.reference_model().availability_expression()
        )

    def _to_evaluation(
        self, scenario: DistributedScenario, result: ScenarioResult
    ) -> SweepEvaluation:
        value = result.value(AVAILABILITY_MEASURE)
        return SweepEvaluation(
            scenario=scenario,
            availability=AvailabilityResult(
                min(1.0, max(0.0, value)), label=scenario.label
            ),
            number_of_states=result.number_of_states,
            solve_seconds=result.solve_seconds,
        )

    def evaluate(self, scenario: DistributedScenario) -> SweepEvaluation:
        """Availability of one scenario, reusing the shared state space."""
        result = self.engine().evaluate(
            self.scenario_spec(scenario), [self.availability_measure()]
        )
        return self._to_evaluation(scenario, result)

    def evaluate_many(
        self,
        scenarios: Iterable[DistributedScenario],
        max_workers: Optional[int] = None,
        backend: str = "auto",
    ) -> list[SweepEvaluation]:
        """Evaluate a batch of scenarios sharing this runner's structure.

        With ``max_workers`` the batch fans out over the engine's workers —
        by default the zero-copy multiprocess scheduler, or threads with
        ``backend="thread"`` (each worker chains warm starts across a
        contiguous chunk of the sweep); results always come back in input
        order.
        """
        scenarios = list(scenarios)
        results = self.engine().run(
            [self.scenario_spec(scenario) for scenario in scenarios],
            [self.availability_measure()],
            max_workers=max_workers,
            backend=backend,
        )
        return [
            self._to_evaluation(scenario, result)
            for scenario, result in zip(scenarios, results)
        ]
