"""Efficient evaluation of families of case-study scenarios.

All distributed configurations of Section V share one and the same net
*structure* — two data centers, two PMs each, a backup server and the
transmission component; the scenarios only differ in transition delays
(disaster mean time, and the three MTT values derived from distance and α).
``DistributedSweepRunner`` therefore generates the tangible reachability
graph once and re-rates it per scenario via
:func:`repro.spn.parametric.with_transition_delays`, which reduces the
Figure 7 sweep from 45 state-space generations to one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.sparse import linalg as sparse_linalg

from repro.core.cloud_model import CloudSystemModel
from repro.core.parameters import CaseStudyParameters, DEFAULT_PARAMETERS
from repro.core.scenarios import DistributedScenario
from repro.exceptions import ConfigurationError
from repro.markov import solvers
from repro.metrics import AvailabilityResult
from repro.network.migration import MigrationPlanner
from repro.spn import solve_steady_state, with_transition_delays
from repro.spn.analysis import SteadyStateSolution
from repro.spn.ctmc_export import generator_matrix
from repro.spn.reachability import TangibleReachabilityGraph, generate_tangible_reachability_graph


@dataclass
class SweepEvaluation:
    """Availability of one scenario plus bookkeeping about how it was obtained."""

    scenario: DistributedScenario
    availability: AvailabilityResult
    number_of_states: int
    solve_seconds: float

    @property
    def nines(self) -> float:
        return self.availability.nines


@dataclass
class DistributedSweepRunner:
    """Shared-state-space evaluator for two-data-center scenarios.

    Attributes:
        parameters: case-study parameters used for the *structure* (component
            MTTF/MTTR, VM counts, threshold k).  Disaster mean time and
            migration delays are overridden per scenario.
        machines_per_datacenter: hot PMs per data center (2 in the paper).
        method: stationary solver passed to the CTMC layer.
        max_states: state-space limit for the one-off generation.
    """

    parameters: CaseStudyParameters = field(default_factory=lambda: DEFAULT_PARAMETERS)
    machines_per_datacenter: int = 2
    method: str = "auto"
    max_states: int = 500_000
    symmetry_reduction: bool = True
    _graph: Optional[TangibleReachabilityGraph] = field(default=None, repr=False)
    _reference_model: Optional[CloudSystemModel] = field(default=None, repr=False)
    _preconditioner: object = field(default=None, repr=False)
    _warm_start: Optional[np.ndarray] = field(default=None, repr=False)

    def reference_model(self) -> CloudSystemModel:
        """The model whose structure is shared by every scenario of the sweep."""
        if self._reference_model is None:
            from repro.core.scenarios import CITY_PAIRS

            first, second = CITY_PAIRS[0]
            scenario = DistributedScenario(first, second)
            base = self.parameters
            spec_model = scenario.build_model(base)
            if self.machines_per_datacenter != 2:
                from repro.core.datacenter import two_datacenter_spec

                spec = two_datacenter_spec(
                    first_location=first,
                    second_location=second,
                    backup_location=scenario.backup,
                    machines_per_datacenter=self.machines_per_datacenter,
                    vms_per_machine=base.vms_per_physical_machine,
                    required_running_vms=base.required_running_vms,
                )
                spec_model = CloudSystemModel(
                    spec=spec, parameters=base, alpha=scenario.alpha
                )
            self._reference_model = spec_model
        return self._reference_model

    def graph(self) -> TangibleReachabilityGraph:
        """Generate (once) and return the shared tangible reachability graph.

        With ``symmetry_reduction`` (the default) the graph is the exactly
        lumped CTMC obtained from the exchangeability of the PMs within each
        data center — the availability metric is symmetric under those
        permutations, so the lumping is exact for every sweep evaluation.
        """
        if self._graph is None:
            model = self.reference_model()
            canonicalize = (
                model.symmetry_canonicalizer() if self.symmetry_reduction else None
            )
            self._graph = generate_tangible_reachability_graph(
                model.build(), max_states=self.max_states, canonicalize=canonicalize
            )
        return self._graph

    def scenario_delays(self, scenario: DistributedScenario) -> dict[str, float]:
        """Transition delays (hours) that distinguish ``scenario`` from the reference."""
        planner = MigrationPlanner(
            vm_image_size=self.parameters.vm_image_size,
        )
        times = planner.migration_times(
            scenario.first, scenario.second, scenario.backup, scenario.alpha
        )
        disaster_hours = scenario.disaster_mean_time_years * 8760.0
        return {
            "DC_1_F": disaster_hours,
            "DC_2_F": disaster_hours,
            "TRE_12": times.datacenter_to_datacenter.hours,
            "TRE_21": times.datacenter_to_datacenter.hours,
            "TBE_12": times.backup_to_second.hours,
            "TBE_21": times.backup_to_first.hours,
        }

    def _solve(self, graph: TangibleReachabilityGraph) -> SteadyStateSolution:
        """Stationary solution of a (re-rated) graph.

        For small graphs this simply delegates to the generic solver.  For
        large graphs it uses ILU-preconditioned GMRES and — because the
        scenarios of a sweep differ only in a handful of rates — reuses the
        preconditioner and the previous solution as a warm start, which makes
        every solve after the first one much cheaper.
        """
        if graph.number_of_states <= 20_000:
            return solve_steady_state(graph, method=self.method)

        system, rhs = solvers.constrained_balance_system(generator_matrix(graph))
        for attempt in ("reuse", "rebuild"):
            if self._preconditioner is None or attempt == "rebuild":
                self._preconditioner = sparse_linalg.spilu(
                    system, drop_tol=1e-6, fill_factor=20.0
                )
            operator = sparse_linalg.LinearOperator(
                system.shape, self._preconditioner.solve
            )
            x0 = None
            if self._warm_start is not None and self._warm_start.shape == rhs.shape:
                x0 = self._warm_start
            solution, info = sparse_linalg.gmres(
                system, rhs, M=operator, x0=x0, rtol=1e-10, atol=0.0,
                restart=60, maxiter=2000,
            )
            if info == 0 and np.all(np.isfinite(solution)):
                probabilities = np.clip(solution, 0.0, None)
                probabilities /= probabilities.sum()
                self._warm_start = probabilities
                return SteadyStateSolution(graph=graph, probabilities=probabilities)
        # Preconditioned GMRES failed twice: fall back to the generic solver.
        return solve_steady_state(graph, method=self.method)

    def evaluate(self, scenario: DistributedScenario) -> SweepEvaluation:
        """Availability of one scenario, reusing the shared state space."""
        if scenario.disaster_mean_time_years <= 0.0:
            raise ConfigurationError("the disaster mean time must be positive")
        graph = self.graph()
        started = time.perf_counter()
        re_rated = with_transition_delays(graph, self.scenario_delays(scenario))
        solution = self._solve(re_rated)
        model = self.reference_model()
        value = solution.probability(model.availability_expression())
        elapsed = time.perf_counter() - started
        return SweepEvaluation(
            scenario=scenario,
            availability=AvailabilityResult(
                min(1.0, max(0.0, value)), label=scenario.label
            ),
            number_of_states=graph.number_of_states,
            solve_seconds=elapsed,
        )

    def evaluate_many(self, scenarios) -> list[SweepEvaluation]:
        """Evaluate a list of scenarios sharing this runner's structure."""
        return [self.evaluate(scenario) for scenario in scenarios]
