"""Disk-backed chunked-CSR representation of a tangible reachability graph.

The chunked representation stores the wave blocks of
:class:`repro.spn.reachability.WaveExploration` as they are produced — one
set of plain ``.npy`` files per BFS wave plus a JSON manifest — instead of
accumulating them into in-RAM arrays.  Because the blocks partition the
state space by source row and are finalized exactly like the global pass
(see :class:`~repro.spn.reachability.WaveBlock`), concatenating the chunks
reproduces the in-RAM :class:`~repro.spn.reachability.TangibleReachabilityGraph`
bit for bit; :meth:`ChunkedGraph.materialize` does exactly that and the
property tests assert it.

Chunks are uncompressed ``.npy`` files (one per array, not an ``.npz``
bundle) so consumers can stream or memory-map individual arrays without
decompressing a zip member.  Steady-state solves never load more than one
chunk at a time: :class:`~repro.engine.krylov.MatrixFreeSolver` drives a
``scipy.sparse.linalg.LinearOperator`` over :meth:`ChunkedGraph.edge_chunks`,
re-reading chunk files per matvec — the kernel page cache keeps the reads
cheap while the process heap stays one-chunk sized.

Integrity mirrors the ``.npz`` cache: every chunk's manifest record carries
a sha256 over the chunk's arrays (:mod:`repro.statespace.integrity`),
verified on load.  A corrupt chunk condemns the whole entry (the graph is
only meaningful as a unit), which the cache layer deletes and regenerates.
"""

from __future__ import annotations

import bisect
import json
import os
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

import numpy as np
from scipy import sparse

from repro.spn.enabling import CompiledNet
from repro.spn.model import StochasticPetriNet
from repro.spn.reachability import (
    DEFAULT_EXPLORATION_CHUNK,
    DEFAULT_MAX_TANGIBLE_MARKINGS,
    TangibleReachabilityGraph,
    WaveExploration,
)
from repro.statespace.integrity import payload_digest_hex

#: Bump when the chunk file layout or manifest schema changes.
CHUNK_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Arrays stored per chunk, one ``chunk-NNNNN.<field>.npy`` file each.
CHUNK_FIELDS = (
    "markings",
    "edge_sources",
    "edge_targets",
    "edge_rates",
    "ecm_data",
    "ecm_indices",
    "ecm_indptr",
    "scm_data",
    "scm_indices",
    "scm_indptr",
)


def _chunk_stem(index: int) -> str:
    return f"chunk-{index:05d}"


def chunk_file_name(index: int, field: str) -> str:
    return f"{_chunk_stem(index)}.{field}.npy"


@dataclass(frozen=True)
class ChunkInfo:
    """Manifest record of one stored wave chunk."""

    index: int
    row_start: int
    row_end: int
    edge_count: int
    digest: str

    @property
    def width(self) -> int:
        return self.row_end - self.row_start


class CorruptChunkError(ValueError):
    """A chunk file failed integrity verification (or is unreadable)."""

    def __init__(self, message: str, *, chunk_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.chunk_index = chunk_index


def _block_arrays(block) -> dict[str, np.ndarray]:
    """The persisted array dict of one wave block (digest + file payload)."""
    ecm = block.edge_coefficient_block
    scm = block.state_coefficient_block
    return {
        "markings": np.ascontiguousarray(block.markings, dtype=np.int64),
        "edge_sources": np.ascontiguousarray(block.edge_sources, dtype=np.int64),
        "edge_targets": np.ascontiguousarray(block.edge_targets, dtype=np.int64),
        "edge_rates": np.ascontiguousarray(block.edge_rates, dtype=np.float64),
        "ecm_data": np.ascontiguousarray(ecm.data, dtype=np.float64),
        "ecm_indices": np.ascontiguousarray(ecm.indices, dtype=np.int64),
        "ecm_indptr": np.ascontiguousarray(ecm.indptr, dtype=np.int64),
        "scm_data": np.ascontiguousarray(scm.data, dtype=np.float64),
        "scm_indices": np.ascontiguousarray(scm.indices, dtype=np.int64),
        "scm_indptr": np.ascontiguousarray(scm.indptr, dtype=np.int64),
    }


def write_chunked_graph(
    net: StochasticPetriNet | CompiledNet,
    directory: os.PathLike,
    *,
    max_states: int = DEFAULT_MAX_TANGIBLE_MARKINGS,
    canonicalize=None,
    chunk_size: int = DEFAULT_EXPLORATION_CHUNK,
) -> "ChunkedGraph":
    """Explore ``net`` and stream the graph into ``directory`` chunk by chunk.

    Peak memory is one wave plus the marking interner (states must still be
    deduplicated in RAM); the edge lists and coefficient matrices never
    accumulate.  The directory is created; callers wanting atomicity write
    into a temporary directory and rename (the cache layer does).

    Raises the same :class:`~repro.exceptions.StateSpaceError` /
    :class:`~repro.exceptions.ModelError` family as the in-RAM generator.
    Partially written chunk files of a failed exploration are left for the
    caller to discard with the temporary directory.
    """
    exploration = WaveExploration(net, max_states, canonicalize, chunk_size)
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    chunk_records = []
    edge_total = 0
    for index, block in enumerate(exploration.blocks()):
        arrays = _block_arrays(block)
        for field, array in arrays.items():
            np.save(target / chunk_file_name(index, field), array)
        edge_total += int(block.edge_sources.size)
        chunk_records.append(
            {
                "index": index,
                "row_start": int(block.row_start),
                "row_end": int(block.row_end),
                "edge_count": int(block.edge_sources.size),
                "digest": payload_digest_hex(arrays),
            }
        )
    compiled = exploration.compiled
    manifest = {
        "format": CHUNK_FORMAT_VERSION,
        "net_name": compiled.name,
        "place_names": list(compiled.place_names),
        "n_states": len(exploration.markings),
        "n_edges": edge_total,
        "n_timed": exploration.n_timed,
        "max_states": int(max_states),
        "chunk_size": int(exploration.chunk_size),
        "transition_names": list(exploration.transition_names),
        "rate_vector": [float(rate) for rate in exploration.nominal_rates],
        "initial_ids": [int(state) for state in exploration.initial_distribution],
        "initial_probabilities": [
            float(probability)
            for probability in exploration.initial_distribution.values()
        ],
        "chunks": chunk_records,
    }
    # fsync-before-rename discipline: the manifest is the commit record of
    # the entry, so it must not land before its chunk data is durable.
    temporary = target / (MANIFEST_NAME + ".tmp")
    with open(temporary, "w") as handle:
        json.dump(manifest, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, target / MANIFEST_NAME)
    return ChunkedGraph(target, manifest, net=compiled)


class _ChunkedMarkings(Sequence):
    """Lazy, read-only view of the marking list (one chunk resident at a time)."""

    def __init__(self, graph: "ChunkedGraph") -> None:
        self._graph = graph
        self._starts = [chunk.row_start for chunk in graph.chunks]
        self._cached_index: Optional[int] = None
        self._cached_rows: Optional[list] = None

    def __len__(self) -> int:
        return self._graph.number_of_states

    def __iter__(self) -> Iterator[tuple[int, ...]]:
        for chunk in self._graph.chunks:
            for row in self._graph.chunk_array(chunk.index, "markings").tolist():
                yield tuple(row)

    def _chunk_rows(self, index: int) -> list:
        if self._cached_index != index:
            self._cached_rows = self._graph.chunk_array(index, "markings").tolist()
            self._cached_index = index
        return self._cached_rows

    def __getitem__(self, state_id):
        if isinstance(state_id, slice):
            return [self[i] for i in range(*state_id.indices(len(self)))]
        if state_id < 0:
            state_id += len(self)
        if not 0 <= state_id < len(self):
            raise IndexError(state_id)
        position = bisect.bisect_right(self._starts, state_id) - 1
        chunk = self._graph.chunks[position]
        return tuple(self._chunk_rows(position)[state_id - chunk.row_start])


class ChunkedGraph:
    """Handle on a stored chunked tangible reachability graph.

    Carries the same scalar/provenance attributes as
    :class:`~repro.spn.reachability.TangibleReachabilityGraph`
    (``number_of_states``, ``transition_names``, ``transition_index``,
    ``rate_vector``, ``initial_distribution``, ``has_coefficients``) plus
    lazily materialised views (``markings``) and chunk-streaming accessors,
    so the measure and batch layers can treat the representation as a
    dispatch detail.  The full edge list and coefficient matrices stay on
    disk; the global CSR attributes are ``None`` and consumers use the
    streaming hooks instead.
    """

    representation = "chunked"
    has_coefficients = True
    #: Global CSRs intentionally absent — consumers stream chunks instead.
    edge_coefficient_matrix = None
    state_coefficient_matrix = None

    def __init__(
        self,
        directory: os.PathLike,
        manifest: dict,
        *,
        net: Optional[CompiledNet] = None,
        rate_vector: Optional[np.ndarray] = None,
    ) -> None:
        self.directory = Path(directory)
        self.manifest = manifest
        self.net = net
        self.number_of_states = int(manifest["n_states"])
        self.number_of_transitions = int(manifest["n_edges"])
        self.n_timed = int(manifest["n_timed"])
        self.transition_names = tuple(manifest["transition_names"])
        self.transition_index = {
            name: index for index, name in enumerate(self.transition_names)
        }
        self.rate_vector = (
            np.asarray(rate_vector, dtype=np.float64)
            if rate_vector is not None
            else np.asarray(manifest["rate_vector"], dtype=np.float64)
        )
        self.initial_distribution = {
            int(state): float(probability)
            for state, probability in zip(
                manifest["initial_ids"], manifest["initial_probabilities"]
            )
        }
        self.chunks = tuple(
            ChunkInfo(
                index=int(record["index"]),
                row_start=int(record["row_start"]),
                row_end=int(record["row_end"]),
                edge_count=int(record["edge_count"]),
                digest=str(record["digest"]),
            )
            for record in manifest["chunks"]
        )
        self.markings = _ChunkedMarkings(self)

    # --- opening ----------------------------------------------------------

    @classmethod
    def open(
        cls, directory: os.PathLike, net: Optional[CompiledNet] = None
    ) -> "ChunkedGraph":
        """Open a stored entry; raises ``ValueError`` on a broken manifest.

        Chunk payloads are *not* verified here (that would read every file);
        call :meth:`verify` — the cache layer does on every load.
        """
        directory = Path(directory)
        try:
            with open(directory / MANIFEST_NAME) as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"unreadable chunked-graph manifest: {error}") from error
        if manifest.get("format") != CHUNK_FORMAT_VERSION:
            raise ValueError(
                f"unsupported chunked-graph format {manifest.get('format')!r}"
            )
        if net is not None and list(net.place_names) != list(manifest["place_names"]):
            raise ValueError("stored marking layout does not match the net")
        return cls(directory, manifest, net=net)

    # --- chunk access ------------------------------------------------------

    def chunk_path(self, index: int, field: str) -> Path:
        return self.directory / chunk_file_name(index, field)

    def chunk_array(self, index: int, field: str) -> np.ndarray:
        """Load one array of one chunk (a plain heap read, dropped after use)."""
        return np.load(self.chunk_path(index, field), allow_pickle=False)

    def chunk_arrays(self, index: int) -> dict[str, np.ndarray]:
        return {field: self.chunk_array(index, field) for field in CHUNK_FIELDS}

    def chunk_ecm(self, index: int) -> sparse.csr_matrix:
        """The ``(T, E_c)`` edge-coefficient slice of chunk ``index``."""
        chunk = self.chunks[index]
        return sparse.csr_matrix(
            (
                self.chunk_array(index, "ecm_data"),
                self.chunk_array(index, "ecm_indices"),
                self.chunk_array(index, "ecm_indptr"),
            ),
            shape=(self.n_timed, chunk.edge_count),
        )

    def chunk_scm(self, index: int) -> sparse.csr_matrix:
        """The ``(T, W_c)`` state-coefficient slice of chunk ``index``."""
        chunk = self.chunks[index]
        return sparse.csr_matrix(
            (
                self.chunk_array(index, "scm_data"),
                self.chunk_array(index, "scm_indices"),
                self.chunk_array(index, "scm_indptr"),
            ),
            shape=(self.n_timed, chunk.width),
        )

    def edge_chunks(
        self, rate_vector: Optional[np.ndarray] = None
    ) -> Iterator[tuple[ChunkInfo, np.ndarray, np.ndarray, np.ndarray]]:
        """Stream ``(info, sources, targets, rates)`` per chunk.

        Edge rates are recomputed from the chunk's coefficient slice and the
        given (or current) rate vector — the full edge-rate vector is never
        materialised.
        """
        rates = (
            np.asarray(rate_vector, dtype=np.float64)
            if rate_vector is not None
            else self.rate_vector
        )
        for chunk in self.chunks:
            if chunk.edge_count == 0:
                continue
            sources = self.chunk_array(chunk.index, "edge_sources")
            targets = self.chunk_array(chunk.index, "edge_targets")
            edge_rates = self.chunk_ecm(chunk.index).T.dot(rates)
            yield chunk, sources, targets, np.asarray(edge_rates).ravel()

    # --- graph-contract operations ----------------------------------------

    def with_rate_vector(self, rate_vector: np.ndarray) -> "ChunkedGraph":
        """A re-rated handle sharing this graph's on-disk structure (O(T))."""
        return ChunkedGraph(
            self.directory, self.manifest, net=self.net, rate_vector=rate_vector
        )

    def exit_rates(self, rate_vector: Optional[np.ndarray] = None) -> np.ndarray:
        """Total outgoing rate of every state, accumulated chunk by chunk."""
        total = np.zeros(self.number_of_states)
        for _, sources, _, rates in self.edge_chunks(rate_vector):
            total += np.bincount(
                sources, weights=rates, minlength=self.number_of_states
            )
        return total

    def throughput_degree_column(self, index: int) -> np.ndarray:
        """Dense per-state enabling degree of one timed transition.

        The chunked counterpart of reading one row of the in-RAM state
        coefficient matrix — the measure layer's evaluation hook.
        """
        column = np.zeros(self.number_of_states)
        for chunk in self.chunks:
            row = self.chunk_scm(chunk.index).getrow(index)
            column[row.indices + chunk.row_start] = row.data
        return column

    def throughput_vector(self, transition_name: str) -> np.ndarray:
        """Dense per-state effective firing rate of one timed transition."""
        index = self.transition_index.get(transition_name)
        if index is None:
            raise KeyError(transition_name)
        return self.throughput_degree_column(index) * self.rate_vector[index]

    def marking_view(self, state_id: int):
        from repro.spn.marking import MarkingView

        if self.net is None:
            raise ValueError("this chunked graph was opened without its net")
        return MarkingView(self.markings[state_id], self.net.place_index)

    # --- integrity ----------------------------------------------------------

    def verify_chunk(self, index: int) -> None:
        """Recompute one chunk's digest; raise :class:`CorruptChunkError` on
        mismatch or unreadable files."""
        try:
            arrays = self.chunk_arrays(index)
        except (OSError, ValueError) as error:
            raise CorruptChunkError(
                f"chunk {index} of {self.directory} is unreadable: {error}",
                chunk_index=index,
            ) from error
        if payload_digest_hex(arrays) != self.chunks[index].digest:
            raise CorruptChunkError(
                f"chunk {index} of {self.directory} failed integrity "
                "verification",
                chunk_index=index,
            )

    def verify(self) -> None:
        """Verify every chunk, streaming one at a time."""
        for chunk in self.chunks:
            self.verify_chunk(chunk.index)

    # --- maintenance ---------------------------------------------------------

    def on_disk_bytes(self) -> int:
        """Total bytes of the manifest and every chunk file."""
        total = 0
        for path in self.directory.iterdir():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # --- materialisation ----------------------------------------------------

    def materialize(self) -> TangibleReachabilityGraph:
        """Concatenate every chunk into the in-RAM representation.

        Bitwise identical to generating the graph in RAM directly (the
        chunks *are* the finalized wave blocks of the in-RAM construction);
        intended for tests and for small graphs that were stored chunked.
        """
        if self.net is None:
            raise ValueError("this chunked graph was opened without its net")
        sources = []
        targets = []
        rates = []
        ecm_blocks = []
        scm_blocks = []
        markings: list[tuple[int, ...]] = []
        for chunk in self.chunks:
            sources.append(self.chunk_array(chunk.index, "edge_sources"))
            targets.append(self.chunk_array(chunk.index, "edge_targets"))
            rates.append(self.chunk_array(chunk.index, "edge_rates"))
            ecm_blocks.append(self.chunk_ecm(chunk.index))
            scm_blocks.append(self.chunk_scm(chunk.index))
            markings.extend(
                tuple(row) for row in self.chunk_array(chunk.index, "markings").tolist()
            )

        def _concat(blocks, dtype):
            if not blocks:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(blocks).astype(dtype, copy=False)

        if ecm_blocks:
            edge_coefficient_matrix = sparse.hstack(ecm_blocks, format="csr")
            state_coefficient_matrix = sparse.hstack(scm_blocks, format="csr")
        else:  # pragma: no cover - an entry always has at least one chunk
            edge_coefficient_matrix = sparse.csr_matrix(
                (self.n_timed, 0), dtype=np.float64
            )
            state_coefficient_matrix = sparse.csr_matrix(
                (self.n_timed, self.number_of_states), dtype=np.float64
            )
        return TangibleReachabilityGraph(
            net=self.net,
            markings=markings,
            initial_distribution=dict(self.initial_distribution),
            edge_sources=_concat(sources, np.int64),
            edge_targets=_concat(targets, np.int64),
            edge_rates=_concat(rates, np.float64),
            transition_names=self.transition_names,
            rate_vector=self.rate_vector.copy(),
            edge_coefficient_matrix=edge_coefficient_matrix,
            state_coefficient_matrix=state_coefficient_matrix,
        )
