"""Pluggable state-space representations (the "backend tier").

The engine dispatches each state space to a representation instead of
assuming one:

* :mod:`repro.statespace.backends` — the :class:`StateSpaceBackend`
  contract and representation helpers;
* :mod:`repro.statespace.chunked` — the disk-backed chunked-CSR graph
  (streamed generation, matrix-free solves, one chunk resident at a time);
* :mod:`repro.statespace.symbolic` — the optional BDD reachable-set
  counter (sizing only, needs the ``dd`` package);
* :mod:`repro.statespace.integrity` — payload digests shared with the
  ``.npz`` cache entries.
"""

from repro.statespace.backends import (
    REPRESENTATIONS,
    StateSpaceBackend,
    is_chunked,
    is_state_space,
    representation_of,
)
from repro.statespace.chunked import (
    CHUNK_FORMAT_VERSION,
    ChunkedGraph,
    ChunkInfo,
    CorruptChunkError,
    MANIFEST_NAME,
    write_chunked_graph,
)
from repro.statespace.integrity import DIGEST_ARRAY, payload_digest, payload_digest_hex
from repro.statespace.symbolic import (
    SymbolicSizing,
    SymbolicUnavailable,
    count_reachable_markings,
    symbolic_available,
    unavailable_reason,
)

__all__ = [
    "REPRESENTATIONS",
    "StateSpaceBackend",
    "is_chunked",
    "is_state_space",
    "representation_of",
    "CHUNK_FORMAT_VERSION",
    "ChunkedGraph",
    "ChunkInfo",
    "CorruptChunkError",
    "MANIFEST_NAME",
    "write_chunked_graph",
    "DIGEST_ARRAY",
    "payload_digest",
    "payload_digest_hex",
    "SymbolicSizing",
    "SymbolicUnavailable",
    "count_reachable_markings",
    "symbolic_available",
    "unavailable_reason",
]
