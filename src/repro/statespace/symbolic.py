"""Optional BDD-based reachable-set sizing (no explicit generation).

The Petri-net escape hatch for state spaces too large to enumerate: encode
markings as boolean vectors, transitions as BDD relations, and compute the
reachable set as a fixed point of symbolic image steps.  The *count* of
reachable markings then comes out of the BDD's model counter without any
marking ever being materialised — which is exactly what the memory planner
wants to know before committing to explicit generation.

This backend is **sizing only** and **optional**: it needs the ``dd``
package, which this project does not depend on.  :func:`symbolic_available`
reports whether it can run; every entry point raises
:class:`SymbolicUnavailable` with an honest explanation otherwise (the
planner and CLI surface that message instead of pretending a count exists).

Caveats (also surfaced in the README):

* The count covers **all** reachable markings — tangible *and* vanishing —
  so it is an upper bound on the tangible CTMC size the explicit backends
  report.
* Each place is binary-encoded up to a token bound.  The default bound
  (total initial tokens) is safe for conservative nets; if any transition
  could push a place past its bound from a reachable marking, the result is
  flagged ``saturated`` and the count is a lower bound instead.
* Guarded transitions are not expressible as pure token-interval relations;
  nets with guards are refused rather than sized wrongly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

from repro.exceptions import AnalysisError
from repro.spn.enabling import CompiledNet
from repro.spn.model import StochasticPetriNet

try:  # pragma: no cover - exercised only where ``dd`` is installed
    from dd import autoref as _dd_autoref
except ImportError:  # pragma: no cover - the common case in this project
    _dd_autoref = None


class SymbolicUnavailable(AnalysisError):
    """The symbolic sizing backend cannot run (missing ``dd`` or unsupported net)."""


def symbolic_available() -> bool:
    """Whether the optional ``dd`` package is importable."""
    return _dd_autoref is not None


def unavailable_reason() -> Optional[str]:
    """Human-readable reason the sizer cannot run, or ``None`` if it can."""
    if _dd_autoref is None:
        return (
            "symbolic sizing needs the optional 'dd' package (pip install dd); "
            "it is not installed in this environment"
        )
    return None


@dataclass(frozen=True)
class SymbolicSizing:
    """Result of one symbolic reachability count.

    ``reachable_markings`` counts every reachable marking (tangible and
    vanishing) within the per-place token bounds; ``saturated`` flags that
    some reachable marking could fire past a bound, making the count a lower
    bound of the unbounded reachable set.
    """

    reachable_markings: int
    iterations: int
    place_bounds: tuple[int, ...]
    saturated: bool

    @property
    def exact(self) -> bool:
        return not self.saturated


def _resolve_bounds(
    compiled: CompiledNet, place_bound: Union[int, Mapping[str, int], None]
) -> list[int]:
    if isinstance(place_bound, int):
        return [max(1, place_bound)] * len(compiled.place_names)
    default = max(1, sum(compiled.initial_marking))
    bounds = [default] * len(compiled.place_names)
    if place_bound is not None:
        for name, bound in place_bound.items():
            bounds[compiled.place_index[name]] = max(1, int(bound))
    for index, tokens in enumerate(compiled.initial_marking):
        bounds[index] = max(bounds[index], tokens)
    return bounds


def count_reachable_markings(
    net: StochasticPetriNet | CompiledNet,
    place_bound: Union[int, Mapping[str, int], None] = None,
    max_iterations: int = 100_000,
) -> SymbolicSizing:
    """Count the reachable markings of ``net`` symbolically.

    Args:
        net: the net to size (a declarative net is compiled first).
        place_bound: per-place token capacity used for the binary encoding —
            one int for all places, a ``{place_name: bound}`` mapping, or
            ``None`` for the conservative default (total initial tokens).
        max_iterations: fixed-point iteration cap (one iteration per BFS
            level of the reachability graph).

    Raises:
        SymbolicUnavailable: when ``dd`` is missing or the net carries
            guards (not expressible as token-interval relations).
    """
    reason = unavailable_reason()
    if reason is not None:
        raise SymbolicUnavailable(reason)
    compiled = net if isinstance(net, CompiledNet) else CompiledNet(net)
    if any(t.guard is not None for t in compiled.transitions):
        raise SymbolicUnavailable(
            f"net {compiled.name!r} carries guard expressions; the symbolic "
            "sizer only supports plain input/output/inhibitor arcs"
        )

    bounds = _resolve_bounds(compiled, place_bound)
    n_places = len(compiled.place_names)
    bits = [max(1, int(bound).bit_length()) for bound in bounds]

    bdd = _dd_autoref.BDD()
    current_vars: list[list[str]] = []
    next_vars: list[list[str]] = []
    for place in range(n_places):
        cur = [f"x{place}_{bit}" for bit in range(bits[place])]
        nxt = [f"y{place}_{bit}" for bit in range(bits[place])]
        # Interleaved declaration order keeps related bits adjacent, which
        # is the standard variable-order heuristic for transition relations.
        for cur_bit, nxt_bit in zip(cur, nxt):
            bdd.declare(cur_bit)
            bdd.declare(nxt_bit)
        current_vars.append(cur)
        next_vars.append(nxt)

    def equals(variables: list[str], value: int):
        cube = bdd.true
        for bit, name in enumerate(variables):
            literal = bdd.var(name)
            if not (value >> bit) & 1:
                literal = ~literal
            cube &= literal
        return cube

    def value_set(place: int, values) -> object:
        union = bdd.false
        for value in values:
            union |= equals(current_vars[place], value)
        return union

    rename = {
        nxt: cur
        for place in range(n_places)
        for nxt, cur in zip(next_vars[place], current_vars[place])
    }
    all_current = [name for group in current_vars for name in group]

    # Per-transition relation T(x, y) = enabled(x) ∧ Π_p (y_p = x_p + δ_p),
    # built by explicit enumeration of the (small) per-place token ranges.
    relations = []
    overflow_any = bdd.false
    for transition in compiled.transitions:
        delta = [0] * n_places
        lower = [0] * n_places
        for place, multiplicity in transition.inputs:
            delta[place] -= multiplicity
            lower[place] = max(lower[place], multiplicity)
        for place, multiplicity in transition.outputs:
            delta[place] += multiplicity
        enabled = bdd.true
        for place, multiplicity in transition.inhibitors:
            enabled &= value_set(
                place, range(0, min(multiplicity, bounds[place] + 1))
            )
        for place in range(n_places):
            if lower[place] > 0:
                enabled &= value_set(place, range(lower[place], bounds[place] + 1))
        relation = enabled
        for place in range(n_places):
            moves = bdd.false
            for value in range(0, bounds[place] + 1):
                successor = value + delta[place]
                if 0 <= successor <= bounds[place]:
                    moves |= equals(current_vars[place], value) & equals(
                        next_vars[place], successor
                    )
            relation &= moves
        relations.append(relation)
        # Enabled firings whose output would exceed a bound: if any reachable
        # marking admits one, the count is a lower bound (flagged honestly).
        for place in range(n_places):
            if delta[place] > 0:
                high = range(
                    max(0, bounds[place] - delta[place] + 1), bounds[place] + 1
                )
                overflow_any |= enabled & value_set(place, high)

    for place, tokens in enumerate(compiled.initial_marking):
        if tokens > bounds[place]:  # pragma: no cover - bounds include initial
            raise SymbolicUnavailable(
                f"initial marking of place {compiled.place_names[place]!r} "
                f"exceeds its token bound {bounds[place]}"
            )
    reachable = bdd.true
    for place, tokens in enumerate(compiled.initial_marking):
        reachable &= equals(current_vars[place], tokens)

    iterations = 0
    frontier = reachable
    while frontier != bdd.false:
        iterations += 1
        if iterations > max_iterations:
            raise AnalysisError(
                f"symbolic reachability did not reach a fixed point within "
                f"{max_iterations} iterations"
            )
        image = bdd.false
        for relation in relations:
            step = bdd.exist(all_current, frontier & relation)
            image |= bdd.let(rename, step)
        frontier = image & ~reachable
        reachable |= frontier

    saturated = (reachable & overflow_any) != bdd.false
    # Count satisfying assignments over the *current* variables only; each
    # reachable marking is exactly one assignment (the encoding is injective
    # within the bounds).
    count = int(bdd.count(reachable, nvars=len(all_current)))
    return SymbolicSizing(
        reachable_markings=count,
        iterations=iterations,
        place_bounds=tuple(bounds),
        saturated=bool(saturated),
    )
