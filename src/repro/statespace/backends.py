"""The state-space backend contract and the representation registry.

Historically every layer of the engine assumed one representation — a fully
materialised in-RAM :class:`~repro.spn.reachability.TangibleReachabilityGraph`.
This module names the implicit contract those layers actually rely on
(:class:`StateSpaceBackend`) so the representation becomes a dispatch
decision: the in-RAM CSR graph and the disk-backed
:class:`~repro.statespace.chunked.ChunkedGraph` both satisfy it, and
consumers branch on :func:`representation_of` instead of ``isinstance``
checks against one concrete class.

Representations
    ``in_ram``
        Everything resident: edge arrays, coefficient CSRs, markings.
        Fastest solves (direct/ILU factorisations); peak memory grows with
        states × fill.
    ``chunked``
        On-disk chunk files, streamed per wave; solves are matrix-free
        Krylov over a :class:`scipy.sparse.linalg.LinearOperator`.  Peak
        memory stays one-chunk sized (plus dense state-length vectors).
    ``symbolic``
        Sizing only (:mod:`repro.statespace.symbolic`): a BDD reachable-set
        counter that reports state counts without explicit generation.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.spn.reachability import TangibleReachabilityGraph
from repro.statespace.chunked import ChunkedGraph

#: Representations a graph value can carry (``symbolic`` sizes, never holds).
REPRESENTATIONS = ("in_ram", "chunked")


@runtime_checkable
class StateSpaceBackend(Protocol):
    """What every layer of the engine may assume about a state-space value.

    The contract is extracted verbatim from the call sites that previously
    hard-assumed :class:`TangibleReachabilityGraph`:

    * shape: ``number_of_states``, ``transition_names``,
      ``transition_index``, ``has_coefficients``;
    * rating: ``rate_vector`` plus ``with_rate_vector`` returning a re-rated
      value sharing structure;
    * the CTMC as an operator: ``exit_rates()`` and either global edge
      arrays (in-RAM) or streamed ``edge_chunks`` (chunked) — the solver
      layers dispatch on :func:`representation_of`;
    * measure-evaluation hooks: ``markings`` (a sequence of marking tuples)
      and per-transition degree access (``state_coefficient_matrix`` rows or
      the ``throughput_degree_column`` streaming hook), plus
      ``throughput_vector`` / ``marking_view`` for scalar fallbacks;
    * provenance: ``initial_distribution`` for transient analyses.
    """

    net: object
    markings: object
    initial_distribution: dict[int, float]
    transition_names: tuple[str, ...]
    transition_index: dict[str, int]
    rate_vector: np.ndarray

    @property
    def number_of_states(self) -> int: ...

    @property
    def has_coefficients(self) -> bool: ...

    def with_rate_vector(self, rate_vector: np.ndarray) -> "StateSpaceBackend": ...

    def exit_rates(self) -> np.ndarray: ...

    def throughput_vector(self, transition_name: str) -> np.ndarray: ...


def representation_of(graph) -> str:
    """The representation tag of a graph value (``in_ram`` / ``chunked``)."""
    return getattr(graph, "representation", "in_ram")


def is_chunked(graph) -> bool:
    return isinstance(graph, ChunkedGraph)


def is_state_space(graph) -> bool:
    """Whether ``graph`` is any supported state-space value."""
    return isinstance(graph, (TangibleReachabilityGraph, ChunkedGraph))


def iter_backend_classes() -> Iterable[type]:
    return (TangibleReachabilityGraph, ChunkedGraph)
