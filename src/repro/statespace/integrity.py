"""Content digests shared by every persisted state-space representation.

Both the single-file ``.npz`` cache entries (:mod:`repro.engine.cache`) and
the multi-file chunked entries (:mod:`repro.statespace.chunked`) carry a
sha256 digest over their logical array payload, recomputed and verified on
load.  The digest lives here — below both layers — so the chunked writer
does not need to import the engine package.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Name of the embedded integrity-digest array (excluded from the digest).
DIGEST_ARRAY = "payload_sha256"


def payload_digest(arrays: dict) -> np.ndarray:
    """sha256 over the logical payload of one entry's array dict.

    Hashes array names, dtypes, shapes and raw bytes (in name order), so any
    single-bit corruption of the stored data — including a dtype or shape
    rewrite that would survive a zip CRC — fails verification.  Returned
    as a 32-byte ``uint8`` array so it can ride inside an ``.npz`` itself.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == DIGEST_ARRAY:
            continue
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(array.dtype.str.encode())
        digest.update(repr(tuple(array.shape)).encode())
        digest.update(array.tobytes())
    return np.frombuffer(digest.digest(), dtype=np.uint8).copy()


def payload_digest_hex(arrays: dict) -> str:
    """Hex form of :func:`payload_digest` (for JSON manifests)."""
    return bytes(payload_digest(arrays)).hex()
