"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so that callers can catch a
single base class.  Subpackages raise the most specific subclass that applies;
``ValueError``/``TypeError`` are still used for plain argument-validation
mistakes that do not carry domain meaning.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ModelError(ReproError):
    """A model definition is structurally invalid (bad arc, unknown place...)."""


class ExpressionError(ReproError):
    """A guard or measure expression could not be parsed or evaluated."""


class AnalysisError(ReproError):
    """A numerical analysis failed (singular system, no convergence...)."""


class StateSpaceError(AnalysisError):
    """The reachability graph could not be generated.

    Typical causes: unbounded nets, immediate-transition loops (time traps) or
    exceeding the configured maximum number of states.
    """


class SimulationError(ReproError):
    """A discrete-event simulation run could not be carried out."""


class ConfigurationError(ReproError):
    """A scenario / case-study configuration is inconsistent."""
