"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so that callers can catch a
single base class.  Subpackages raise the most specific subclass that applies;
``ValueError``/``TypeError`` are still used for plain argument-validation
mistakes that do not carry domain meaning.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ModelError(ReproError):
    """A model definition is structurally invalid (bad arc, unknown place...)."""


class ExpressionError(ReproError):
    """A guard or measure expression could not be parsed or evaluated."""


class AnalysisError(ReproError):
    """A numerical analysis failed (singular system, no convergence...)."""


class StateSpaceError(AnalysisError):
    """The reachability graph could not be generated.

    Typical causes: unbounded nets, immediate-transition loops (time traps) or
    exceeding the configured maximum number of states.
    """


class StateSpaceLimitError(StateSpaceError):
    """The exploration hit its ``max_states`` ceiling.

    Carries enough context for callers (and error messages) to size the
    model honestly: how far the exploration got, and — when the wave growth
    supports an extrapolation — roughly how large the full state space would
    be.  ``projected_states`` is ``None`` when no reliable projection exists.
    """

    def __init__(
        self,
        message: str,
        *,
        max_states: int | None = None,
        states_explored: int | None = None,
        waves_explored: int | None = None,
        projected_states: int | None = None,
    ) -> None:
        super().__init__(message)
        self.max_states = max_states
        self.states_explored = states_explored
        self.waves_explored = waves_explored
        self.projected_states = projected_states


class SimulationError(ReproError):
    """A discrete-event simulation run could not be carried out."""


class ConfigurationError(ReproError):
    """A scenario / case-study configuration is inconsistent."""
