"""Availability-as-a-service: a crash-safe daemon in front of the grid.

``repro.service`` puts a long-running, overload-tolerant HTTP daemon in
front of :class:`~repro.engine.grid.ScenarioGridOrchestrator`, holding the
service itself to the dependability standard of the paper it reproduces:

* :mod:`repro.service.spec` — the submission vocabulary: a
  :class:`GridSpec` names the grid axes (city sets, α, disaster years,
  machines, ``l``, backup, topology, the availability threshold ``k``) and
  hashes canonically into the idempotency digest; :class:`JobOptions`
  carries the knobs that do *not* change results (workers, backend,
  deadline, retries).
* :mod:`repro.service.jobstore` — the durable write-ahead job store: every
  job transition is journaled to ``journal.jsonl`` and **fsync'd before it
  is acknowledged**; atomic-rename snapshots (``jobs-snapshot.json``)
  compact the journal, and recovery replays snapshot + journal leniently.
* :mod:`repro.service.queue` — the bounded admission queue: a full queue
  refuses new work (HTTP 429 + ``Retry-After``) instead of letting it
  starve the jobs already admitted.
* :mod:`repro.service.app` — :class:`AvailabilityService` wires the store,
  the queue and one orchestrator worker together: idempotent resubmission
  by grid digest, per-job checkpoint directories (a ``kill -9`` mid-solve
  resumes bit-identically on restart), per-job deadlines and cancellation,
  graceful SIGTERM drain.
* :mod:`repro.service.api` — the stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /v1/grids``, ``GET /v1/jobs/<id>``, streamed JSONL results,
  ``/healthz`` + ``/readyz``, cancel).
* :mod:`repro.service.client` — a small ``urllib`` client used by
  ``repro submit`` / ``repro jobs``, tests and the chaos drills.
"""

from repro.service.app import AvailabilityService, ServiceConfig
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobstore import (
    JobRecord,
    JobStore,
    OPEN_STATES,
    TERMINAL_STATES,
)
from repro.service.queue import AdmissionQueue, QueueFullError
from repro.service.spec import DEFAULT_PORT, GridSpec, JobOptions, SpecError

__all__ = [
    "AdmissionQueue",
    "AvailabilityService",
    "DEFAULT_PORT",
    "GridSpec",
    "JobOptions",
    "JobRecord",
    "JobStore",
    "OPEN_STATES",
    "QueueFullError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SpecError",
    "TERMINAL_STATES",
]
