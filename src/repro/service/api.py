"""Stdlib HTTP JSON API of the availability service.

Routes (all JSON unless noted):

========  ==============================  ======================================
Method    Path                            Semantics
========  ==============================  ======================================
GET       ``/healthz``                    liveness + job/queue/recovery counters
GET       ``/readyz``                     200 admitting / 503 draining
POST      ``/v1/grids``                   submit a grid (202 created, 200
                                          deduplicated, 400 invalid, 429 full
                                          + ``Retry-After``, 503 store down or
                                          draining)
GET       ``/v1/jobs``                    all jobs, newest first
GET       ``/v1/jobs/<id>``               one job record + per-group provenance
GET       ``/v1/jobs/<id>/results``       the job's checkpoint shards streamed
                                          as ``application/x-ndjson`` (header
                                          ``X-Job-State`` carries the state, so
                                          a client can tell partial streams)
POST      ``/v1/jobs/<id>/cancel``        cancel queued (200) or interrupt
                                          running (202); 409 once terminal
========  ==============================  ======================================

Built on :class:`http.server.ThreadingHTTPServer` — the service must not
pull in a web framework the reproduction does not otherwise need.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service instance for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service):
        super().__init__(address, ServiceRequestHandler)
        self.service = service


def build_server(service, host: str, port: int) -> ServiceHTTPServer:
    return ServiceHTTPServer((host, port), service)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-availability/1"

    # The default handler logs every request to stderr; route through the
    # service's log callback (usually silent in tests) instead.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        service = getattr(self.server, "service", None)
        if service is not None:
            service._log("[http] " + format % args)

    # --- plumbing -----------------------------------------------------------

    def _send_json(self, status: int, body: dict, extra_headers=()) -> None:
        payload = (json.dumps(body, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "request body too large"})
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            self._send_json(400, {"error": f"request body is not valid JSON: {error}"})
            return None

    @property
    def service(self):
        return self.server.service

    def _job_or_404(self, job_id: str):
        job = self.service.store.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"no job {job_id!r}"})
        return job

    # --- verbs --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, self.service.health_payload())
            return
        if path == "/readyz":
            if self.service.draining:
                self._send_json(
                    503, {"ready": False, "reason": "draining"},
                    extra_headers=[("Retry-After", "30")],
                )
            else:
                self._send_json(200, {"ready": True})
            return
        if path == "/v1/jobs":
            self._send_json(200, self.service.jobs_payload())
            return
        parts = path.strip("/").split("/")
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self._job_or_404(parts[2])
            if job is not None:
                self._send_json(200, {"job": self.service.job_payload(job)})
            return
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "results"
        ):
            job = self._job_or_404(parts[2])
            if job is not None:
                self._stream_results(job)
            return
        self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/v1/grids":
            body = self._read_body()
            if body is None:
                return
            status, payload = self.service.submit(body)
            headers = []
            if "retry_after" in payload:
                headers.append(("Retry-After", f"{payload['retry_after']:g}"))
            self._send_json(status, payload, extra_headers=headers)
            return
        parts = path.strip("/").split("/")
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "cancel"
        ):
            status, payload = self.service.cancel(parts[2])
            self._send_json(status, payload)
            return
        self._send_json(404, {"error": f"no route {self.path!r}"})

    # --- results streaming --------------------------------------------------

    def _stream_results(self, job) -> None:
        """Stream the job's shards as newline-delimited JSON.

        Shards are read in order and concatenated verbatim — each line is one
        completed case record, exactly as checkpointed.  The body is
        chunk-encoded so arbitrarily large grids never materialise in one
        buffer; ``X-Job-State`` lets the caller distinguish the final frame
        of a ``done`` job from the progress of a still-``running`` one.
        """
        paths = self.service.results_paths(job.id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("X-Job-State", job.state)
        self.send_header("X-Shard-Count", str(len(paths)))
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(data: bytes) -> None:
            if data:
                self.wfile.write(f"{len(data):X}\r\n".encode() + data + b"\r\n")

        for path in paths:
            try:
                text = path.read_text()
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if line:
                    chunk(line.encode() + b"\n")
        self.wfile.write(b"0\r\n\r\n")
