"""The availability service: store + queue + one orchestrator worker.

:class:`AvailabilityService` is the process behind ``repro serve``.  It
wires together the durable :class:`~repro.service.jobstore.JobStore`, the
bounded :class:`~repro.service.queue.AdmissionQueue` and a single worker
thread that drains jobs through
:func:`~repro.casestudy.grid.evaluate_grid` (one job at a time — a grid
parallelizes *internally* across the persistent process pool, so running
jobs concurrently would only fight over the same workers).

Dependability contract:

* **Acknowledgment is durable.**  ``submit`` journals the job (fsync) before
  answering 202; a crash after the ack can lose the process but not the job.
* **Crash recovery is resumption.**  Each job's shard directory doubles as
  its checkpoint.  On start, jobs found ``running`` are re-queued at the
  front and re-attached with ``resume=True`` — completed cases restore
  bit-identically from the shards, only the remainder is re-solved.
* **Overload is refused, not absorbed.**  A full admission queue answers
  429 + ``Retry-After``; in-flight jobs keep their workers.
* **Shutdown is a drain.**  SIGTERM stops admission (``/readyz`` turns 503),
  interrupts the running job at the next group boundary, re-queues it
  (checkpoint intact, it has not failed) and exits 0 once the store is
  snapshotted.

Fault sites :data:`~repro.engine.faults.SERVICE_HANDLE_SUBMIT` and
:data:`~repro.engine.faults.SERVICE_RUN_JOB` fire here, so chaos plans can
exercise the 503/retry/quarantine paths deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.engine import faults
from repro.engine.faults import InjectedFaultError, RetryPolicy
from repro.service.jobstore import (
    DEFAULT_SNAPSHOT_EVERY,
    JobRecord,
    JobStore,
    OPEN_STATES,
    TERMINAL_STATES,
)
from repro.service.queue import AdmissionQueue, QueueFullError, DEFAULT_DEPTH
from repro.service.spec import GridSpec, JobOptions, SpecError
from repro.spn.reachability import DEFAULT_MAX_TANGIBLE_MARKINGS


@dataclass
class ServiceConfig:
    """Operational knobs of one ``repro serve`` process."""

    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is printed/returned)
    queue_depth: int = DEFAULT_DEPTH
    jobs: Optional[int] = None
    backend: str = "auto"
    use_cache: bool = True
    cache_dir: Optional[str] = None
    shard_size: int = 1
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    default_deadline_seconds: Optional[float] = None
    log_callback: Optional[Callable[[str], None]] = None


class AvailabilityService:
    """Crash-safe job execution in front of the scenario-grid orchestrator."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store = JobStore(
            Path(config.state_dir), snapshot_every=config.snapshot_every
        )
        self.queue = AdmissionQueue(config.queue_depth)
        self.server = None
        self._server_thread: Optional[threading.Thread] = None
        self._worker_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._submit_lock = threading.Lock()
        self._running_lock = threading.Lock()
        self._running_job: Optional[str] = None
        self._cancel_events: dict[str, threading.Event] = {}
        self._deadline_hits: set[str] = set()
        self._idle = threading.Event()
        self._idle.set()
        self._recover()

    def _log(self, message: str) -> None:
        if self.config.log_callback is not None:
            self.config.log_callback(message)

    # --- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Re-admit every open job the journal acknowledged before a crash.

        ``running`` jobs go back to ``queued`` at the *front* (their
        checkpoints make the re-run cheap and they were admitted first);
        recovery bypasses the depth check — these jobs were already
        acknowledged, refusing them now would break the durability promise.
        """
        queued = [job for job in self.store.all() if job.state == "queued"]
        interrupted = [job for job in self.store.all() if job.state == "running"]
        for job in sorted(queued, key=lambda item: item.submitted_at):
            self.queue.force(job.id)
        for job in sorted(
            interrupted, key=lambda item: item.submitted_at, reverse=True
        ):
            self.store.transition(job.id, "queued", error=None)
            self.queue.force(job.id, front=True)
            self._log(
                f"[service] recovered interrupted job {job.id} "
                f"(attempt {job.attempts} was cut short; checkpoint kept)"
            )
        if queued or interrupted:
            self._log(
                f"[service] recovery re-admitted {len(queued)} queued and "
                f"{len(interrupted)} interrupted job(s)"
            )

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Bind the HTTP server and start its thread plus the worker."""
        from repro.service.api import build_server

        self.server = build_server(self, self.config.host, self.config.port)
        host, port = self.server.server_address[:2]
        self._server_thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        self._server_thread.start()
        self._worker_thread = threading.Thread(
            target=self._worker_loop, name="repro-service-worker", daemon=True
        )
        self._worker_thread.start()
        self._log(f"[service] listening on http://{host}:{port}")
        return host, port

    @property
    def address(self) -> Optional[tuple[str, int]]:
        if self.server is None:
            return None
        return self.server.server_address[:2]

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def request_drain(self) -> None:
        """Stop admitting; interrupt the running job at a group boundary."""
        if self._draining.is_set():
            return
        self._draining.set()
        self._log("[service] drain requested: admission closed")
        with self._running_lock:
            running = self._running_job
            event = self._cancel_events.get(running) if running else None
        if event is not None:
            event.set()

    def drain_and_stop(self, timeout: Optional[float] = None) -> None:
        """Graceful SIGTERM path: drain, persist, stop — then exit 0."""
        self.request_drain()
        self._stopping.set()
        self.queue.close()
        if self._worker_thread is not None:
            self._worker_thread.join(timeout=timeout)
        self.stop()

    def stop(self) -> None:
        """Tear down threads and leave a compacted, durable store behind."""
        self._stopping.set()
        self.queue.close()
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()
        if self._worker_thread is not None and self._worker_thread.is_alive():
            self._worker_thread.join(timeout=5.0)
        self.store.snapshot()
        self.store.close()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or leased (tests and drills)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.queue.open_count() > 0 or not self._idle.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.05)
        return True

    # --- submission ---------------------------------------------------------

    def submit(self, payload: dict) -> tuple[int, dict]:
        """Handle ``POST /v1/grids``; returns ``(http_status, body)``.

        The 202 acknowledgment is only produced after the job record is
        fsync'd into the journal — between admission-queue reservation and
        the ack there is no window in which an accepted job can be lost.
        """
        try:
            faults.perturb(faults.SERVICE_HANDLE_SUBMIT)
        except InjectedFaultError as error:
            return 503, {"error": str(error), "retry_after": 1.0}
        if not isinstance(payload, dict):
            return 400, {"error": "submission must be a JSON object"}
        unknown = sorted(set(map(str, payload)) - {"grid", "options"})
        if unknown:
            return 400, {
                "error": f"submission has unknown field(s) {unknown}; "
                "allowed: ['grid', 'options']"
            }
        try:
            spec = GridSpec.from_payload(payload.get("grid", {}))
            options = JobOptions.from_payload(payload.get("options"))
        except SpecError as error:
            return 400, {"error": str(error)}
        if self._draining.is_set():
            return 503, {"error": "service is draining", "retry_after": 30.0}
        digest = spec.digest()
        with self._submit_lock:
            if options.dedupe:
                existing = self.store.find_by_digest(digest)
                if existing is not None:
                    return 200, {
                        "job": self.job_payload(existing),
                        "deduplicated": True,
                    }
            if self.queue.open_count() >= self.queue.depth:
                error = QueueFullError(self.queue.depth)
                return 429, {"error": str(error), "retry_after": error.retry_after}
            job_id = self._new_job_id(digest)
            job = JobRecord(
                id=job_id,
                digest=digest,
                spec=spec.as_payload(),
                options=options.as_payload(),
            )
            try:
                # Journal (fsync) BEFORE the job becomes leasable: the worker
                # must never see an id the store could still lose.
                self.store.create(job)
            except (OSError, InjectedFaultError) as error:
                return 503, {
                    "error": f"job store unavailable: {error}",
                    "retry_after": 1.0,
                }
            self.queue.force(job_id)
        self._log(
            f"[service] accepted job {job_id} "
            f"({spec.case_count()} case(s), digest {digest[:12]})"
        )
        return 202, {"job": self.job_payload(job), "deduplicated": False}

    def _new_job_id(self, digest: str) -> str:
        sequence = len(self.store.jobs) + 1
        while True:
            job_id = f"job-{sequence:04d}-{digest[:8]}"
            if job_id not in self.store.jobs:
                return job_id
            sequence += 1

    # --- queries ------------------------------------------------------------

    def job_payload(self, job: JobRecord) -> dict:
        payload = job.as_record()
        shards = self.results_paths(job.id)
        payload["results"] = {
            "shards": [path.name for path in shards],
            "rows": sum(1 for path in shards for line in path.read_text().splitlines() if line.strip()),
        }
        return payload

    def jobs_payload(self) -> dict:
        return {"jobs": [job.as_record() for job in self.store.all()]}

    def results_paths(self, job_id: str) -> list[Path]:
        directory = self.store.directory / "jobs" / job_id
        if not directory.is_dir():
            return []
        return sorted(directory.glob("grid-shard-*.jsonl"))

    def health_payload(self) -> dict:
        states: dict[str, int] = {}
        for job in self.store.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "jobs": states,
            "queue": {
                "open": self.queue.open_count(),
                "depth": self.queue.depth,
            },
            "recovery": {
                "recovered_jobs": self.store.recovered_jobs,
                "replayed_transitions": self.store.replayed_transitions,
            },
        }

    # --- cancellation -------------------------------------------------------

    def cancel(self, job_id: str) -> tuple[int, dict]:
        job = self.store.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        if job.state in TERMINAL_STATES:
            return 409, {
                "error": f"job {job_id} is already {job.state}",
                "job": self.job_payload(job),
            }
        if job.state == "queued" and self.queue.remove(job_id):
            job = self.store.transition(job_id, "cancelled", error="cancelled before start", finished_at=time.time())
            return 200, {"job": self.job_payload(job)}
        # Running (or queued-but-leased race): flag it and interrupt the run
        # at the next group boundary; completed cases stay checkpointed.
        job = self.store.annotate(job_id, cancel_requested=True)
        with self._running_lock:
            event = self._cancel_events.get(job_id)
        if event is not None:
            event.set()
        return 202, {"job": self.job_payload(job)}

    # --- execution ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            job_id = self.queue.lease(timeout=0.2)
            if job_id is None:
                if self._stopping.is_set():
                    break
                continue
            if self._draining.is_set():
                # Leased between drain and close: put it back untouched.
                self.queue.requeue(job_id, front=True)
                break
            self._idle.clear()
            try:
                self._run_job(job_id)
            finally:
                self._idle.set()

    def _run_job(self, job_id: str) -> None:
        from repro.casestudy.grid import evaluate_grid

        job = self.store.get(job_id)
        if job is None:
            self.queue.complete(job_id)
            return
        if job.cancel_requested:
            self.store.transition(
                job_id, "cancelled", error="cancelled before start",
                finished_at=time.time(),
            )
            self.queue.complete(job_id)
            return
        spec = GridSpec.from_payload(job.spec)
        options = JobOptions.from_payload(job.options)
        cancel_event = threading.Event()
        with self._running_lock:
            self._running_job = job_id
            self._cancel_events[job_id] = cancel_event
            self._deadline_hits.discard(job_id)
        job = self.store.transition(
            job_id, "running", attempts=job.attempts + 1, started_at=time.time(),
            error=None,
        )
        deadline = options.deadline_seconds or self.config.default_deadline_seconds
        timer: Optional[threading.Timer] = None
        if deadline is not None:
            def _expire() -> None:
                with self._running_lock:
                    self._deadline_hits.add(job_id)
                cancel_event.set()

            timer = threading.Timer(deadline, _expire)
            timer.daemon = True
            timer.start()
        self._log(
            f"[service] job {job_id} running (attempt {job.attempts}, "
            f"{spec.case_count()} case(s))"
        )
        started = time.perf_counter()
        try:
            faults.perturb(faults.SERVICE_RUN_JOB)
            from repro.core.parameters import CaseStudyParameters

            outcome = evaluate_grid(
                spec.scenarios(),
                parameters=CaseStudyParameters(
                    required_running_vms=spec.required_vms
                ),
                jobs=options.jobs,
                backend=options.backend,
                use_cache=self.config.use_cache,
                cache_dir=self.config.cache_dir,
                max_states=spec.max_states or DEFAULT_MAX_TANGIBLE_MARKINGS,
                shard_directory=self.store.job_directory(job_id),
                shard_size=self.config.shard_size,
                pipeline=options.pipeline,
                dedupe=options.dedupe,
                retry=RetryPolicy(max_retries=options.max_retries),
                resume=True,
                cancel_event=cancel_event,
                log_callback=self.config.log_callback,
            )
        except Exception as error:  # noqa: BLE001 - the job must not kill the worker
            self._finish_with_error(job_id, options, error)
            return
        finally:
            if timer is not None:
                timer.cancel()
            with self._running_lock:
                self._running_job = None
                self._cancel_events.pop(job_id, None)
        self._finish_with_outcome(job_id, outcome, started)

    def _finish_with_error(self, job_id: str, options: JobOptions, error: BaseException) -> None:
        job = self.store.get(job_id)
        message = f"{type(error).__name__}: {error}"
        if job is not None and job.attempts <= options.job_retries:
            self._log(
                f"[service] job {job_id} attempt {job.attempts} raised "
                f"({message}); re-queued"
            )
            self.store.transition(job_id, "queued", error=message)
            self.queue.requeue(job_id, front=False)
            return
        self._log(f"[service] job {job_id} failed: {message}")
        self.store.transition(
            job_id, "failed", error=message, finished_at=time.time()
        )
        self.queue.complete(job_id)

    def _finish_with_outcome(self, job_id: str, outcome, started: float) -> None:
        job = self.store.get(job_id)
        summary = self._summarize(outcome)
        with self._running_lock:
            deadline_hit = job_id in self._deadline_hits
            self._deadline_hits.discard(job_id)
        if outcome.interrupted:
            if deadline_hit:
                self.store.transition(
                    job_id, "failed", summary=summary, finished_at=time.time(),
                    error=(
                        f"deadline exceeded after "
                        f"{time.perf_counter() - started:.1f}s; "
                        f"{len(outcome.results)} case(s) checkpointed"
                    ),
                )
                self.queue.complete(job_id)
                self._log(f"[service] job {job_id} failed: deadline exceeded")
            elif job is not None and job.cancel_requested:
                self.store.transition(
                    job_id, "cancelled", summary=summary, finished_at=time.time(),
                    error="cancelled by request",
                )
                self.queue.complete(job_id)
                self._log(f"[service] job {job_id} cancelled")
            else:
                # Drain interruption: the job has not failed — back to the
                # queue with its checkpoint intact, to resume after restart.
                self.store.transition(job_id, "queued", summary=summary)
                self.queue.requeue(job_id, front=True)
                self._log(f"[service] job {job_id} drained back to the queue")
            return
        if outcome.failures and outcome.results:
            state, error = "partial", (
                f"{len(outcome.failures)} group(s) quarantined; "
                "resubmit after the fault clears to resume from the checkpoint"
            )
        elif outcome.failures:
            state, error = "failed", (
                f"all {len(outcome.failures)} group(s) faulted; no results"
            )
        else:
            state, error = "done", None
        self.store.transition(
            job_id, state, summary=summary, error=error, finished_at=time.time()
        )
        self.queue.complete(job_id)
        self._log(
            f"[service] job {job_id} {state}: {len(outcome.results)} case(s) "
            f"in {summary['total_seconds']:.2f}s "
            f"(restored {summary['restored_cases']}, "
            f"{summary['failed_groups']} group(s) quarantined)"
        )

    @staticmethod
    def _summarize(outcome) -> dict:
        """Per-run provenance persisted onto the job record."""
        return {
            "cases": len(outcome.results),
            "restored_cases": outcome.restored_cases,
            "deduped_cases": outcome.deduped_cases,
            "pipelined": outcome.pipelined,
            "interrupted": outcome.interrupted,
            "total_seconds": outcome.total_seconds,
            "pool_rebuilds": outcome.pool_rebuilds,
            "watchdog_kills": outcome.watchdog_kills,
            "failed_groups": len(outcome.failures),
            "failures": [record.as_record() for record in outcome.failures],
            "groups": [asdict(group) for group in outcome.groups],
            "shards": [path.name for path in outcome.shard_paths],
        }
