"""Durable write-ahead job store of the availability service.

Every job transition is appended as one JSON line to ``journal.jsonl`` and
**fsync'd before the caller proceeds** — a submission is only acknowledged
(and a state change only acted upon) once it would survive a power loss.
Each line carries the *full* job record, so recovery is trivial: the last
line about a job wins.  The journal is compacted into an atomic-rename,
fsync'd snapshot (``jobs-snapshot.json``) on clean shutdown and every
``snapshot_every`` appends; recovery loads the snapshot and replays
whatever journal lines landed after it, tolerating a torn trailing line
(the one write a ``kill -9`` can interrupt).

State-directory layout::

    <state_dir>/
      journal.jsonl        # WAL: one fsync'd JSON transition per line
      jobs-snapshot.json   # atomic-rename snapshot (journal truncated after)
      jobs/<job_id>/       # the job's shard directory == its checkpoint
        grid-shard-*.jsonl
        grid-manifest.json
        grid-failures.jsonl

The store is deliberately dumb about *semantics* — what to do with a job
found ``running`` after a crash is the service's recovery policy
(:meth:`~repro.service.app.AvailabilityService` re-queues it with
``resume=True``); the store only guarantees the record survives.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.engine import faults
from repro.engine.atomicio import write_text_durably

#: Every state a job can be in.  ``queued`` and ``running`` are *open*;
#: the rest are terminal.  ``partial`` is a completed run with quarantined
#: cases — a result to consume, not a service failure.
JOB_STATES = ("queued", "running", "done", "partial", "failed", "cancelled")
OPEN_STATES = frozenset({"queued", "running"})
TERMINAL_STATES = frozenset({"done", "partial", "failed", "cancelled"})

#: Journal appends between automatic snapshot compactions.
DEFAULT_SNAPSHOT_EVERY = 64


@dataclass
class JobRecord:
    """One job's full, journal-serialisable state."""

    id: str
    digest: str
    spec: dict
    options: dict
    state: str = "queued"
    submitted_at: float = 0.0
    updated_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    cancel_requested: bool = False
    error: Optional[str] = None
    summary: dict = field(default_factory=dict)

    def as_record(self) -> dict:
        return {
            "id": self.id,
            "digest": self.digest,
            "spec": dict(self.spec),
            "options": dict(self.options),
            "state": self.state,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "summary": dict(self.summary),
        }

    @classmethod
    def from_record(cls, record: dict) -> "JobRecord":
        return cls(
            id=str(record["id"]),
            digest=str(record["digest"]),
            spec=dict(record.get("spec", {})),
            options=dict(record.get("options", {})),
            state=str(record.get("state", "queued")),
            submitted_at=float(record.get("submitted_at", 0.0)),
            updated_at=float(record.get("updated_at", 0.0)),
            started_at=record.get("started_at"),
            finished_at=record.get("finished_at"),
            attempts=int(record.get("attempts", 0)),
            cancel_requested=bool(record.get("cancel_requested", False)),
            error=record.get("error"),
            summary=dict(record.get("summary", {})),
        )

    @property
    def open(self) -> bool:
        return self.state in OPEN_STATES


class JobStore:
    """Journaled, crash-safe persistence of every job's record."""

    def __init__(
        self,
        state_directory: os.PathLike,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ) -> None:
        self.directory = Path(state_directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / "journal.jsonl"
        self.snapshot_path = self.directory / "jobs-snapshot.json"
        self.snapshot_every = max(1, int(snapshot_every))
        self.jobs: dict[str, JobRecord] = {}
        self._journal = None
        self._appends_since_snapshot = 0
        self._lock = threading.RLock()
        #: Recovery provenance (surfaced by ``/healthz`` and the CLI).
        self.recovered_jobs = 0
        self.replayed_transitions = 0
        self._recover()

    # --- recovery -----------------------------------------------------------

    def _recover(self) -> None:
        """Load the snapshot, then replay the journal over it (leniently)."""
        if self.snapshot_path.exists():
            try:
                payload = json.loads(self.snapshot_path.read_text())
                for record in payload.get("jobs", []):
                    job = JobRecord.from_record(record)
                    self.jobs[job.id] = job
            except (OSError, ValueError, KeyError, TypeError):
                self.jobs = {}
        if self.journal_path.exists():
            try:
                text = self.journal_path.read_text()
            except OSError:
                text = ""
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    job = JobRecord.from_record(entry["job"])
                except (ValueError, KeyError, TypeError):
                    continue  # torn trailing line of a killed process
                self.jobs[job.id] = job
                self.replayed_transitions += 1
        self.recovered_jobs = len(self.jobs)

    # --- write path ---------------------------------------------------------

    def _handle(self):
        if self._journal is None or self._journal.closed:
            self._journal = open(self.journal_path, "a")
        return self._journal

    def append(self, job: JobRecord, event: str) -> None:
        """Journal one transition; **fsync'd before this method returns**.

        The injectable fault site :data:`~repro.engine.faults.
        SERVICE_STORE_APPEND` fires here — before anything is written — so
        a chaos plan can simulate a failing journal disk and assert the
        service refuses (rather than falsely acknowledges) the transition.
        """
        faults.perturb(faults.SERVICE_STORE_APPEND)
        line = json.dumps(
            {"event": event, "at": time.time(), "job": job.as_record()},
            sort_keys=True,
        )
        with self._lock:
            handle = self._handle()
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
            self._appends_since_snapshot += 1
            if self._appends_since_snapshot >= self.snapshot_every:
                self._snapshot_locked()

    def create(self, job: JobRecord) -> JobRecord:
        """Register and durably journal a new job (the submission ack)."""
        with self._lock:
            if job.id in self.jobs:
                raise ValueError(f"job id {job.id!r} already exists")
            now = time.time()
            job.submitted_at = job.submitted_at or now
            job.updated_at = now
            # Journal first: the in-memory index only learns about the job
            # once the record is on disk, so an fsync failure can never
            # leave an acknowledged-but-volatile job behind.
            self.append(job, "submitted")
            self.jobs[job.id] = job
            return job

    def transition(self, job_id: str, state: str, **updates) -> JobRecord:
        """Move a job to ``state`` (plus field updates), durably journaled."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}; one of {JOB_STATES}")
        with self._lock:
            job = self.jobs[job_id]
            job.state = state
            job.updated_at = time.time()
            for name, value in updates.items():
                if not hasattr(job, name):
                    raise AttributeError(f"JobRecord has no field {name!r}")
                setattr(job, name, value)
            self.append(job, state)
            return job

    def annotate(self, job_id: str, **updates) -> JobRecord:
        """Update fields without changing state (durably journaled)."""
        with self._lock:
            job = self.jobs[job_id]
            job.updated_at = time.time()
            for name, value in updates.items():
                if not hasattr(job, name):
                    raise AttributeError(f"JobRecord has no field {name!r}")
                setattr(job, name, value)
            self.append(job, "annotated")
            return job

    # --- compaction ---------------------------------------------------------

    def snapshot(self) -> None:
        """Compact: durable snapshot of every job, then truncate the journal."""
        with self._lock:
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        payload = {
            "format": 1,
            "written_at": time.time(),
            "jobs": [job.as_record() for job in self.jobs.values()],
        }
        write_text_durably(
            self.snapshot_path, json.dumps(payload, sort_keys=True) + "\n"
        )
        # The snapshot now holds everything the journal said; truncate it so
        # recovery cost stays proportional to activity since the snapshot.
        if self._journal is not None and not self._journal.closed:
            self._journal.close()
        with open(self.journal_path, "w") as handle:
            handle.flush()
            os.fsync(handle.fileno())
        self._journal = None
        self._appends_since_snapshot = 0

    # --- lookup -------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self.jobs.get(job_id)

    def all(self) -> list[JobRecord]:
        """Every job, newest submission first."""
        with self._lock:
            return sorted(
                self.jobs.values(), key=lambda job: job.submitted_at, reverse=True
            )

    def find_by_digest(self, digest: str) -> Optional[JobRecord]:
        """The job to dedupe an identical submission onto, if any.

        Open jobs and successfully finished ones (``done``/``partial``)
        absorb the resubmission; ``failed``/``cancelled`` jobs do not — a
        client resubmitting after a failure is asking for a retry.  The
        most recent eligible job wins.
        """
        with self._lock:
            candidates = [
                job
                for job in self.jobs.values()
                if job.digest == digest and job.state not in ("failed", "cancelled")
            ]
            if not candidates:
                return None
            return max(candidates, key=lambda job: job.submitted_at)

    def job_directory(self, job_id: str) -> Path:
        """The job's shard directory (its checkpoint); created on demand."""
        path = self.directory / "jobs" / job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    def close(self) -> None:
        with self._lock:
            if self._journal is not None and not self._journal.closed:
                self._journal.close()
            self._journal = None
