"""Submission vocabulary of the availability service.

A client submits a *grid spec* — the same axes ``repro grid`` exposes on
the command line, as JSON — plus *job options*.  The split matters for
idempotency: the spec describes **what** is computed and hashes into the
job's content digest (two submissions with equal digests are the same work,
and the second returns the first's job instead of duplicating it — the same
philosophy as the rateless structure digests of
:class:`~repro.engine.cache.TRGCache`), while the options describe **how**
(worker budget, backend, deadline, retry budget) and stay out of the
digest.

Validation is eager and the error messages are actionable — the API layer
maps :class:`SpecError` straight to an HTTP 400 body the caller can fix
from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.exceptions import ConfigurationError

#: Default TCP port of ``repro serve`` (chosen well clear of common dev ports).
DEFAULT_PORT = 8536

_BACKUP_VALUES = ("on", "off", "both")
_TOPOLOGY_VALUES = ("mesh", "ring")
_BACKEND_VALUES = ("auto", "serial", "thread", "process")


class SpecError(ValueError):
    """A malformed grid submission (maps to HTTP 400)."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _number_tuple(payload, name: str, convert, minimum=None) -> tuple:
    _require(
        isinstance(payload, (list, tuple)) and len(payload) > 0,
        f"'{name}' must be a non-empty array",
    )
    values = []
    for value in payload:
        try:
            converted = convert(value)
        except (TypeError, ValueError):
            raise SpecError(
                f"'{name}' values must be {convert.__name__}s, got {value!r}"
            ) from None
        if minimum is not None and converted < minimum:
            raise SpecError(f"'{name}' values must be >= {minimum}, got {value!r}")
        values.append(converted)
    return tuple(values)


@dataclass(frozen=True)
class GridSpec:
    """What one job computes: the grid axes, in CLI vocabulary.

    ``cities`` is a tuple of deployment city sets (a one-city set is a
    single-site baseline; two cities the paper's architecture; three or
    more an N-data-center deployment over ``topology``).  ``backup`` is the
    CLI's ``on``/``off``/``both`` axis selector.  ``required_vms`` is the
    availability threshold ``k``; ``max_states`` optionally caps the
    exploration (``None`` uses the engine default).
    """

    cities: tuple[tuple[str, ...], ...]
    alphas: tuple[float, ...] = (0.35,)
    disaster_years: tuple[float, ...] = (100.0,)
    machines: tuple[int, ...] = (1,)
    l_thresholds: tuple[int, ...] = (1,)
    backup: str = "on"
    topology: str = "mesh"
    required_vms: int = 1
    max_states: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Mapping) -> "GridSpec":
        """Build and validate a spec from a submission's ``grid`` object."""
        _require(isinstance(payload, Mapping), "'grid' must be a JSON object")
        allowed = {
            "cities", "alphas", "disaster_years", "machines", "l_thresholds",
            "backup", "topology", "required_vms", "max_states",
        }
        unknown = sorted(set(map(str, payload)) - allowed)
        _require(
            not unknown,
            f"'grid' has unknown field(s) {unknown}; allowed: {sorted(allowed)}",
        )
        _require("cities" in payload, "'grid' needs a 'cities' array of city sets")
        raw_cities = payload["cities"]
        _require(
            isinstance(raw_cities, (list, tuple)) and len(raw_cities) > 0,
            "'cities' must be a non-empty array of city-name arrays, e.g. "
            '[["Rio de Janeiro", "Brasilia"], ["Rio de Janeiro"]]',
        )
        city_sets = []
        for entry in raw_cities:
            _require(
                isinstance(entry, (list, tuple))
                and len(entry) > 0
                and all(isinstance(name, str) and name.strip() for name in entry),
                f"each city set must be a non-empty array of city names, got "
                f"{entry!r}",
            )
            city_sets.append(tuple(name.strip() for name in entry))
        backup = payload.get("backup", "on")
        _require(
            backup in _BACKUP_VALUES,
            f"'backup' must be one of {_BACKUP_VALUES}, got {backup!r}",
        )
        topology = payload.get("topology", "mesh")
        _require(
            topology in _TOPOLOGY_VALUES,
            f"'topology' must be one of {_TOPOLOGY_VALUES}, got {topology!r}",
        )
        required_vms = payload.get("required_vms", 1)
        _require(
            isinstance(required_vms, int) and required_vms >= 1,
            f"'required_vms' must be a positive integer, got {required_vms!r}",
        )
        max_states = payload.get("max_states")
        _require(
            max_states is None or (isinstance(max_states, int) and max_states > 0),
            f"'max_states' must be a positive integer, got {max_states!r}",
        )
        spec = cls(
            cities=tuple(city_sets),
            alphas=_number_tuple(payload.get("alphas", [0.35]), "alphas", float, 0.0),
            disaster_years=_number_tuple(
                payload.get("disaster_years", [100.0]), "disaster_years", float, 0.0
            ),
            machines=_number_tuple(payload.get("machines", [1]), "machines", int, 1),
            l_thresholds=_number_tuple(
                payload.get("l_thresholds", [1]), "l_thresholds", int, 1
            ),
            backup=backup,
            topology=topology,
            required_vms=required_vms,
            max_states=max_states,
        )
        spec.resolve_cities()  # fail fast on unknown city names
        return spec

    def resolve_cities(self) -> tuple[tuple, ...]:
        """The city sets as :class:`~repro.network.geo.City` objects."""
        from repro.network import city_named

        resolved = []
        for city_set in self.cities:
            try:
                resolved.append(tuple(city_named(name) for name in city_set))
            except ConfigurationError as error:
                raise SpecError(str(error)) from error
        return tuple(resolved)

    def as_payload(self) -> dict:
        """JSON-able round-trip form (also the digest's canonical input)."""
        return {
            "cities": [list(city_set) for city_set in self.cities],
            "alphas": list(self.alphas),
            "disaster_years": list(self.disaster_years),
            "machines": list(self.machines),
            "l_thresholds": list(self.l_thresholds),
            "backup": self.backup,
            "topology": self.topology,
            "required_vms": self.required_vms,
            "max_states": self.max_states,
        }

    def digest(self) -> str:
        """Content digest for idempotent resubmission.

        Canonical-JSON sha256 over everything that determines the result
        frame — the axes, the threshold ``k`` and the exploration limit.
        Operational knobs (:class:`JobOptions`) are deliberately excluded:
        rerunning the same grid with a different worker count is the same
        work and must dedupe onto the same job.
        """
        return hashlib.sha256(
            json.dumps(
                self.as_payload(), sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()

    def case_count(self) -> int:
        """Number of result rows this grid will produce (axes pruned)."""
        backup_width = 2 if self.backup == "both" else 1
        count = 0
        for city_set in self.cities:
            if len(city_set) == 1:
                count += len(self.machines) * len(self.disaster_years)
            else:
                count += (
                    len(self.machines)
                    * len(self.alphas)
                    * len(self.disaster_years)
                    * len(self.l_thresholds)
                    * backup_width
                )
        return count

    def scenarios(self):
        """The case-study scenarios of this spec (see ``repro.casestudy``)."""
        from repro.casestudy.grid import CaseStudyGrid

        backup_axis = {"on": (True,), "off": (False,), "both": (True, False)}
        return CaseStudyGrid(
            city_sets=self.resolve_cities(),
            alphas=self.alphas,
            disaster_years=self.disaster_years,
            machines_per_datacenter=self.machines,
            l_thresholds=self.l_thresholds,
            backup=backup_axis[self.backup],
            topology=self.topology,
        ).scenarios()


@dataclass(frozen=True)
class JobOptions:
    """How one job runs (excluded from the idempotency digest).

    ``deadline_seconds`` bounds one job's wall clock — past it the run is
    cancelled at the next group boundary and the job fails with a deadline
    error (its checkpoint survives for a resubmission).  ``max_retries``
    is the per-task retry budget of the grid's
    :class:`~repro.engine.faults.RetryPolicy`; ``job_retries`` is how often
    the *service* re-queues a job whose run raised before giving up on it.
    """

    jobs: Optional[int] = None
    backend: str = "auto"
    pipeline: bool = True
    dedupe: bool = True
    deadline_seconds: Optional[float] = None
    max_retries: int = 2
    job_retries: int = 1
    metadata: Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Optional[Mapping]) -> "JobOptions":
        if payload is None:
            return cls()
        _require(isinstance(payload, Mapping), "'options' must be a JSON object")
        allowed = {
            "jobs", "backend", "pipeline", "dedupe", "deadline_seconds",
            "max_retries", "job_retries", "metadata",
        }
        unknown = sorted(set(map(str, payload)) - allowed)
        _require(
            not unknown,
            f"'options' has unknown field(s) {unknown}; allowed: {sorted(allowed)}",
        )
        jobs = payload.get("jobs")
        _require(
            jobs is None or (isinstance(jobs, int) and jobs >= 1),
            f"'jobs' must be a positive integer, got {jobs!r}",
        )
        backend = payload.get("backend", "auto")
        _require(
            backend in _BACKEND_VALUES,
            f"'backend' must be one of {_BACKEND_VALUES}, got {backend!r}",
        )
        deadline = payload.get("deadline_seconds")
        _require(
            deadline is None
            or (isinstance(deadline, (int, float)) and deadline > 0),
            f"'deadline_seconds' must be a positive number, got {deadline!r}",
        )
        max_retries = payload.get("max_retries", 2)
        _require(
            isinstance(max_retries, int) and max_retries >= 0,
            f"'max_retries' must be a non-negative integer, got {max_retries!r}",
        )
        job_retries = payload.get("job_retries", 1)
        _require(
            isinstance(job_retries, int) and job_retries >= 0,
            f"'job_retries' must be a non-negative integer, got {job_retries!r}",
        )
        metadata = payload.get("metadata", {})
        _require(
            isinstance(metadata, Mapping), "'metadata' must be a JSON object"
        )
        return cls(
            jobs=jobs,
            backend=backend,
            pipeline=bool(payload.get("pipeline", True)),
            dedupe=bool(payload.get("dedupe", True)),
            deadline_seconds=float(deadline) if deadline is not None else None,
            max_retries=max_retries,
            job_retries=job_retries,
            metadata=dict(metadata),
        )

    def as_payload(self) -> dict:
        return {
            "jobs": self.jobs,
            "backend": self.backend,
            "pipeline": self.pipeline,
            "dedupe": self.dedupe,
            "deadline_seconds": self.deadline_seconds,
            "max_retries": self.max_retries,
            "job_retries": self.job_retries,
            "metadata": dict(self.metadata),
        }
