"""Small ``urllib`` client of the availability service.

Used by ``repro submit`` / ``repro jobs``, the test suite and the CI chaos
drill — everything that talks to the daemon goes through this one module,
so the wire protocol has exactly two implementations to keep honest
(:mod:`repro.service.api` and this).

Non-2xx responses raise :class:`ServiceError` carrying the HTTP status and
the decoded error body (``error.retry_after`` surfaces the 429/503 hint).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional

#: Terminal job states a :meth:`ServiceClient.wait` stops on.
_TERMINAL = {"done", "partial", "failed", "cancelled"}


class ServiceError(RuntimeError):
    """A non-2xx answer from the service."""

    def __init__(self, status: int, payload: dict):
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}

    @property
    def retry_after(self) -> Optional[float]:
        value = self.payload.get("retry_after")
        return float(value) if isinstance(value, (int, float)) else None


class ServiceClient:
    """Thin JSON-over-HTTP client; ``base_url`` like ``http://host:port``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # --- plumbing -----------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read() or b"{}")
            except json.JSONDecodeError:
                payload = {"error": error.reason}
            raise ServiceError(error.code, payload) from None
        except (urllib.error.URLError, OSError) as error:
            raise ServiceError(
                0, {"error": f"cannot reach service at {self.base_url}: {error}"}
            ) from None

    # --- API ----------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def ready(self) -> bool:
        try:
            return bool(self._request("GET", "/readyz").get("ready"))
        except ServiceError:
            return False

    def submit(self, grid: dict, options: Optional[dict] = None) -> dict:
        """Submit a grid; returns ``{"job": ..., "deduplicated": ...}``.

        Raises :class:`ServiceError` on refusal — status 429 means the
        admission queue is full (check :attr:`ServiceError.retry_after`).
        """
        body: dict = {"grid": grid}
        if options is not None:
            body["options"] = options
        return self._request("POST", "/v1/grids", body)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(self) -> list[dict]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def results(self, job_id: str) -> Iterator[dict]:
        """The job's checkpointed case records, streamed."""
        request = urllib.request.Request(
            self.base_url + f"/v1/jobs/{job_id}/results",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read() or b"{}")
            except json.JSONDecodeError:
                payload = {"error": error.reason}
            raise ServiceError(error.code, payload) from None
        except (urllib.error.URLError, OSError) as error:
            raise ServiceError(
                0, {"error": f"cannot reach service at {self.base_url}: {error}"}
            ) from None

    def wait(self, job_id: str, timeout: float = 600.0, poll: float = 0.25) -> dict:
        """Poll until the job reaches a terminal state; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in _TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout:g}s"
                )
            time.sleep(poll)
