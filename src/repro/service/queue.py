"""Bounded admission control for the availability service.

The queue counts **open** jobs — queued *and* running — against a fixed
depth.  When full, :meth:`AdmissionQueue.offer` raises
:class:`QueueFullError` immediately (the API maps it to HTTP 429 with a
``Retry-After`` hint) instead of accepting work it cannot start; refusing
at the door is what keeps in-flight jobs from starving.  Capacity frees
when a job finishes (:meth:`complete`), not when it merely starts.

A drained job (SIGTERM mid-run) is put back at the *front* with
:meth:`requeue` — it does not lose its place.  :meth:`force` bypasses the
depth check during recovery: jobs that were already admitted before a
crash were already accounted for and must re-enter regardless of the
configured depth.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

#: Default number of open (queued + running) jobs before refusal.
DEFAULT_DEPTH = 8

#: ``Retry-After`` hint (seconds) attached to a refusal.
DEFAULT_RETRY_AFTER = 5.0


class QueueFullError(RuntimeError):
    """The admission queue refused a submission (maps to HTTP 429)."""

    def __init__(self, depth: int, retry_after: float = DEFAULT_RETRY_AFTER):
        super().__init__(
            f"admission queue is full ({depth} open job(s)); retry in "
            f"{retry_after:g}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class AdmissionQueue:
    """A bounded FIFO of job ids with open-job accounting."""

    def __init__(self, depth: int = DEFAULT_DEPTH) -> None:
        if not isinstance(depth, int) or depth < 1:
            raise ValueError(f"queue depth must be a positive integer, got {depth!r}")
        self.depth = depth
        self._items: deque[str] = deque()
        self._leased: set[str] = set()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    # --- admission ----------------------------------------------------------

    def open_count(self) -> int:
        """Open jobs currently accounted against the depth."""
        with self._lock:
            return len(self._items) + len(self._leased)

    def offer(self, job_id: str) -> None:
        """Admit a job, or refuse with :class:`QueueFullError` when full."""
        with self._available:
            if self._closed:
                raise RuntimeError("admission queue is closed")
            if len(self._items) + len(self._leased) >= self.depth:
                raise QueueFullError(self.depth)
            self._items.append(job_id)
            self._available.notify()

    def force(self, job_id: str, front: bool = False) -> None:
        """Admit unconditionally (recovery of already-acknowledged jobs)."""
        with self._available:
            if front:
                self._items.appendleft(job_id)
            else:
                self._items.append(job_id)
            self._available.notify()

    # --- worker side --------------------------------------------------------

    def lease(self, timeout: Optional[float] = None) -> Optional[str]:
        """Take the next job to run; ``None`` on timeout or after close.

        The job stays accounted as open until :meth:`complete` (or
        :meth:`requeue`) — a running job holds its admission slot.
        """
        with self._available:
            while not self._items and not self._closed:
                if not self._available.wait(timeout=timeout):
                    return None
            if not self._items:
                return None
            job_id = self._items.popleft()
            self._leased.add(job_id)
            return job_id

    def complete(self, job_id: str) -> None:
        """Release the job's admission slot (it reached a terminal state)."""
        with self._available:
            self._leased.discard(job_id)
            self._available.notify()

    def requeue(self, job_id: str, front: bool = True) -> None:
        """Return a leased job to the queue (drain or transient run error)."""
        with self._available:
            self._leased.discard(job_id)
            if front:
                self._items.appendleft(job_id)
            else:
                self._items.append(job_id)
            self._available.notify()

    def remove(self, job_id: str) -> bool:
        """Withdraw a still-queued job (cancellation before it ran)."""
        with self._available:
            try:
                self._items.remove(job_id)
            except ValueError:
                return False
            self._available.notify()
            return True

    def snapshot(self) -> list[str]:
        """Queued (not leased) job ids, front first."""
        with self._lock:
            return list(self._items)

    def close(self) -> None:
        """Wake every waiting :meth:`lease` with ``None``; refuse offers."""
        with self._available:
            self._closed = True
            self._available.notify_all()
