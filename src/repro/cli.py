"""Command-line interface for the case-study harness.

``python -m repro <command>`` exposes the main experiments without writing
any Python:

* ``availability`` — availability of one two-data-center configuration,
* ``table7``       — reproduce Table VII,
* ``figure7``      — reproduce (a subset of) the Figure 7 sweep,
* ``transient``    — mission-window (interval) availability vs VM start time,
* ``ablations``    — the Section III design-knob ablations,
* ``sensitivity``  — one-at-a-time sensitivity of the Table VI parameters,
* ``cache``        — inspect / clear the persistent reachability-graph cache,
* ``serve``        — run the crash-safe availability service (HTTP daemon),
* ``submit``       — submit a grid to a running service,
* ``jobs``         — list / inspect / cancel service jobs, stream results.

Exit codes are structured (see :class:`repro.exitcodes.ExitCode`): 0 for a
complete result, 2 for invalid arguments, 3 for a **partial** result (some
cases quarantined; resumable), 4 when a run faulted and produced nothing
consumable.

Every command accepts ``--full`` to run the faithful two-PM-per-data-center
configuration instead of the fast reduced one.  The batch commands
(``table7``, ``figure7``, ``transient``, ``sensitivity``, ``ablations``)
also accept ``--jobs N`` to fan their scenario batch out over up to N
engine workers (always clamped to the effective CPU cores) and
``--backend serial|thread|process`` to force a backend; the default
``auto`` picks the cheapest plan from a calibrated cost model — serial on
one core, threads or the zero-copy shared-memory sweep scheduler when the
cores and the batch justify them.  The runner-based commands consult the
on-disk reachability cache by default so repeat invocations skip
state-space generation; pass ``--no-cache`` to force a fresh exploration.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.casestudy import (
    AblationStudy,
    CaseStudyGrid,
    DistributedSweepRunner,
    SensitivityAnalysis,
    evaluate_grid,
    render_ablations,
    render_figure7,
    render_grid,
    render_sensitivity,
    render_table7,
    render_transient,
    reproduce_figure7,
    reproduce_table7,
    reproduce_transient,
)
from repro.casestudy.transient import (
    DEFAULT_GRID_POINTS,
    DEFAULT_VM_START_MINUTES,
    DEFAULT_WINDOW_HOURS,
)
from repro.core import CaseStudyParameters, DistributedScenario
from repro.core.scenarios import CITY_PAIRS
from repro.engine.faults import RetryPolicy
from repro.exitcodes import ExitCode
from repro.network import city_named


def _invalid(message: str) -> None:
    """Refuse bad arguments with the structured INVALID_ARGS exit code."""
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(int(ExitCode.INVALID_ARGS))


def _runner(full: bool, use_cache: bool = True) -> DistributedSweepRunner:
    if full:
        return DistributedSweepRunner(use_cache=use_cache)
    return DistributedSweepRunner(
        parameters=CaseStudyParameters(required_running_vms=1),
        machines_per_datacenter=1,
        use_cache=use_cache,
    )


def _add_full_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the faithful case-study configuration (two PMs per data center)",
    )


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent reachability-graph cache",
    )


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan the scenario batch out over up to N engine workers "
        "(always clamped to the effective CPU cores)",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "serial", "thread", "process"),
        default="auto",
        help="batch backend: 'auto' (default) picks the cheapest of the "
        "serial sweep, threads, or the zero-copy worker processes from a "
        "calibrated cost model — serial on a single core; the other values "
        "force a backend",
    )


def _add_grid_axis_flags(parser: argparse.ArgumentParser) -> None:
    """The grid axes shared by ``repro grid`` and ``repro submit``."""
    parser.add_argument(
        "--cities",
        default="Rio de Janeiro+Brasilia;Rio de Janeiro",
        metavar="A+B;C",
        help="';'-separated deployment city sets ('+' joins the data centers "
        "of one deployment; a single city is a non-distributed baseline; "
        "three or more cities form an N-data-center topology)",
    )
    parser.add_argument(
        "--alphas", default="0.35", metavar="A1,A2,...",
        help="comma-separated network-speed coefficients",
    )
    parser.add_argument(
        "--disaster-years", default="100", metavar="Y1,Y2,...",
        help="comma-separated disaster mean times in years",
    )
    parser.add_argument(
        "--machines", default="1", metavar="M1,M2,...",
        help="comma-separated machines-per-data-center counts",
    )
    parser.add_argument(
        "--l-thresholds", default="1", metavar="L1,L2,...",
        help="comma-separated migration thresholds l (paper: 1)",
    )
    parser.add_argument(
        "--backup", choices=("on", "off", "both"), default="on",
        help="backup-server axis of the distributed scenarios",
    )
    parser.add_argument(
        "--topology", choices=("mesh", "ring"), default="mesh",
        help="migration topology for deployments with three or more data centers",
    )
    parser.add_argument(
        "--required-vms", type=int, default=1, metavar="K",
        help="availability threshold k (running VMs required)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dependability evaluation of disaster-tolerant cloud systems (DSN 2013 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    availability = commands.add_parser(
        "availability", help="availability of one two-data-center configuration"
    )
    availability.add_argument("--first", default="Rio de Janeiro", help="first data-center city")
    availability.add_argument("--second", default="Brasilia", help="second data-center city")
    availability.add_argument("--alpha", type=float, default=0.35, help="network-speed coefficient")
    availability.add_argument(
        "--disaster-years", type=float, default=100.0, help="disaster mean time in years"
    )
    _add_full_flag(availability)
    _add_cache_flag(availability)

    table7 = commands.add_parser("table7", help="reproduce Table VII")
    _add_full_flag(table7)
    _add_jobs_flag(table7)
    _add_cache_flag(table7)

    figure7 = commands.add_parser("figure7", help="reproduce the Figure 7 sweep")
    figure7.add_argument(
        "--pairs", type=int, default=len(CITY_PAIRS), help="number of city pairs to evaluate"
    )
    _add_full_flag(figure7)
    _add_jobs_flag(figure7)
    _add_cache_flag(figure7)

    transient = commands.add_parser(
        "transient",
        help="mission-window (interval) availability vs VM start time",
    )
    transient.add_argument(
        "--minutes",
        default=",".join(f"{m:g}" for m in DEFAULT_VM_START_MINUTES),
        metavar="M1,M2,...",
        help="comma-separated VM start times in minutes",
    )
    transient.add_argument(
        "--window",
        type=float,
        default=DEFAULT_WINDOW_HOURS,
        metavar="HOURS",
        help="mission window length in hours",
    )
    transient.add_argument(
        "--points",
        type=int,
        default=DEFAULT_GRID_POINTS,
        metavar="N",
        help="number of mission-time grid points (including t=0)",
    )
    _add_full_flag(transient)
    _add_jobs_flag(transient)
    _add_cache_flag(transient)

    cache = commands.add_parser(
        "cache", help="inspect or clear the persistent reachability-graph cache"
    )
    cache.add_argument(
        "action",
        nargs="?",
        choices=("show", "clear"),
        default="show",
        help="show entries (default) or delete them all",
    )
    cache.add_argument(
        "--dir", default=None, metavar="PATH", help="cache directory override"
    )
    cache.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="with clear: only delete entries not modified in the last "
        "DAYS days (fractions allowed)",
    )

    grid = commands.add_parser(
        "grid",
        help="sweep a mixed-structure scenario grid through the orchestrator",
    )
    _add_grid_axis_flags(grid)
    grid.add_argument(
        "--shard-dir", default=None, metavar="PATH",
        help="stream result rows to JSONL shards in this directory; the "
        "directory holds one grid's shards — existing grid-shard-*.jsonl "
        "files are removed at the start of a run (the shards double as the "
        "run's checkpoint, see --resume)",
    )
    grid.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume from the checkpoint shards in PATH: completed cases "
        "are restored (solve_source='checkpoint') and only missing or "
        "previously failed cases are re-dispatched; implies --shard-dir "
        "PATH",
    )
    grid.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="extra attempts per failed task before it is quarantined into "
        "the failure list (with exponential backoff between attempts)",
    )
    grid.add_argument(
        "--generate-deadline", type=float, default=None, metavar="SECONDS",
        help="watchdog deadline for one structure-graph generation task; a "
        "generation past it has its workers killed and is retried",
    )
    grid.add_argument(
        "--solve-deadline", type=float, default=None, metavar="SECONDS",
        help="watchdog deadline for one wave of process-backend solve "
        "chunks; a hung wave has its workers killed and is retried",
    )
    grid.add_argument(
        "--fault-plan", default=None, metavar="JSON|@PATH",
        help="inject deterministic faults (testing/chaos): a JSON fault "
        "plan, or @/path/to/plan.json; see repro.engine.faults",
    )
    grid.add_argument(
        "--pipeline",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="overlap structure generation with solving (work-stealing "
        "pipeline; --no-pipeline forces the two-phase barrier)",
    )
    grid.add_argument(
        "--dedupe",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="solve rate-identical cases of one structure once and share "
        "the stationary vector (measures stay per case)",
    )
    grid.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="print live one-line pipeline progress to stderr",
    )
    grid.add_argument(
        "--memory-budget", default=None, metavar="SIZE",
        help="peak-memory budget for the per-group representation planner "
        "(e.g. 512M, 8G; bare numbers are bytes); groups whose estimated "
        "in-RAM footprint exceeds it run on the out-of-core chunked "
        "backend, groups too large even for that are refused with a "
        "sizing message; default: $REPRO_MEMORY_BUDGET, else half the "
        "available RAM",
    )
    grid.add_argument(
        "--symmetry",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="exploit exchangeable machines / data centers and solve the "
        "exactly lumped chain (bit-identical measures, far fewer states); "
        "default: the library default (on). --no-symmetry also disables "
        "the symmetry-aware rate dedupe",
    )
    _add_jobs_flag(grid)
    _add_cache_flag(grid)

    ablations = commands.add_parser("ablations", help="design-knob ablations")
    ablations.add_argument(
        "--dedupe",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share the stationary vector across rate-identical suite cases "
        "(the threshold ablation re-uses the reference solve)",
    )
    _add_full_flag(ablations)
    _add_jobs_flag(ablations)
    _add_cache_flag(ablations)

    sensitivity = commands.add_parser(
        "sensitivity", help="one-at-a-time sensitivity of the Table VI parameters"
    )
    sensitivity.add_argument(
        "--factor", type=float, default=2.0, help="multiplicative MTTF perturbation factor"
    )
    _add_jobs_flag(sensitivity)
    _add_cache_flag(sensitivity)

    serve = commands.add_parser(
        "serve",
        help="run the crash-safe availability service (HTTP daemon)",
    )
    serve.add_argument(
        "--state-dir", required=True, metavar="PATH",
        help="service state directory: the fsync'd job journal, snapshots "
        "and per-job checkpoint shard directories live here; restarting "
        "with the same directory recovers every acknowledged job",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port (0 binds an ephemeral port; the bound address is "
        "printed on stdout and written to <state-dir>/service.json)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="admission bound: open (queued + running) jobs beyond this "
        "are refused with HTTP 429 + Retry-After",
    )
    serve.add_argument(
        "--shard-size", type=int, default=1, metavar="N",
        help="rows per checkpoint shard of each job (1 = checkpoint after "
        "every completed case)",
    )
    serve.add_argument(
        "--snapshot-every", type=int, default=64, metavar="N",
        help="journal appends between snapshot compactions",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock deadline (jobs may override)",
    )
    serve.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="reachability-graph cache directory override",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress progress lines on stderr"
    )
    _add_jobs_flag(serve)
    _add_cache_flag(serve)

    submit = commands.add_parser(
        "submit", help="submit a grid to a running availability service"
    )
    submit.add_argument(
        "--url", required=True, metavar="URL",
        help="service base URL, e.g. http://127.0.0.1:8536",
    )
    _add_grid_axis_flags(submit)
    submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock deadline",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state and exit with "
        "its structured code (0 done, 3 partial, 4 failed/cancelled)",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="--wait timeout",
    )
    _add_jobs_flag(submit)

    jobs = commands.add_parser(
        "jobs", help="list / inspect / cancel service jobs, stream results"
    )
    jobs.add_argument(
        "--url", required=True, metavar="URL", help="service base URL"
    )
    jobs.add_argument("job_id", nargs="?", default=None, help="one job to inspect")
    jobs.add_argument(
        "--results", action="store_true",
        help="stream the job's result rows as JSON lines to stdout",
    )
    jobs.add_argument(
        "--cancel", action="store_true", help="cancel the job instead"
    )

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = build_parser().parse_args(argv)

    if arguments.command == "cache":
        from repro.engine import TRGCache

        cache = TRGCache(arguments.dir)
        if arguments.action == "clear":
            removed = cache.clear(older_than_days=arguments.older_than)
            scope = (
                f" older than {arguments.older_than:g} day(s)"
                if arguments.older_than is not None
                else ""
            )
            print(
                f"removed {removed} cached reachability graph(s){scope} "
                f"from {cache.directory}"
            )
            return 0
        if arguments.older_than is not None:
            _invalid("--older-than only applies to the clear action")
        entries = cache.entries()
        print(f"cache directory : {cache.directory}")
        print(f"entries         : {len(entries)}")
        print(f"total on disk   : {cache.total_size_bytes() / 1024:.1f} KiB")
        for entry in entries:
            age_hours = (time.time() - entry.modified) / 3600.0
            print(
                f"  {entry.key[:16]}…  {entry.size_bytes / 1024:8.1f} KiB  "
                f"{entry.representation:<7}  {age_hours:6.1f} h old"
            )
        return 0

    if arguments.command == "availability":
        runner = _runner(arguments.full, use_cache=not arguments.no_cache)
        scenario = DistributedScenario(
            first=city_named(arguments.first),
            second=city_named(arguments.second),
            alpha=arguments.alpha,
            disaster_mean_time_years=arguments.disaster_years,
        )
        evaluation = runner.evaluate(scenario)
        result = evaluation.availability
        print(f"configuration : {scenario.label}")
        print(f"availability  : {result.availability:.7f}")
        print(f"nines         : {result.nines:.2f}")
        print(f"downtime      : {result.downtime_hours_per_year:.1f} hours/year")
        print(f"state space   : {evaluation.number_of_states} tangible markings")
        print(f"graph source  : {runner.engine().graph_source}")
        return 0

    if arguments.command == "table7":
        print(
            render_table7(
                reproduce_table7(
                    _runner(arguments.full, use_cache=not arguments.no_cache),
                    max_workers=arguments.jobs,
                    backend=arguments.backend,
                )
            )
        )
        return 0

    if arguments.command == "figure7":
        points = reproduce_figure7(
            _runner(arguments.full, use_cache=not arguments.no_cache),
            city_pairs=CITY_PAIRS[: max(1, arguments.pairs)],
            max_workers=arguments.jobs,
            backend=arguments.backend,
        )
        print(render_figure7(points))
        return 0

    if arguments.command == "transient":
        try:
            minutes = [float(value) for value in arguments.minutes.split(",") if value]
        except ValueError:
            _invalid(
                f"--minutes expects comma-separated numbers, got {arguments.minutes!r}"
            )
        curves = reproduce_transient(
            _runner(arguments.full, use_cache=not arguments.no_cache),
            minutes=minutes,
            window_hours=arguments.window,
            points=arguments.points,
            max_workers=arguments.jobs,
            backend=arguments.backend,
        )
        print(render_transient(curves))
        return 0

    if arguments.command == "grid":
        def parse_values(text: str, convert, flag: str):
            try:
                values = tuple(convert(part) for part in text.split(",") if part.strip())
            except ValueError:
                _invalid(f"{flag} expects comma-separated values, got {text!r}")
            if not values:
                _invalid(f"{flag} needs at least one value")
            return values

        city_sets = tuple(
            tuple(city_named(name.strip()) for name in part.split("+") if name.strip())
            for part in arguments.cities.split(";")
            if part.strip()
        )
        if not city_sets:
            _invalid("--cities needs at least one city set")
        backup_axis = {"on": (True,), "off": (False,), "both": (True, False)}
        grid = CaseStudyGrid(
            city_sets=city_sets,
            alphas=parse_values(arguments.alphas, float, "--alphas"),
            disaster_years=parse_values(
                arguments.disaster_years, float, "--disaster-years"
            ),
            machines_per_datacenter=parse_values(
                arguments.machines, int, "--machines"
            ),
            l_thresholds=parse_values(arguments.l_thresholds, int, "--l-thresholds"),
            backup=backup_axis[arguments.backup],
            topology=arguments.topology,
        )
        def progress(line: str) -> None:
            print(line, file=sys.stderr, flush=True)

        from repro.engine import faults as fault_injection

        installed_plan = False
        if arguments.fault_plan is not None:
            text = arguments.fault_plan
            if text.startswith("@"):
                try:
                    with open(text[1:]) as handle:
                        text = handle.read()
                except OSError as error:
                    _invalid(f"--fault-plan: cannot read {text[1:]}: {error}")
            try:
                fault_injection.install(fault_injection.FaultPlan.from_json(text))
            except (ValueError, TypeError) as error:
                _invalid(f"--fault-plan: invalid plan: {error}")
            installed_plan = True

        shard_directory = arguments.shard_dir
        resume = False
        if arguments.resume is not None:
            if shard_directory is not None and str(shard_directory) != str(
                arguments.resume
            ):
                _invalid(
                    "--resume PATH already names the shard directory; drop "
                    "--shard-dir or make them identical"
                )
            shard_directory = arguments.resume
            resume = True
        retry = RetryPolicy(
            max_retries=max(0, arguments.max_retries),
            generate_deadline_seconds=arguments.generate_deadline,
            solve_deadline_seconds=arguments.solve_deadline,
        )
        memory_budget = None
        if arguments.memory_budget is not None:
            from repro.engine.dispatch import parse_memory_size

            try:
                memory_budget = parse_memory_size(arguments.memory_budget)
            except ValueError as error:
                _invalid(f"--memory-budget: {error}")

        try:
            outcome = evaluate_grid(
                grid.scenarios(),
                parameters=CaseStudyParameters(
                    required_running_vms=arguments.required_vms
                ),
                jobs=arguments.jobs,
                backend=arguments.backend,
                use_cache=not arguments.no_cache,
                symmetry_reduction=arguments.symmetry,
                shard_directory=shard_directory,
                generation_workers=arguments.jobs,
                pipeline=arguments.pipeline,
                dedupe=arguments.dedupe,
                memory_budget=memory_budget,
                retry=retry,
                resume=resume,
                log_callback=progress if arguments.progress else None,
            )
        finally:
            if installed_plan:
                fault_injection.clear()
        print(render_grid(outcome))
        if outcome.partial:
            print(
                f"grid incomplete: {len(outcome.failed_cases())} case(s) "
                f"quarantined (see output above"
                + (
                    f" and {shard_directory}/grid-failures.jsonl"
                    if shard_directory is not None
                    else ""
                )
                + ")",
                file=sys.stderr,
            )
            # PARTIAL when there is something to consume (resumable with
            # --resume); FAULTED when every case was quarantined.
            if outcome.results:
                return int(ExitCode.PARTIAL)
            return int(ExitCode.FAULTED)
        return int(ExitCode.OK)

    if arguments.command == "ablations":
        study = AblationStudy(
            machines_per_datacenter=2 if arguments.full else 1,
            use_cache=not arguments.no_cache,
            jobs=arguments.jobs,
            backend=arguments.backend,
            dedupe=arguments.dedupe,
        )
        print(render_ablations(study.run_default_suite()))
        outcome = study.last_grid_outcome
        if outcome is not None and outcome.deduped_cases:
            print(
                f"({outcome.deduped_cases} case(s) shared a rate-identical "
                f"stationary vector instead of solving)"
            )
        return 0

    if arguments.command == "sensitivity":
        analysis = SensitivityAnalysis(
            factor=arguments.factor, use_cache=not arguments.no_cache
        )
        print(
            render_sensitivity(
                analysis.run(max_workers=arguments.jobs, backend=arguments.backend)
            )
        )
        return 0

    if arguments.command == "serve":
        return _cmd_serve(arguments)

    if arguments.command == "submit":
        return _cmd_submit(arguments)

    if arguments.command == "jobs":
        return _cmd_jobs(arguments)

    raise AssertionError(f"unhandled command {arguments.command!r}")  # pragma: no cover


def _cmd_serve(arguments) -> int:
    """Run the availability service until SIGTERM/SIGINT drains it."""
    import json
    import signal
    import threading
    from pathlib import Path

    from repro.service import AvailabilityService, ServiceConfig

    if arguments.queue_depth < 1:
        _invalid(f"--queue-depth must be >= 1, got {arguments.queue_depth}")
    if arguments.shard_size < 1:
        _invalid(f"--shard-size must be >= 1, got {arguments.shard_size}")

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    service = AvailabilityService(
        ServiceConfig(
            state_dir=Path(arguments.state_dir),
            host=arguments.host,
            port=arguments.port,
            queue_depth=arguments.queue_depth,
            jobs=arguments.jobs,
            backend=arguments.backend,
            use_cache=not arguments.no_cache,
            cache_dir=arguments.cache_dir,
            shard_size=arguments.shard_size,
            snapshot_every=arguments.snapshot_every,
            default_deadline_seconds=arguments.deadline,
            log_callback=None if arguments.quiet else progress,
        )
    )
    shutdown = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        shutdown.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    host, port = service.start()
    # Announce the bound address both ways: stdout for humans/pipes, and a
    # discovery file so drills and clients can find an ephemeral port.
    print(f"repro-service listening on http://{host}:{port}", flush=True)
    (Path(arguments.state_dir) / "service.json").write_text(
        json.dumps({"host": host, "port": port, "url": f"http://{host}:{port}"})
        + "\n"
    )
    shutdown.wait()
    # Signal handlers only set the event; the actual drain runs here on the
    # main thread — stop admitting, interrupt the running job at a group
    # boundary (its checkpoint survives and it is re-queued), persist, exit.
    print("repro-service draining...", file=sys.stderr, flush=True)
    service.drain_and_stop()
    print("repro-service drained; state persisted", file=sys.stderr, flush=True)
    return int(ExitCode.OK)


def _submission_grid(arguments) -> dict:
    """The ``repro submit`` axis flags as a service grid payload."""
    cities = [
        [name.strip() for name in part.split("+") if name.strip()]
        for part in arguments.cities.split(";")
        if part.strip()
    ]

    def values(text: str, convert, flag: str) -> list:
        try:
            parsed = [convert(part) for part in text.split(",") if part.strip()]
        except ValueError:
            _invalid(f"{flag} expects comma-separated values, got {text!r}")
        if not parsed:
            _invalid(f"{flag} needs at least one value")
        return parsed

    return {
        "cities": cities,
        "alphas": values(arguments.alphas, float, "--alphas"),
        "disaster_years": values(arguments.disaster_years, float, "--disaster-years"),
        "machines": values(arguments.machines, int, "--machines"),
        "l_thresholds": values(arguments.l_thresholds, int, "--l-thresholds"),
        "backup": arguments.backup,
        "topology": arguments.topology,
        "required_vms": arguments.required_vms,
    }


def _cmd_submit(arguments) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(arguments.url)
    options: dict = {}
    if arguments.jobs is not None:
        options["jobs"] = arguments.jobs
    if arguments.backend != "auto":
        options["backend"] = arguments.backend
    if arguments.deadline is not None:
        options["deadline_seconds"] = arguments.deadline
    try:
        answer = client.submit(_submission_grid(arguments), options or None)
    except ServiceError as error:
        if error.status == 400:
            _invalid(str(error))
        hint = (
            f" (retry in {error.retry_after:g}s)"
            if error.retry_after is not None
            else ""
        )
        print(f"repro: submission refused: {error}{hint}", file=sys.stderr)
        return int(ExitCode.FAULTED)
    job = answer["job"]
    note = " (deduplicated onto an existing job)" if answer["deduplicated"] else ""
    print(f"job {job['id']}: {job['state']}{note}")
    if not arguments.wait:
        return int(ExitCode.OK)
    try:
        job = client.wait(job["id"], timeout=arguments.timeout)
    except TimeoutError as error:
        print(f"repro: {error}", file=sys.stderr)
        return int(ExitCode.FAULTED)
    rows = job.get("results", {}).get("rows", 0)
    print(f"job {job['id']}: {job['state']} ({rows} result row(s))")
    if job.get("error"):
        print(f"  {job['error']}", file=sys.stderr)
    if job["state"] == "done":
        return int(ExitCode.OK)
    if job["state"] == "partial":
        return int(ExitCode.PARTIAL)
    return int(ExitCode.FAULTED)


def _cmd_jobs(arguments) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(arguments.url)
    if arguments.job_id is None:
        if arguments.results or arguments.cancel:
            _invalid("--results/--cancel need a JOB_ID")
        try:
            jobs = client.jobs()
        except ServiceError as error:
            print(f"repro: {error}", file=sys.stderr)
            return int(ExitCode.FAULTED)
        for job in jobs:
            cases = job.get("summary", {}).get("cases", "-")
            print(
                f"{job['id']}  {job['state']:<9}  attempts={job['attempts']}  "
                f"cases={cases}  digest={job['digest'][:12]}"
            )
        return int(ExitCode.OK)
    try:
        if arguments.cancel:
            answer = client.cancel(arguments.job_id)
            print(f"job {answer['job']['id']}: {answer['job']['state']}")
            return int(ExitCode.OK)
        if arguments.results:
            for row in client.results(arguments.job_id):
                print(json.dumps(row, sort_keys=True))
            return int(ExitCode.OK)
        print(json.dumps(client.job(arguments.job_id), indent=2, sort_keys=True))
        return int(ExitCode.OK)
    except ServiceError as error:
        print(f"repro: {error}", file=sys.stderr)
        return int(ExitCode.FAULTED)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
