"""Structured process exit codes shared by every ``repro`` command.

The CLI used to exit with a bare ``1`` for every non-success, which made it
impossible for callers (CI drills, the service runbook, shell scripts) to
tell "the grid finished but quarantined some cases" apart from "the run
produced nothing at all".  Every command now exits with one of these codes:

========================  ====  =====================================================
Code                      Int   Meaning
========================  ====  =====================================================
``ExitCode.OK``           0     the command completed and every case succeeded
``ExitCode.INVALID_ARGS`` 2     the arguments were malformed (also what argparse
                                itself exits with on a parse error)
``ExitCode.PARTIAL``      3     the run completed *partially*: some cases were
                                quarantined (``repro grid``), or a waited-on
                                service job finished in ``state=partial``
``ExitCode.FAULTED``      4     the run produced no usable result: every case was
                                quarantined, a waited-on job failed or was
                                cancelled, or the service refused the submission
========================  ====  =====================================================

A partial run is deliberately distinct from a faulted one — a caller that
can live with holes in the result frame (and resume later with
``repro grid --resume`` or a resubmission) treats 3 as a soft failure,
while 4 means there is nothing to consume.
"""

from __future__ import annotations

from enum import IntEnum


class ExitCode(IntEnum):
    """Process exit codes of the ``repro`` CLI (see module docstring)."""

    OK = 0
    INVALID_ARGS = 2
    PARTIAL = 3
    FAULTED = 4
