"""Steady-state availability arithmetic.

The paper reports results both as raw availability values (Table VII) and as
"number of nines" (Figure 7), computed as ``nines = -log10(1 - A)``.  This
module centralises those conversions plus the derived quantities IaaS
providers actually negotiate in SLAs (downtime per year / month).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

HOURS_PER_YEAR = 8760.0
HOURS_PER_MONTH = HOURS_PER_YEAR / 12.0
MINUTES_PER_HOUR = 60.0


def availability_from_mttf_mttr(mttf: float, mttr: float) -> float:
    """Steady-state availability of a single repairable component.

    ``A = MTTF / (MTTF + MTTR)`` for exponentially distributed failure and
    repair times (the assumption used throughout the paper).

    Args:
        mttf: mean time to failure (any time unit, must be positive).
        mttr: mean time to repair (same unit, must be non-negative).

    Returns:
        Availability in ``[0, 1]``.
    """
    if mttf <= 0.0:
        raise ValueError(f"MTTF must be positive, got {mttf!r}")
    if mttr < 0.0:
        raise ValueError(f"MTTR must be non-negative, got {mttr!r}")
    return mttf / (mttf + mttr)


def unavailability_from_mttf_mttr(mttf: float, mttr: float) -> float:
    """Steady-state unavailability ``1 - A`` (kept separate for precision)."""
    if mttf <= 0.0:
        raise ValueError(f"MTTF must be positive, got {mttf!r}")
    if mttr < 0.0:
        raise ValueError(f"MTTR must be non-negative, got {mttr!r}")
    return mttr / (mttf + mttr)


def number_of_nines(availability: float) -> float:
    """Number of nines of an availability value.

    ``nines = -log10(1 - A)`` — the expression given in Section V of the
    paper.  ``A = 1`` maps to ``inf``.

    Args:
        availability: value in ``[0, 1]``.
    """
    _check_probability(availability, "availability")
    if availability == 1.0:
        return math.inf
    return -math.log10(1.0 - availability)


def availability_from_nines(nines: float) -> float:
    """Inverse of :func:`number_of_nines`."""
    if nines < 0.0:
        raise ValueError(f"number of nines must be non-negative, got {nines!r}")
    if math.isinf(nines):
        return 1.0
    return 1.0 - 10.0 ** (-nines)


def downtime_hours_per_year(availability: float) -> float:
    """Expected downtime in hours over one year of continuous operation."""
    _check_probability(availability, "availability")
    return (1.0 - availability) * HOURS_PER_YEAR


def downtime_minutes_per_year(availability: float) -> float:
    """Expected downtime in minutes over one year of continuous operation."""
    return downtime_hours_per_year(availability) * MINUTES_PER_HOUR


def downtime_hours_per_month(availability: float) -> float:
    """Expected downtime in hours over one (average) month."""
    _check_probability(availability, "availability")
    return (1.0 - availability) * HOURS_PER_MONTH


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class AvailabilityResult:
    """Availability of a system together with the derived SLA-style figures.

    Attributes:
        availability: steady-state availability in ``[0, 1]``.
        label: optional human-readable identifier of the evaluated
            architecture or scenario.
    """

    availability: float
    label: str = ""

    def __post_init__(self) -> None:
        _check_probability(self.availability, "availability")

    @property
    def unavailability(self) -> float:
        """``1 - A``."""
        return 1.0 - self.availability

    @property
    def nines(self) -> float:
        """Number of nines, the metric plotted in Figure 7."""
        return number_of_nines(self.availability)

    @property
    def downtime_hours_per_year(self) -> float:
        """Expected yearly downtime in hours."""
        return downtime_hours_per_year(self.availability)

    @property
    def downtime_minutes_per_year(self) -> float:
        """Expected yearly downtime in minutes."""
        return downtime_minutes_per_year(self.availability)

    def improvement_in_nines(self, baseline: "AvailabilityResult | float") -> float:
        """Increase in number of nines relative to ``baseline``.

        This is the quantity reported by Figure 7 ("availability increase of
        different distributed cloud configurations").
        """
        if isinstance(baseline, AvailabilityResult):
            base = baseline.nines
        else:
            base = number_of_nines(float(baseline))
        return self.nines - base

    def meets_sla(self, required_availability: float) -> bool:
        """Whether this availability satisfies a minimum SLA level."""
        _check_probability(required_availability, "required_availability")
        return self.availability >= required_availability

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = f"{self.label}: " if self.label else ""
        return f"{label}A={self.availability:.7f} ({self.nines:.2f} nines)"
