"""Dependability metrics: availability, nines, downtime and unit handling."""

from repro.metrics.availability import (
    AvailabilityResult,
    availability_from_mttf_mttr,
    availability_from_nines,
    downtime_hours_per_month,
    downtime_hours_per_year,
    downtime_minutes_per_year,
    number_of_nines,
    unavailability_from_mttf_mttr,
)
from repro.metrics.conversions import (
    equivalent_mttf_mttr,
    exponential_reliability,
    hours_from_minutes,
    hours_from_seconds,
    hours_from_years,
    mean_time_from_rate,
    mttf_mttr_from_availability,
    mttr_from_availability,
    rate_from_mean_time,
)
from repro.metrics.units import Bandwidth, DataSize, Distance, Duration

__all__ = [
    "AvailabilityResult",
    "availability_from_mttf_mttr",
    "availability_from_nines",
    "downtime_hours_per_month",
    "downtime_hours_per_year",
    "downtime_minutes_per_year",
    "number_of_nines",
    "unavailability_from_mttf_mttr",
    "equivalent_mttf_mttr",
    "exponential_reliability",
    "hours_from_minutes",
    "hours_from_seconds",
    "hours_from_years",
    "mean_time_from_rate",
    "mttf_mttr_from_availability",
    "mttr_from_availability",
    "rate_from_mean_time",
    "Bandwidth",
    "DataSize",
    "Distance",
    "Duration",
]
