"""Small unit-safe value objects used across the case study.

The case study mixes hours (component MTTFs), years (disaster mean times),
minutes (VM start time), seconds (computed transfer times), kilometres
(inter-data-center distances) and gigabytes (VM image size).  These tiny
wrappers keep the conversion factors in a single place so scenario code never
multiplies by a magic constant.
"""

from __future__ import annotations

from dataclasses import dataclass

_HOURS_PER_YEAR = 8760.0
_SECONDS_PER_HOUR = 3600.0
_MINUTES_PER_HOUR = 60.0
_BITS_PER_BYTE = 8.0
_BYTES_PER_GIGABYTE = 1024.0**3
_BYTES_PER_MEGABYTE = 1024.0**2


@dataclass(frozen=True, order=True)
class Duration:
    """A span of time stored canonically in hours."""

    hours: float

    def __post_init__(self) -> None:
        if self.hours < 0.0:
            raise ValueError(f"duration must be non-negative, got {self.hours!r} hours")

    @classmethod
    def from_hours(cls, hours: float) -> "Duration":
        return cls(hours)

    @classmethod
    def from_years(cls, years: float) -> "Duration":
        return cls(years * _HOURS_PER_YEAR)

    @classmethod
    def from_minutes(cls, minutes: float) -> "Duration":
        return cls(minutes / _MINUTES_PER_HOUR)

    @classmethod
    def from_seconds(cls, seconds: float) -> "Duration":
        return cls(seconds / _SECONDS_PER_HOUR)

    @property
    def years(self) -> float:
        return self.hours / _HOURS_PER_YEAR

    @property
    def minutes(self) -> float:
        return self.hours * _MINUTES_PER_HOUR

    @property
    def seconds(self) -> float:
        return self.hours * _SECONDS_PER_HOUR

    def __add__(self, other: "Duration") -> "Duration":
        return Duration(self.hours + other.hours)

    def __mul__(self, factor: float) -> "Duration":
        return Duration(self.hours * float(factor))

    __rmul__ = __mul__


@dataclass(frozen=True, order=True)
class Distance:
    """A geographic distance stored canonically in kilometres."""

    kilometers: float

    def __post_init__(self) -> None:
        if self.kilometers < 0.0:
            raise ValueError(
                f"distance must be non-negative, got {self.kilometers!r} km"
            )

    @classmethod
    def from_kilometers(cls, kilometers: float) -> "Distance":
        return cls(kilometers)

    @classmethod
    def from_meters(cls, meters: float) -> "Distance":
        return cls(meters / 1000.0)

    @property
    def meters(self) -> float:
        return self.kilometers * 1000.0

    def __add__(self, other: "Distance") -> "Distance":
        return Distance(self.kilometers + other.kilometers)


@dataclass(frozen=True, order=True)
class DataSize:
    """An amount of data stored canonically in bytes (VM image sizes)."""

    bytes: float

    def __post_init__(self) -> None:
        if self.bytes < 0.0:
            raise ValueError(f"data size must be non-negative, got {self.bytes!r} bytes")

    @classmethod
    def from_gigabytes(cls, gigabytes: float) -> "DataSize":
        return cls(gigabytes * _BYTES_PER_GIGABYTE)

    @classmethod
    def from_megabytes(cls, megabytes: float) -> "DataSize":
        return cls(megabytes * _BYTES_PER_MEGABYTE)

    @property
    def gigabytes(self) -> float:
        return self.bytes / _BYTES_PER_GIGABYTE

    @property
    def megabytes(self) -> float:
        return self.bytes / _BYTES_PER_MEGABYTE

    @property
    def bits(self) -> float:
        return self.bytes * _BITS_PER_BYTE


@dataclass(frozen=True, order=True)
class Bandwidth:
    """A data rate stored canonically in bytes per second."""

    bytes_per_second: float

    def __post_init__(self) -> None:
        if self.bytes_per_second < 0.0:
            raise ValueError(
                f"bandwidth must be non-negative, got {self.bytes_per_second!r} B/s"
            )

    @classmethod
    def from_megabits_per_second(cls, mbps: float) -> "Bandwidth":
        return cls(mbps * 1e6 / _BITS_PER_BYTE)

    @classmethod
    def from_megabytes_per_second(cls, mbytes: float) -> "Bandwidth":
        return cls(mbytes * _BYTES_PER_MEGABYTE)

    @property
    def megabits_per_second(self) -> float:
        return self.bytes_per_second * _BITS_PER_BYTE / 1e6

    @property
    def megabytes_per_second(self) -> float:
        return self.bytes_per_second / _BYTES_PER_MEGABYTE

    def transfer_time(self, size: DataSize) -> Duration:
        """Time needed to transfer ``size`` at this sustained rate."""
        if self.bytes_per_second == 0.0:
            raise ValueError("cannot transfer data over a zero-bandwidth link")
        return Duration.from_seconds(size.bytes / self.bytes_per_second)
