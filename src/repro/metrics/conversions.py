"""Conversions between dependability parameters.

The hierarchical approach of the paper repeatedly converts between mean times
(MTTF/MTTR, hours) and exponential rates (failures/repairs per hour), and
between equivalent MTTF/MTTR and availability when results of a lower-level
RBD model feed a higher-level SPN simple component.
"""

from __future__ import annotations

import math


def rate_from_mean_time(mean_time: float) -> float:
    """Exponential rate equivalent to a mean time (``rate = 1 / mean``)."""
    if mean_time <= 0.0:
        raise ValueError(f"mean time must be positive, got {mean_time!r}")
    return 1.0 / mean_time


def mean_time_from_rate(rate: float) -> float:
    """Mean time equivalent to an exponential rate (``mean = 1 / rate``)."""
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    return 1.0 / rate


def mttf_mttr_from_availability(availability: float, mttr: float) -> float:
    """MTTF consistent with a given availability and repair time.

    Solves ``A = MTTF / (MTTF + MTTR)`` for MTTF.
    """
    if not 0.0 < availability < 1.0:
        raise ValueError(
            f"availability must be strictly inside (0, 1) to infer an MTTF, got {availability!r}"
        )
    if mttr <= 0.0:
        raise ValueError(f"MTTR must be positive, got {mttr!r}")
    return availability * mttr / (1.0 - availability)


def mttr_from_availability(availability: float, mttf: float) -> float:
    """MTTR consistent with a given availability and failure time."""
    if not 0.0 < availability <= 1.0:
        raise ValueError(
            f"availability must be in (0, 1] to infer an MTTR, got {availability!r}"
        )
    if mttf <= 0.0:
        raise ValueError(f"MTTF must be positive, got {mttf!r}")
    return mttf * (1.0 - availability) / availability


def equivalent_mttf_mttr(
    availability: float, equivalent_failure_rate: float
) -> tuple[float, float]:
    """Equivalent (MTTF, MTTR) pair of a composite structure.

    This is the standard hierarchical-modeling step used in Section IV-D of
    the paper: the lower-level RBD yields a steady-state availability ``A``
    and an equivalent failure rate ``Λ_eq``; the equivalent mean times that
    parameterise the higher-level SPN simple component are then

    ``MTTF_eq = 1 / Λ_eq`` and ``MTTR_eq = MTTF_eq * (1 - A) / A``.
    """
    if equivalent_failure_rate <= 0.0:
        raise ValueError(
            f"equivalent failure rate must be positive, got {equivalent_failure_rate!r}"
        )
    mttf = 1.0 / equivalent_failure_rate
    mttr = mttr_from_availability(availability, mttf)
    return mttf, mttr


def exponential_reliability(mttf: float, time: float) -> float:
    """Reliability ``R(t) = exp(-t / MTTF)`` of a non-repairable component."""
    if mttf <= 0.0:
        raise ValueError(f"MTTF must be positive, got {mttf!r}")
    if time < 0.0:
        raise ValueError(f"time must be non-negative, got {time!r}")
    return math.exp(-time / mttf)


def hours_from_years(years: float) -> float:
    """Convert years to hours (8760 hours / year, as used for disaster times)."""
    if years < 0.0:
        raise ValueError(f"years must be non-negative, got {years!r}")
    return years * 8760.0


def hours_from_minutes(minutes: float) -> float:
    """Convert minutes to hours (used for the 5-minute VM start time)."""
    if minutes < 0.0:
        raise ValueError(f"minutes must be non-negative, got {minutes!r}")
    return minutes / 60.0


def hours_from_seconds(seconds: float) -> float:
    """Convert seconds to hours (used for computed VM transfer times)."""
    if seconds < 0.0:
        raise ValueError(f"seconds must be non-negative, got {seconds!r}")
    return seconds / 3600.0
