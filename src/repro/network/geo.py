"""Geography: the case-study cities and great-circle distances.

The case study of the paper (Section V) places data centers in pairs of
cities — Rio de Janeiro paired with Brasília, Recife, New York, Calcutta and
Tokyo — and the backup server in São Paulo.  The mean VM transfer time (MTT)
between two sites grows with the distance between them, so the first
ingredient of the network substrate is a small gazetteer plus the haversine
great-circle distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.metrics.units import Distance

_EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class City:
    """A city with WGS-84 coordinates.

    Attributes:
        name: display name (used in scenario labels and tables).
        latitude: degrees north.
        longitude: degrees east.
    """

    name: str
    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise ConfigurationError(
                f"city {self.name!r}: latitude must be in [-90, 90], got {self.latitude!r}"
            )
        if not -180.0 <= self.longitude <= 180.0:
            raise ConfigurationError(
                f"city {self.name!r}: longitude must be in [-180, 180], got {self.longitude!r}"
            )

    def distance_to(self, other: "City") -> Distance:
        """Great-circle distance to another city."""
        return haversine_distance(self, other)


def haversine_distance(first: City, second: City) -> Distance:
    """Great-circle (haversine) distance between two cities."""
    lat1, lon1 = math.radians(first.latitude), math.radians(first.longitude)
    lat2, lon2 = math.radians(second.latitude), math.radians(second.longitude)
    delta_lat = lat2 - lat1
    delta_lon = lon2 - lon1
    a = (
        math.sin(delta_lat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(delta_lon / 2.0) ** 2
    )
    central_angle = 2.0 * math.asin(min(1.0, math.sqrt(a)))
    return Distance(_EARTH_RADIUS_KM * central_angle)


#: The cities used by the paper's case study.
RIO_DE_JANEIRO = City("Rio de Janeiro", -22.9068, -43.1729)
BRASILIA = City("Brasilia", -15.7939, -47.8828)
RECIFE = City("Recife", -8.0539, -34.8811)
NEW_YORK = City("New York", 40.7128, -74.0060)
CALCUTTA = City("Calcutta", 22.5726, 88.3639)
TOKYO = City("Tokyo", 35.6762, 139.6503)
SAO_PAULO = City("Sao Paulo", -23.5505, -46.6333)

#: Registry by (case-insensitive) name for scenario parsing.
CITIES: dict[str, City] = {
    city.name.lower(): city
    for city in (
        RIO_DE_JANEIRO,
        BRASILIA,
        RECIFE,
        NEW_YORK,
        CALCUTTA,
        TOKYO,
        SAO_PAULO,
    )
}


def city_named(name: str) -> City:
    """Look up one of the case-study cities by name (case-insensitive)."""
    try:
        return CITIES[name.strip().lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown city {name!r}; known cities: {sorted(c.name for c in CITIES.values())}"
        ) from None
