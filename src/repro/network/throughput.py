"""Distance- and alpha-dependent throughput model.

The paper estimates the mean VM transfer time using "the approach presented
in [18] that assesses the network throughput based on the distance between
the communication nodes.  The equation associates a constant alpha with the
network speed, which can vary from 0 (no connection) up to 1.0 (fastest
connection)" (Section V).  Reference [18] is the SLAC PingER work, whose
practical summary is the Mathis TCP-throughput law: sustained throughput is
inversely proportional to the round-trip time,

    throughput(d, alpha) = alpha * W / RTT(d)

where ``W`` plays the role of the effective TCP window (how many bytes are in
flight per round trip on the best possible connection) and ``alpha`` scales
it down for slower connections.  This preserves exactly the two properties
the case study relies on: throughput decreases with distance and increases
with alpha.  The model optionally caps the result at a physical link
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.metrics.units import Bandwidth, DataSize, Distance
from repro.network.latency import LatencyModel

#: Effective in-flight window of the best (alpha = 1) connection.
DEFAULT_WINDOW_BYTES = 256.0 * 1024.0

#: Default physical cap on the achievable throughput (1 Gbit/s).
DEFAULT_LINK_CAPACITY = Bandwidth.from_megabits_per_second(1000.0)


@dataclass(frozen=True)
class ThroughputModel:
    """PingER/Mathis-style throughput as a function of distance and alpha.

    Attributes:
        latency: distance → RTT model.
        window_bytes: bytes in flight per RTT at ``alpha = 1``.
        link_capacity: hard cap on the sustained throughput.
    """

    latency: LatencyModel = field(default_factory=LatencyModel)
    window_bytes: float = DEFAULT_WINDOW_BYTES
    link_capacity: Bandwidth = DEFAULT_LINK_CAPACITY

    def __post_init__(self) -> None:
        if self.window_bytes <= 0.0:
            raise ConfigurationError("window size must be positive")
        if self.link_capacity.bytes_per_second <= 0.0:
            raise ConfigurationError("link capacity must be positive")

    def throughput(self, distance: Distance, alpha: float) -> Bandwidth:
        """Sustained throughput of a connection spanning ``distance``.

        Args:
            distance: great-circle distance between the endpoints.
            alpha: network-speed coefficient in ``(0, 1]`` (the paper's α).
        """
        validate_alpha(alpha)
        rtt_seconds = self.latency.round_trip_time(distance).seconds
        raw = alpha * self.window_bytes / rtt_seconds
        return Bandwidth(min(raw, self.link_capacity.bytes_per_second))

    def transfer_time(self, size: DataSize, distance: Distance, alpha: float):
        """Time to transfer ``size`` over a connection spanning ``distance``."""
        return self.throughput(distance, alpha).transfer_time(size)


def validate_alpha(alpha: float) -> None:
    """Check the paper's α coefficient is usable (0 means "no connection")."""
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(
            f"alpha must be in (0, 1] (0 means no connection), got {alpha!r}"
        )
