"""Round-trip-time model over wide-area links.

The throughput model (PingER / Mathis style, see :mod:`repro.network.throughput`)
needs the round-trip time between two sites.  We model the RTT as the
two-way propagation delay over optical fibre plus a fixed equipment /
processing overhead::

    RTT(d) = 2 * (route_factor * d) / fibre_speed + base_rtt

``route_factor`` accounts for cables not following the great circle (real
submarine/terrestrial routes are typically 20-60 % longer than the geodesic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.metrics.units import Distance, Duration

#: Speed of light in optical fibre, km/s (refractive index ~1.47).
FIBRE_SPEED_KM_PER_S = 204_000.0

#: Default detour factor of real routes relative to the great circle.
DEFAULT_ROUTE_FACTOR = 1.4

#: Default fixed overhead (switching, queuing, last-mile) added to every RTT.
DEFAULT_BASE_RTT_S = 0.004


@dataclass(frozen=True)
class LatencyModel:
    """Distance → round-trip-time model.

    Attributes:
        fibre_speed_km_per_s: signal propagation speed in the medium.
        route_factor: multiplicative detour factor applied to the
            great-circle distance.
        base_rtt_s: fixed RTT component independent of distance (seconds).
    """

    fibre_speed_km_per_s: float = FIBRE_SPEED_KM_PER_S
    route_factor: float = DEFAULT_ROUTE_FACTOR
    base_rtt_s: float = DEFAULT_BASE_RTT_S

    def __post_init__(self) -> None:
        if self.fibre_speed_km_per_s <= 0.0:
            raise ConfigurationError("fibre speed must be positive")
        if self.route_factor < 1.0:
            raise ConfigurationError(
                f"route factor must be at least 1.0, got {self.route_factor!r}"
            )
        if self.base_rtt_s < 0.0:
            raise ConfigurationError("base RTT must be non-negative")

    def round_trip_time(self, distance: Distance) -> Duration:
        """RTT for a link spanning ``distance``."""
        route_km = self.route_factor * distance.kilometers
        propagation_s = 2.0 * route_km / self.fibre_speed_km_per_s
        return Duration.from_seconds(propagation_s + self.base_rtt_s)

    def one_way_latency(self, distance: Distance) -> Duration:
        """One-way latency (half the RTT)."""
        return Duration.from_seconds(self.round_trip_time(distance).seconds / 2.0)
