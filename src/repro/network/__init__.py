"""Network / geography substrate: cities, latency, throughput, migration times."""

from repro.network.geo import (
    BRASILIA,
    CALCUTTA,
    CITIES,
    NEW_YORK,
    RECIFE,
    RIO_DE_JANEIRO,
    SAO_PAULO,
    TOKYO,
    City,
    city_named,
    haversine_distance,
)
from repro.network.latency import LatencyModel
from repro.network.migration import MigrationPlanner, MigrationTimes
from repro.network.throughput import ThroughputModel, validate_alpha

__all__ = [
    "BRASILIA",
    "CALCUTTA",
    "CITIES",
    "NEW_YORK",
    "RECIFE",
    "RIO_DE_JANEIRO",
    "SAO_PAULO",
    "TOKYO",
    "City",
    "city_named",
    "haversine_distance",
    "LatencyModel",
    "MigrationPlanner",
    "MigrationTimes",
    "ThroughputModel",
    "validate_alpha",
]
