"""VM migration time (MTT) computation.

``MigrationPlanner`` turns the geography + throughput substrate into the
three mean-time-to-transmit parameters used by the TRANSMISSION_COMPONENT of
the SPN model (Table V):

* ``MTT_DCS`` — transfer of one VM image between the two data centers,
* ``MTT_BK1`` / ``MTT_BK2`` — transfer of one VM image from the backup server
  to data center 1 / 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.units import DataSize, Duration
from repro.network.geo import City
from repro.network.throughput import ThroughputModel


@dataclass(frozen=True)
class MigrationTimes:
    """The three MTT parameters of the TRANSMISSION_COMPONENT (in hours)."""

    datacenter_to_datacenter: Duration
    backup_to_first: Duration
    backup_to_second: Duration

    def as_dict(self) -> dict[str, float]:
        """Hours keyed by the paper's parameter names."""
        return {
            "MTT_DCS": self.datacenter_to_datacenter.hours,
            "MTT_BK1": self.backup_to_first.hours,
            "MTT_BK2": self.backup_to_second.hours,
        }


@dataclass(frozen=True)
class MigrationPlanner:
    """Compute VM migration times between sites for a given VM image size.

    Attributes:
        vm_image_size: size of one VM image (4 GB in the case study).
        throughput_model: distance/alpha → throughput model.
    """

    vm_image_size: DataSize = field(default_factory=lambda: DataSize.from_gigabytes(4.0))
    throughput_model: ThroughputModel = field(default_factory=ThroughputModel)

    def transfer_time(self, origin: City, destination: City, alpha: float) -> Duration:
        """Mean time to transmit one VM image from ``origin`` to ``destination``."""
        distance = origin.distance_to(destination)
        return self.throughput_model.transfer_time(self.vm_image_size, distance, alpha)

    def migration_times(
        self,
        first_datacenter: City,
        second_datacenter: City,
        backup_site: City,
        alpha: float,
    ) -> MigrationTimes:
        """All three MTT parameters for a two-data-center deployment."""
        return MigrationTimes(
            datacenter_to_datacenter=self.transfer_time(
                first_datacenter, second_datacenter, alpha
            ),
            backup_to_first=self.transfer_time(backup_site, first_datacenter, alpha),
            backup_to_second=self.transfer_time(backup_site, second_datacenter, alpha),
        )
